"""Recursive-descent parser for SELECT statements.

Grammar (precedence low to high)::

    select    := [WITH ident AS ( select ) (, ident AS ( select ))*]
                 SELECT [DISTINCT] item (, item)* FROM qualified
                 (join)* [WHERE expr] [GROUP BY expr (, expr)*] [HAVING expr]
                 [ORDER BY order (, order)*] [LIMIT int]
    join      := (JOIN | INNER JOIN | LEFT [OUTER] JOIN) qualified ON expr
    expr      := or
    or        := and (OR and)*
    and       := not (AND not)*
    not       := NOT not | predicate
    predicate := additive ([NOT] BETWEEN additive AND additive
                          | [NOT] IN ( expr (, expr)* )
                          | [NOT] IN ( select )
                          | IS [NOT] NULL
                          | cmp-op additive)?
    additive  := multiplicative ((+|-) multiplicative)*
    mult      := unary ((*|/|%) unary)*
    unary     := - unary | primary
    primary   := literal | DATE str | INTERVAL str unit | CAST ( expr AS ident )
               | func ( [DISTINCT] args ) | [NOT] EXISTS ( select )
               | ident | ( expr ) | ( select ) | *
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenKind, tokenize

__all__ = ["Parser", "parse", "parse_expression"]

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_TYPE_NAMES = {
    "bool", "boolean", "int32", "integer", "int64", "bigint",
    "float32", "real", "float64", "double", "string", "varchar", "date32", "date",
}


class Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, text: str) -> None:
        self.tokens: List[Token] = tokenize(text)
        self.pos = 0

    # -- cursor helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        return self._peek().matches(kind, text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.matches(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want}, found {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenKind.KEYWORD, word) is not None

    # -- entry points -------------------------------------------------------------

    def parse_statement(self) -> ast.SelectStatement:
        stmt = self._select()
        self._expect(TokenKind.EOF)
        return stmt

    def parse_expression_only(self) -> ast.Expression:
        expr = self._expression()
        self._expect(TokenKind.EOF)
        return expr

    # -- statement -------------------------------------------------------------------

    def _select(self) -> ast.SelectStatement:
        ctes: List[ast.CommonTableExpr] = []
        if self._keyword("WITH"):
            ctes.append(self._cte())
            while self._accept(TokenKind.PUNCT, ","):
                ctes.append(self._cte())
        self._expect(TokenKind.KEYWORD, "SELECT")
        distinct = self._keyword("DISTINCT")
        items = [self._select_item()]
        while self._accept(TokenKind.PUNCT, ","):
            items.append(self._select_item())
        self._expect(TokenKind.KEYWORD, "FROM")
        table = self._table_name()
        joins: List[ast.JoinClause] = []
        while True:
            join = self._join_clause()
            if join is None:
                break
            joins.append(join)
        where = self._expression() if self._keyword("WHERE") else None
        group_by: List[ast.Expression] = []
        if self._keyword("GROUP"):
            self._expect(TokenKind.KEYWORD, "BY")
            group_by.append(self._expression())
            while self._accept(TokenKind.PUNCT, ","):
                group_by.append(self._expression())
        having = self._expression() if self._keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self._keyword("ORDER"):
            self._expect(TokenKind.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenKind.PUNCT, ","):
                order_by.append(self._order_item())
        limit = None
        if self._keyword("LIMIT"):
            token = self._expect(TokenKind.INTEGER)
            limit = int(token.text)
        return ast.SelectStatement(
            select_items=tuple(items),
            from_table=table,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
            joins=tuple(joins),
            ctes=tuple(ctes),
        )

    def _cte(self) -> ast.CommonTableExpr:
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.KEYWORD, "AS")
        self._expect(TokenKind.PUNCT, "(")
        query = self._select()
        self._expect(TokenKind.PUNCT, ")")
        return ast.CommonTableExpr(name=name, query=query)

    def _join_clause(self) -> Optional[ast.JoinClause]:
        if self._keyword("INNER"):
            self._expect(TokenKind.KEYWORD, "JOIN")
            kind = "inner"
        elif self._keyword("LEFT"):
            self._keyword("OUTER")
            self._expect(TokenKind.KEYWORD, "JOIN")
            kind = "left"
        elif self._keyword("JOIN"):
            kind = "inner"
        else:
            return None
        table = self._table_name()
        self._expect(TokenKind.KEYWORD, "ON")
        condition = self._expression()
        return ast.JoinClause(kind=kind, table=table, condition=condition)

    def _select_item(self) -> ast.SelectItem:
        expr = self._expression()
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenKind.IDENT).text
        elif self._check(TokenKind.IDENT):
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        descending = False
        if self._keyword("DESC"):
            descending = True
        else:
            self._keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _table_name(self) -> ast.TableName:
        parts = [self._expect(TokenKind.IDENT).text]
        while self._accept(TokenKind.PUNCT, "."):
            parts.append(self._expect(TokenKind.IDENT).text)
        if len(parts) == 1:
            return ast.TableName(table=parts[0])
        if len(parts) == 2:
            return ast.TableName(schema=parts[0], table=parts[1])
        if len(parts) == 3:
            return ast.TableName(catalog=parts[0], schema=parts[1], table=parts[2])
        raise ParseError(
            f"table name has too many parts: {'.'.join(parts)}",
            position=self._peek().position,
        )

    # -- expressions -------------------------------------------------------------------

    def _expression(self) -> ast.Expression:
        return self._or()

    def _or(self) -> ast.Expression:
        left = self._and()
        while self._keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and())
        return left

    def _and(self) -> ast.Expression:
        left = self._not()
        while self._keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not())
        return left

    def _not(self) -> ast.Expression:
        if self._keyword("NOT"):
            inner = self._not()
            # Keep [NOT] EXISTS canonical: the negation lives on the node
            # itself so rewrite rules match one shape, not two.
            if isinstance(inner, ast.ExistsExpr):
                return ast.ExistsExpr(inner.subquery, negated=not inner.negated)
            return ast.UnaryOp("NOT", inner)
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        negated = self._keyword("NOT")
        if self._keyword("BETWEEN"):
            low = self._additive()
            self._expect(TokenKind.KEYWORD, "AND")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)
        if self._keyword("IN"):
            self._expect(TokenKind.PUNCT, "(")
            if self._check(TokenKind.KEYWORD, "SELECT") or self._check(
                TokenKind.KEYWORD, "WITH"
            ):
                subquery = self._select()
                self._expect(TokenKind.PUNCT, ")")
                return ast.InSubquery(left, subquery, negated=negated)
            items = [self._expression()]
            while self._accept(TokenKind.PUNCT, ","):
                items.append(self._expression())
            self._expect(TokenKind.PUNCT, ")")
            return ast.InList(left, tuple(items), negated=negated)
        if negated:
            token = self._peek()
            raise ParseError(
                "NOT must be followed by BETWEEN or IN here", position=token.position
            )
        if self._keyword("IS"):
            is_not = self._keyword("NOT")
            self._expect(TokenKind.KEYWORD, "NULL")
            return ast.IsNull(left, negated=is_not)
        token = self._peek()
        if token.kind == TokenKind.OPERATOR and token.text in _COMPARISONS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._additive())
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == TokenKind.OPERATOR and token.text in ("+", "-"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == TokenKind.OPERATOR and token.text in ("*", "/", "%"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        if self._accept(TokenKind.OPERATOR, "-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept(TokenKind.OPERATOR, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._peek()

        if token.kind == TokenKind.INTEGER:
            self._advance()
            return ast.Literal(int(token.text))
        if token.kind == TokenKind.FLOAT:
            self._advance()
            return ast.Literal(float(token.text))
        if token.kind == TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)

        if token.kind == TokenKind.KEYWORD:
            word = token.text.upper()
            if word == "NULL":
                self._advance()
                return ast.Literal(None)
            if word in ("TRUE", "FALSE"):
                self._advance()
                return ast.Literal(word == "TRUE")
            if word == "DATE":
                self._advance()
                iso = self._expect(TokenKind.STRING).text
                return ast.DateLiteral(iso)
            if word == "INTERVAL":
                self._advance()
                amount_text = self._expect(TokenKind.STRING).text
                try:
                    amount = int(amount_text)
                except ValueError:
                    raise ParseError(
                        f"interval amount must be an integer, got {amount_text!r}",
                        position=token.position,
                    ) from None
                unit_token = self._peek()
                if unit_token.kind == TokenKind.KEYWORD and unit_token.text in (
                    "DAY", "MONTH", "YEAR",
                ):
                    self._advance()
                    return ast.IntervalLiteral(amount, unit_token.text)
                raise ParseError(
                    "expected DAY, MONTH or YEAR after INTERVAL",
                    position=unit_token.position,
                )
            if word == "CAST":
                self._advance()
                self._expect(TokenKind.PUNCT, "(")
                expr = self._expression()
                self._expect(TokenKind.KEYWORD, "AS")
                type_token = self._advance()
                type_name = type_token.text.lower()
                if type_name not in _TYPE_NAMES:
                    raise ParseError(
                        f"unknown type {type_token.text!r} in CAST",
                        position=type_token.position,
                    )
                self._expect(TokenKind.PUNCT, ")")
                return ast.Cast(expr, _canonical_type(type_name))
            if word == "EXISTS":
                self._advance()
                self._expect(TokenKind.PUNCT, "(")
                subquery = self._select()
                self._expect(TokenKind.PUNCT, ")")
                return ast.ExistsExpr(subquery)
            if word in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                self._advance()
                return self._function_call(word.lower())
            if word in ("DAY", "MONTH", "YEAR"):
                # Contextual keywords: valid column names outside INTERVAL.
                self._advance()
                return ast.ColumnRef(word.lower())

        if token.kind == TokenKind.IDENT:
            self._advance()
            if self._check(TokenKind.PUNCT, "("):
                return self._function_call(token.text)
            if self._check(TokenKind.PUNCT, "."):
                self._advance()
                column = self._expect(TokenKind.IDENT)
                return ast.ColumnRef(column.text, qualifier=token.text)
            return ast.ColumnRef(token.text)

        if token.matches(TokenKind.PUNCT, "("):
            self._advance()
            if self._check(TokenKind.KEYWORD, "SELECT") or self._check(
                TokenKind.KEYWORD, "WITH"
            ):
                subquery = self._select()
                self._expect(TokenKind.PUNCT, ")")
                return ast.ScalarSubquery(subquery)
            expr = self._expression()
            self._expect(TokenKind.PUNCT, ")")
            return expr

        if token.matches(TokenKind.OPERATOR, "*"):
            self._advance()
            return ast.Star()

        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r}",
            position=token.position,
        )

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenKind.PUNCT, "(")
        distinct = self._keyword("DISTINCT")
        args: List[ast.Expression] = []
        if not self._check(TokenKind.PUNCT, ")"):
            args.append(self._expression())
            while self._accept(TokenKind.PUNCT, ","):
                args.append(self._expression())
        self._expect(TokenKind.PUNCT, ")")
        return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)


def _canonical_type(name: str) -> str:
    aliases = {
        "boolean": "bool",
        "integer": "int32",
        "bigint": "int64",
        "real": "float32",
        "double": "float64",
        "varchar": "string",
        "date": "date32",
    }
    return aliases.get(name, name)


def parse(text: str) -> ast.SelectStatement:
    """Parse one SELECT statement."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used in tests and the connector)."""
    return Parser(text).parse_expression_only()
