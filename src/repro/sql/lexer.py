"""SQL lexer: source text -> token stream."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexError

__all__ = ["Token", "TokenKind", "Lexer", "tokenize", "KEYWORDS"]


class TokenKind:
    """Token categories (plain string constants keep Token lightweight)."""

    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    """
    SELECT DISTINCT AS FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT
    AND OR NOT BETWEEN IN IS NULL TRUE FALSE LIKE
    CAST DATE INTERVAL DAY MONTH YEAR
    COUNT SUM AVG MIN MAX
    JOIN INNER LEFT OUTER ON
    WITH EXISTS
    """.split()
)

_OPERATORS = (
    "<>", "<=", ">=", "!=", "||",
    "=", "<", ">", "+", "-", "*", "/", "%",
)
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int

    def matches(self, kind: str, text: str | None = None) -> bool:
        if self.kind != kind:
            return False
        if text is None:
            return True
        if kind == TokenKind.KEYWORD:
            return self.text.upper() == text.upper()
        return self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.text!r}@{self.position})"


class Lexer:
    """Single-pass scanner producing :class:`Token` objects."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def tokens(self) -> Iterator[Token]:
        text = self.text
        n = len(text)
        while True:
            while self.pos < n and text[self.pos].isspace():
                self.pos += 1
            # Line comments.
            if text.startswith("--", self.pos):
                end = text.find("\n", self.pos)
                self.pos = n if end < 0 else end + 1
                continue
            if self.pos >= n:
                yield Token(TokenKind.EOF, "", self.pos)
                return
            start = self.pos
            ch = text[self.pos]

            if ch == "'":
                yield self._string(start)
                continue
            if ch.isdigit() or (ch == "." and self.pos + 1 < n and text[self.pos + 1].isdigit()):
                yield self._number(start)
                continue
            if ch.isalpha() or ch == "_" or ch == '"':
                yield self._identifier(start)
                continue
            matched = False
            for op in _OPERATORS:
                if text.startswith(op, self.pos):
                    self.pos += len(op)
                    yield Token(TokenKind.OPERATOR, op, start)
                    matched = True
                    break
            if matched:
                continue
            if ch in _PUNCT:
                self.pos += 1
                yield Token(TokenKind.PUNCT, ch, start)
                continue
            raise LexError(f"unexpected character {ch!r}", position=start)

    # -- scanners ------------------------------------------------------------

    def _string(self, start: int) -> Token:
        text = self.text
        pos = start + 1
        out = []
        while pos < len(text):
            if text[pos] == "'":
                if pos + 1 < len(text) and text[pos + 1] == "'":
                    out.append("'")
                    pos += 2
                    continue
                self.pos = pos + 1
                return Token(TokenKind.STRING, "".join(out), start)
            out.append(text[pos])
            pos += 1
        raise LexError("unterminated string literal", position=start)

    def _number(self, start: int) -> Token:
        text = self.text
        pos = start
        is_float = False
        while pos < len(text) and text[pos].isdigit():
            pos += 1
        if pos < len(text) and text[pos] == ".":
            is_float = True
            pos += 1
            while pos < len(text) and text[pos].isdigit():
                pos += 1
        if pos < len(text) and text[pos] in "eE":
            scan = pos + 1
            if scan < len(text) and text[scan] in "+-":
                scan += 1
            if scan < len(text) and text[scan].isdigit():
                is_float = True
                pos = scan
                while pos < len(text) and text[pos].isdigit():
                    pos += 1
        self.pos = pos
        kind = TokenKind.FLOAT if is_float else TokenKind.INTEGER
        return Token(kind, text[start:pos], start)

    def _identifier(self, start: int) -> Token:
        text = self.text
        if text[start] == '"':
            # Delimited identifier: keeps case, never a keyword.
            end = text.find('"', start + 1)
            if end < 0:
                raise LexError("unterminated delimited identifier", position=start)
            self.pos = end + 1
            return Token(TokenKind.IDENT, text[start + 1 : end], start)
        pos = start
        while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        self.pos = pos
        word = text[start:pos]
        if word.upper() in KEYWORDS:
            return Token(TokenKind.KEYWORD, word.upper(), start)
        return Token(TokenKind.IDENT, word.lower(), start)


def tokenize(text: str) -> List[Token]:
    """Scan ``text`` into a token list ending with EOF."""
    return list(Lexer(text).tokens())
