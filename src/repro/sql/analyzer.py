"""Semantic analysis: AST -> typed expressions + aggregation structure.

The analyzer resolves column references against the table schema,
type-checks every expression, desugars BETWEEN / IN / date-interval
arithmetic, and — for aggregate queries — rewrites aggregate calls into
references to generated aggregate output columns so downstream planning
sees three clean layers:

1. *pre-aggregation* scalar expressions (group keys + aggregate args),
2. the aggregation itself (:class:`repro.exec.AggregateSpec` list),
3. *post-aggregation* scalar expressions (select items, HAVING, ORDER BY).

This mirrors Presto's analyzer/planner split and gives the Presto-OCS
connector exact structures to extract for pushdown.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrowsim.dtypes import (
    BOOL,
    DATE32,
    DataType,
    FLOAT64,
    INT64,
    STRING,
)
from repro.arrowsim.dtypes import dtype_from_name
from repro.arrowsim.schema import Field, Schema
from repro.errors import AnalysisError, JoinKeyMismatchError
from repro.exec.aggregates import AggregateSpec
from repro.exec.expressions import (
    SCALAR_FUNCTION_NAMES,
    AndExpr,
    ArithExpr,
    CastExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    InExpr,
    IsNullExpr,
    LiteralExpr,
    NegExpr,
    NotExpr,
    OrExpr,
    ScalarFuncExpr,
    arithmetic_result_type,
    scalar_function_dtype,
)
from repro.sql import ast_nodes as ast

__all__ = ["AnalyzedQuery", "AnalyzedJoin", "Analyzer", "analyze", "AggregateCall"]

_EPOCH = datetime.date(1970, 1, 1)


def _date_to_days(iso: str) -> int:
    try:
        return (datetime.date.fromisoformat(iso) - _EPOCH).days
    except ValueError as exc:
        raise AnalysisError(f"bad date literal {iso!r}: {exc}") from exc


def _shift_months(days: int, months: int) -> int:
    date = _EPOCH + datetime.timedelta(days=days)
    month_index = date.year * 12 + (date.month - 1) + months
    year, month = divmod(month_index, 12)
    day = min(
        date.day,
        [31, 29 if year % 4 == 0 and (year % 100 != 0 or year % 400 == 0) else 28,
         31, 30, 31, 30, 31, 31, 30, 31, 30, 31][month],
    )
    return (datetime.date(year, month + 1, day) - _EPOCH).days


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate instance: its spec plus the typed argument expression."""

    spec: AggregateSpec
    arg_expr: Optional[Expr]  # None for COUNT(*)


@dataclass
class AnalyzedJoin:
    """One resolved equi-join step of a left-deep join chain.

    The *joined scope* is ``left_schema`` ⊕ renamed right columns: a right
    column whose name collides with a column already in scope appears
    downstream as ``{right_table}${name}``.  ``right_renames`` maps every
    original right column name to its joined-scope name (identity when no
    collision), so the planner can translate residual predicates back into
    the right table's native names for pushdown.

    For chained joins (``FROM a JOIN b ... JOIN c ...``) the "left" side
    of join *i* is the accumulated scope of the FROM table and every
    earlier join, so ``left_keys`` may name renamed columns introduced by
    an earlier join step.

    Semi/anti joins (produced by the rewriter) filter the probe side
    without publishing right columns: their scope is visible only to
    their own ON clause, the joined scope is unchanged, and ``subquery``
    carries the analyzed derived table standing in for ``right_table``
    (a synthetic ``$semiN`` alias).
    """

    kind: str  # "inner" | "left" | "semi" | "anti"
    left_table: ast.TableName
    right_table: ast.TableName
    left_schema: Schema
    right_schema: Schema
    #: Equi-join key column names, positionally paired; ``left_keys`` uses
    #: joined-scope names, ``right_keys`` the right table's original names.
    left_keys: Tuple[str, ...] = ()
    right_keys: Tuple[str, ...] = ()
    right_renames: Dict[str, str] = field(default_factory=dict)
    #: Analyzed derived table for subquery-backed (semi/anti) joins.
    subquery: Optional["AnalyzedQuery"] = None


@dataclass
class AnalyzedQuery:
    """Everything the planner needs, fully resolved and typed."""

    table: ast.TableName
    table_schema: Schema
    #: WHERE predicate over input columns (BOOL), or None.
    where: Optional[Expr]
    #: True when the query aggregates (GROUP BY present or any agg call).
    is_aggregate: bool
    #: (key column name, pre-agg expression) pairs, in GROUP BY order.
    group_keys: List[Tuple[str, Expr]] = field(default_factory=list)
    #: Aggregates in first-appearance order; outputs named ``$aggN``.
    aggregates: List[AggregateCall] = field(default_factory=list)
    #: (output name, post-agg expression) — for non-aggregate queries the
    #: expressions read input columns directly.
    output_items: List[Tuple[str, Expr]] = field(default_factory=list)
    #: HAVING predicate over aggregation outputs (BOOL), or None.
    having: Optional[Expr] = None
    #: (sort column name, descending); names refer to output columns or to
    #: hidden ``$sortN`` columns appended to output_items.
    sort_keys: List[Tuple[str, bool]] = field(default_factory=list)
    #: Hidden column names (sort helpers) to drop after sorting.
    hidden_outputs: List[str] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    #: One entry per JOIN clause, in syntactic order (a left-deep chain);
    #: ``table_schema`` is then the full joined scope.
    joins: List[AnalyzedJoin] = field(default_factory=list)

    @property
    def join(self) -> Optional[AnalyzedJoin]:
        """The sole join of a two-table query (None otherwise)."""
        return self.joins[0] if len(self.joins) == 1 else None

    @property
    def required_columns(self) -> List[str]:
        """Input table columns the query actually touches (scan pruning)."""
        refs: set[str] = set()
        exprs: List[Expr] = []
        if self.where is not None:
            exprs.append(self.where)
        exprs.extend(expr for _, expr in self.group_keys)
        exprs.extend(c.arg_expr for c in self.aggregates if c.arg_expr is not None)
        if not self.is_aggregate:
            exprs.extend(expr for _, expr in self.output_items)
        for expr in exprs:
            refs |= expr.column_refs()
        for join in self.joins:
            # Every join step reads its key columns on both sides.
            refs |= set(join.left_keys)
            refs |= {join.right_renames[k] for k in join.right_keys}
        # Preserve table column order for determinism.
        return [n for n in self.table_schema.names() if n in refs]


@dataclass(frozen=True)
class _Scope:
    """One table visible in the query's namespace.

    ``renames`` maps the table's original column names to their names in
    the accumulated joined scope (identity for the FROM table and for
    non-colliding joined columns).  Semi/anti join scopes are
    ``visible=False``: only their own ON clause may name them — they
    contribute nothing to the output scope.
    """

    table: str
    schema: Schema
    renames: Dict[str, str]
    visible: bool = True


class Analyzer:
    """Analyzes one SELECT statement against a table schema.

    For join queries ``join_schemas`` supplies one schema per JOIN
    clause (in syntactic order) and ``self.schema`` becomes the full
    joined scope: the FROM table's columns followed by each joined
    table's columns, collision-renamed to ``{table}${column}``.
    """

    def __init__(
        self,
        statement: ast.SelectStatement,
        table_schema: Schema,
        right_schema: Optional[Schema] = None,
        *,
        join_schemas: Optional[Sequence[Optional[Schema]]] = None,
    ) -> None:
        self.statement = statement
        self.schema = table_schema
        self._agg_calls: List[Tuple[ast.FunctionCall, AggregateCall]] = []
        self._key_by_ast: Dict[ast.Expression, Tuple[str, Expr]] = {}
        self._scopes: List[_Scope] = [
            _Scope(
                table=statement.from_table.table,
                schema=table_schema,
                renames={n: n for n in table_schema.names()},
            )
        ]
        self._joins: List[AnalyzedJoin] = []
        if statement.joins:
            if join_schemas is None:
                join_schemas = [right_schema] if right_schema is not None else None
            if join_schemas is None or len(join_schemas) != len(statement.joins):
                raise AnalysisError(
                    "join analysis requires the joined table's schema "
                    f"for each of the {len(statement.joins)} JOIN clause(s)"
                )
            for clause, schema in zip(statement.joins, join_schemas):
                if clause.subquery is not None:
                    self._joins.append(self._build_subquery_join(clause, schema))
                else:
                    if schema is None:
                        raise AnalysisError(
                            f"JOIN {clause.table.table} requires the joined "
                            f"table's schema"
                        )
                    self._joins.append(self._build_join_scope(clause, schema))
        elif right_schema is not None or join_schemas:
            raise AnalysisError("join schema given but the query has no JOIN")

    def _build_subquery_join(
        self, join: ast.JoinClause, base_schema: Optional[Schema]
    ) -> AnalyzedJoin:
        """Analyze a derived-table (semi/anti) join's subquery, then
        extend the scope chain with its *planned* output schema.

        ``base_schema`` is the subquery's FROM-table schema (the caller
        resolves it through the catalog; the subquery has no joins of
        its own by rewrite-rule construction).
        """
        assert join.subquery is not None
        if join.kind not in ("semi", "anti"):
            raise AnalysisError(
                f"derived-table joins must be semi or anti, got {join.kind!r}"
            )
        if base_schema is None:
            raise AnalysisError(
                f"join subquery {join.table.table} requires its FROM "
                f"table's schema"
            )
        sub_analyzed = Analyzer(join.subquery, base_schema).analyze()
        # Planning the subquery yields its exact output schema (names,
        # dtypes, nullability) — the build side the join will see.
        from repro.plan.planner import plan_query

        sub_schema = plan_query(sub_analyzed).output_schema()
        analyzed = self._build_join_scope(join, sub_schema)
        analyzed.subquery = sub_analyzed
        return analyzed

    def _build_join_scope(
        self, join: ast.JoinClause, right_schema: Schema
    ) -> AnalyzedJoin:
        """Extend the accumulated scope by one joined table."""
        if any(scope.table == join.table.table for scope in self._scopes):
            raise AnalysisError(
                f"duplicate table {join.table.table!r} in FROM/JOIN; "
                f"self-joins are not supported"
            )
        left_schema = self.schema
        left_names = set(left_schema.names())
        fields = list(left_schema.fields)
        # Semi/anti joins filter the probe side: their columns exist only
        # for the ON clause, never in the downstream scope.
        filtering = join.kind in ("semi", "anti")
        renames: Dict[str, str] = {}
        for f in right_schema:
            name = f.name
            if name in left_names:
                name = f"{join.table.table}${name}"
                if name in left_names:
                    raise AnalysisError(
                        f"cannot disambiguate column {f.name!r} of joined "
                        f"table {join.table.table!r}"
                    )
            renames[f.name] = name
            if not filtering:
                # A probe-preserving LEFT join makes every right column
                # nullable.
                nullable = f.nullable or join.kind == "left"
                fields.append(Field(name, f.dtype, nullable))
        if not filtering:
            self.schema = Schema(fields)
        self._scopes.append(
            _Scope(
                table=join.table.table,
                schema=right_schema,
                renames=renames,
                visible=not filtering,
            )
        )
        return AnalyzedJoin(
            kind=join.kind,
            left_table=self.statement.from_table,
            right_table=join.table,
            left_schema=left_schema,
            right_schema=right_schema,
            right_renames=renames,
        )

    def _analyze_join_condition(self, index: int) -> None:
        """Resolve join ``index``'s ON into paired equi-join key columns.

        Works on the AST (not resolved expressions) so a key-type
        mismatch surfaces as :class:`JoinKeyMismatchError` rather than a
        generic comparison-coercion failure.  The condition may only
        reference the newly joined table and tables already in scope
        (the FROM table plus earlier joins).
        """
        join = self._joins[index]
        conjuncts: List[ast.Expression] = []
        stack = [self.statement.joins[index].condition]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinaryOp) and node.op.upper() == "AND":
                stack.extend((node.right, node.left))
            else:
                conjuncts.append(node)
        # Scopes visible to this ON clause: the FROM table plus the
        # *visible* scopes of joins 0..index-1 (earlier semi/anti scopes
        # are private to their own ON), plus this join's own scope.
        visible = [s for s in self._scopes[: index + 1] if s.visible]
        visible.append(self._scopes[index + 1])
        right_scope = visible[-1]
        left_keys: List[str] = []
        right_keys: List[str] = []
        for term in conjuncts:
            if not (
                isinstance(term, ast.BinaryOp)
                and term.op == "="
                and isinstance(term.left, ast.ColumnRef)
                and isinstance(term.right, ast.ColumnRef)
            ):
                raise AnalysisError(
                    f"JOIN ON supports only equi-join conjuncts "
                    f"(column = column), got {term.to_sql()}"
                )
            sides: Dict[str, str] = {}
            for ref in (term.left, term.right):
                name = self._scope_name(ref, scopes=visible)
                is_right = name in set(right_scope.renames.values())
                sides["right" if is_right else "left"] = name
            if len(sides) != 2:
                raise AnalysisError(
                    "each JOIN ON conjunct must compare a left-table column "
                    "with a right-table column"
                )
            left_dtype = join.left_schema.field(sides["left"]).dtype
            joined_to_right = {v: k for k, v in right_scope.renames.items()}
            right_original = joined_to_right[sides["right"]]
            right_dtype = join.right_schema.field(right_original).dtype
            if left_dtype is not right_dtype:
                raise JoinKeyMismatchError(
                    f"join key types differ: {sides['left']} is {left_dtype}, "
                    f"{right_original} is {right_dtype}"
                )
            left_keys.append(sides["left"])
            right_keys.append(right_original)
        if not left_keys:
            raise AnalysisError("JOIN ON must name at least one key pair")
        join.left_keys = tuple(left_keys)
        join.right_keys = tuple(right_keys)

    # -- public ----------------------------------------------------------------

    def analyze(self) -> AnalyzedQuery:
        stmt = self.statement
        if stmt.ctes:
            raise AnalysisError(
                "WITH/CTE bindings must be inlined or materialized by the "
                "rewriter before analysis"
            )
        for index in range(len(self._joins)):
            self._analyze_join_condition(index)
        where = None
        if stmt.where is not None:
            where = self._resolve_scalar(stmt.where, allow_aggregates=False)
            if where.dtype is not BOOL:
                raise AnalysisError(
                    f"WHERE must be boolean, got {where.dtype}"
                )

        is_aggregate = bool(stmt.group_by) or any(
            self._contains_aggregate(item.expr) for item in stmt.select_items
        ) or (stmt.having is not None)

        query = AnalyzedQuery(
            table=stmt.from_table,
            table_schema=self.schema,
            where=where,
            is_aggregate=is_aggregate,
            limit=stmt.limit,
            distinct=stmt.distinct,
            joins=list(self._joins),
        )

        if is_aggregate:
            self._analyze_aggregate_query(query)
        else:
            self._analyze_scalar_query(query)
        self._analyze_order_by(query)
        if is_aggregate:
            # ORDER BY / HAVING may have registered additional aggregates.
            query.aggregates = [call for _, call in self._agg_calls]
        return query

    # -- aggregate path -------------------------------------------------------------

    def _analyze_aggregate_query(self, query: AnalyzedQuery) -> None:
        stmt = self.statement
        for i, key_ast in enumerate(stmt.group_by):
            expr = self._resolve_scalar(key_ast, allow_aggregates=False)
            if isinstance(expr, ColumnExpr):
                name = expr.name
            else:
                name = f"$key{i}"
            self._key_by_ast[key_ast] = (name, expr)
            query.group_keys.append((name, expr))

        # Select items: rewrite aggregates/keys into post-agg references.
        names_seen: set[str] = set()
        for item in stmt.select_items:
            post = self._resolve_post_agg(item.expr)
            name = self._unique_name(item.output_name, names_seen)
            query.output_items.append((name, post))

        if stmt.having is not None:
            having = self._resolve_post_agg(stmt.having)
            if having.dtype is not BOOL:
                raise AnalysisError(f"HAVING must be boolean, got {having.dtype}")
            query.having = having

        query.aggregates = [call for _, call in self._agg_calls]

        if stmt.distinct:
            raise AnalysisError("SELECT DISTINCT with aggregation is not supported")

    def _resolve_post_agg(self, node: ast.Expression) -> Expr:
        """Resolve an expression in post-aggregation scope.

        Aggregate calls become references to ``$aggN`` columns; GROUP BY
        expressions become references to their key columns; anything else
        must bottom out in keys/aggregates, not raw input columns.
        """
        if node in self._key_by_ast:
            name, expr = self._key_by_ast[node]
            return ColumnExpr(name, expr.dtype)
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            call = self._register_aggregate(node)
            return ColumnExpr(call.spec.output, call.spec.output_dtype)
        if isinstance(node, ast.ColumnRef):
            # A bare column in an aggregate query must be a group key.
            scoped = self._scope_name(node)
            for name, expr in self._key_by_ast.values():
                if isinstance(expr, ColumnExpr) and expr.name == scoped:
                    return ColumnExpr(name, expr.dtype)
            raise AnalysisError(
                f"column {node.name!r} must appear in GROUP BY or inside an aggregate"
            )
        # Recurse structurally by re-resolving through the scalar machinery
        # with a hook that handles keys/aggregates at any depth.
        return self._resolve(node, scope="post")

    def _register_aggregate(self, node: ast.FunctionCall) -> AggregateCall:
        for seen_ast, call in self._agg_calls:
            if seen_ast == node:
                return call
        if len(node.args) > 1:
            raise AnalysisError(f"{node.name} takes at most one argument")
        arg_expr: Optional[Expr] = None
        input_dtype: Optional[DataType] = None
        if node.args and not isinstance(node.args[0], ast.Star):
            arg_expr = self._resolve_scalar(node.args[0], allow_aggregates=False)
            input_dtype = arg_expr.dtype
            if node.name in ("sum", "avg", "variance", "stddev") and not arg_expr.dtype.is_numeric:
                raise AnalysisError(
                    f"{node.name} requires a numeric argument, got {arg_expr.dtype}"
                )
        elif node.name != "count":
            raise AnalysisError(f"{node.name}(*) is not defined")
        index = len(self._agg_calls)
        spec = AggregateSpec(
            func=node.name,
            arg=f"$agg{index}_arg" if arg_expr is not None else None,
            output=f"$agg{index}",
            input_dtype=input_dtype,
            distinct=node.distinct,
        )
        call = AggregateCall(spec=spec, arg_expr=arg_expr)
        self._agg_calls.append((node, call))
        return call

    # -- non-aggregate path ---------------------------------------------------------

    def _analyze_scalar_query(self, query: AnalyzedQuery) -> None:
        names_seen: set[str] = set()
        for item in self.statement.select_items:
            if isinstance(item.expr, ast.Star):
                for f in self.schema:
                    name = self._unique_name(f.name, names_seen)
                    query.output_items.append((name, ColumnExpr(f.name, f.dtype)))
                continue
            expr = self._resolve_scalar(item.expr, allow_aggregates=False)
            name = self._unique_name(item.output_name, names_seen)
            query.output_items.append((name, expr))

    # -- ORDER BY (both paths) ----------------------------------------------------------

    def _analyze_order_by(self, query: AnalyzedQuery) -> None:
        stmt = self.statement
        output_types = {name: expr.dtype for name, expr in query.output_items}
        alias_exprs = dict(query.output_items)
        for i, order in enumerate(stmt.order_by):
            node = order.expr
            # 1. Bare identifier matching an output column/alias.
            if isinstance(node, ast.ColumnRef) and node.name in output_types:
                query.sort_keys.append((node.name, order.descending))
                continue
            # 2. Otherwise: resolve in the appropriate scope and add a
            #    hidden sort column.
            if query.is_aggregate:
                expr = self._resolve_post_agg(node)
            else:
                expr = self._resolve_scalar(node, allow_aggregates=False)
            # Reuse an existing output if it is the same expression.
            reused = None
            for name, out_expr in alias_exprs.items():
                if out_expr == expr:
                    reused = name
                    break
            if reused is not None:
                query.sort_keys.append((reused, order.descending))
                continue
            hidden = f"$sort{i}"
            query.output_items.append((hidden, expr))
            query.hidden_outputs.append(hidden)
            query.sort_keys.append((hidden, order.descending))

    # -- expression resolution core -------------------------------------------------------

    def _resolve_scalar(self, node: ast.Expression, allow_aggregates: bool) -> Expr:
        if not allow_aggregates and self._contains_aggregate(node):
            raise AnalysisError(
                f"aggregate not allowed in this context: {node.to_sql()}"
            )
        return self._resolve(node, scope="input")

    def _resolve(self, node: ast.Expression, scope: str) -> Expr:
        if scope == "post":
            if node in self._key_by_ast:
                name, expr = self._key_by_ast[node]
                return ColumnExpr(name, expr.dtype)
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                call = self._register_aggregate(node)
                return ColumnExpr(call.spec.output, call.spec.output_dtype)

        if isinstance(node, ast.Literal):
            return self._literal(node.value)
        if isinstance(node, ast.DateLiteral):
            return LiteralExpr(_date_to_days(node.iso), DATE32)
        if isinstance(node, ast.IntervalLiteral):
            raise AnalysisError("INTERVAL literal only valid in date arithmetic")
        if isinstance(node, ast.ColumnRef):
            if scope == "post":
                return self._resolve_post_agg(node)
            name = self._scope_name(node)
            f = self.schema.field(name)
            return ColumnExpr(f.name, f.dtype)
        if isinstance(node, ast.Star):
            raise AnalysisError("* only valid in COUNT(*) or top-level SELECT")
        if isinstance(node, ast.UnaryOp):
            if node.op.upper() == "NOT":
                operand = self._resolve(node.operand, scope)
                if operand.dtype is not BOOL:
                    raise AnalysisError(f"NOT requires boolean, got {operand.dtype}")
                return NotExpr(operand)
            operand = self._resolve(node.operand, scope)
            if not operand.dtype.is_numeric:
                raise AnalysisError(f"unary minus requires numeric, got {operand.dtype}")
            return NegExpr(operand, operand.dtype)
        if isinstance(node, ast.BinaryOp):
            return self._binary(node, scope)
        if isinstance(node, ast.Between):
            operand = self._resolve(node.expr, scope)
            low = self._coerce_pair(operand, self._resolve(node.low, scope))[1]
            high = self._coerce_pair(operand, self._resolve(node.high, scope))[1]
            between = AndExpr(
                (CompareExpr(">=", operand, low), CompareExpr("<=", operand, high))
            )
            return NotExpr(between) if node.negated else between
        if isinstance(node, ast.InList):
            operand = self._resolve(node.expr, scope)
            values = []
            for item in node.items:
                resolved = self._resolve(item, scope)
                if not isinstance(resolved, LiteralExpr):
                    raise AnalysisError("IN list items must be literals")
                values.append(resolved.value)
            return InExpr(operand, tuple(values), negated=node.negated)
        if isinstance(node, ast.IsNull):
            return IsNullExpr(self._resolve(node.expr, scope), negated=node.negated)
        if isinstance(node, ast.Cast):
            operand = self._resolve(node.expr, scope)
            return CastExpr(operand, dtype_from_name(node.type_name))
        if isinstance(node, ast.FunctionCall):
            if node.is_aggregate:
                raise AnalysisError(
                    f"aggregate {node.name} not allowed in this context"
                )
            if node.name in SCALAR_FUNCTION_NAMES:
                if len(node.args) != 1:
                    raise AnalysisError(f"{node.name} takes exactly one argument")
                operand = self._resolve(node.args[0], scope)
                if not operand.dtype.is_numeric:
                    raise AnalysisError(
                        f"{node.name} requires a numeric argument, got {operand.dtype}"
                    )
                return ScalarFuncExpr(
                    node.name, operand, scalar_function_dtype(node.name, operand.dtype)
                )
            raise AnalysisError(f"unknown function {node.name!r}")
        if isinstance(node, (ast.ExistsExpr, ast.InSubquery, ast.ScalarSubquery)):
            raise AnalysisError(
                f"subquery expression was not rewritten to a join or "
                f"literal (rewrite guard vetoed it, or the rewriter is "
                f"disabled): {node.to_sql()}"
            )
        raise AnalysisError(f"cannot analyze expression {node!r}")

    def _binary(self, node: ast.BinaryOp, scope: str) -> Expr:
        op = node.op.upper()
        if op in ("AND", "OR"):
            left = self._resolve(node.left, scope)
            right = self._resolve(node.right, scope)
            for side in (left, right):
                if side.dtype is not BOOL:
                    raise AnalysisError(f"{op} requires booleans, got {side.dtype}")
            cls = AndExpr if op == "AND" else OrExpr
            # Flatten nested conjunctions for cleaner pushdown extraction.
            operands: List[Expr] = []
            for side in (left, right):
                if isinstance(side, cls):
                    operands.extend(side.operands)
                else:
                    operands.append(side)
            return cls(tuple(operands))

        # Date +/- interval.
        if op in ("+", "-") and isinstance(node.right, ast.IntervalLiteral):
            left = self._resolve(node.left, scope)
            if left.dtype is not DATE32:
                raise AnalysisError("INTERVAL arithmetic requires a date operand")
            interval = node.right
            sign = 1 if op == "+" else -1
            if interval.unit == "DAY":
                return ArithExpr(
                    op, left, LiteralExpr(interval.amount, INT64), DATE32
                )
            # MONTH/YEAR need calendar math: only on constant dates.
            if isinstance(left, LiteralExpr):
                months = interval.amount * (12 if interval.unit == "YEAR" else 1)
                return LiteralExpr(
                    _shift_months(int(left.value), sign * months), DATE32
                )
            raise AnalysisError(
                f"INTERVAL {interval.unit} arithmetic requires a constant date"
            )

        left = self._resolve(node.left, scope)
        right = self._resolve(node.right, scope)

        if op in ("=", "<>", "<", "<=", ">", ">="):
            left, right = self._coerce_pair(left, right)
            return CompareExpr(op, left, right)

        if op in ("+", "-", "*", "/", "%"):
            dtype = arithmetic_result_type(op, left.dtype, right.dtype)
            return ArithExpr(op, left, right, dtype)

        raise AnalysisError(f"unknown binary operator {op!r}")

    # -- helpers -----------------------------------------------------------------------

    def _scope_name(
        self, node: ast.ColumnRef, scopes: Optional[List[_Scope]] = None
    ) -> str:
        """Resolve a (possibly qualified) column ref to its scope name.

        In a join scope, unqualified names present in more than one table
        are ambiguous; a qualifier selects the table, and the name
        translates through that table's collision renames.  ``scopes``
        restricts visibility (used while resolving ON conditions, which
        cannot see tables joined later in the chain).
        """
        if scopes is None:
            scopes = [s for s in self._scopes if s.visible]
        if len(scopes) == 1:
            if node.qualifier and node.qualifier != self.statement.from_table.table:
                raise AnalysisError(
                    f"unknown table qualifier {node.qualifier!r} "
                    f"(FROM {self.statement.from_table.table})"
                )
            if node.name not in self.schema:
                raise AnalysisError(
                    f"unknown column {node.name!r}; table has {self.schema.names()}"
                )
            return node.name
        table_names = [scope.table for scope in scopes]
        if node.qualifier:
            for scope in scopes:
                if scope.table == node.qualifier:
                    if node.name not in scope.schema:
                        raise AnalysisError(
                            f"table {scope.table!r} has no column {node.name!r}"
                        )
                    return scope.renames[node.name]
            raise AnalysisError(
                f"unknown table qualifier {node.qualifier!r} "
                f"(expected one of {table_names})"
            )
        matches = [scope for scope in scopes if node.name in scope.schema]
        if len(matches) > 1:
            owners = " or ".join(repr(scope.table) for scope in matches)
            raise AnalysisError(
                f"column {node.name!r} is ambiguous; qualify it with {owners}"
            )
        if matches:
            return matches[0].renames[node.name]
        raise AnalysisError(
            f"unknown column {node.name!r}; joined scope has "
            f"{[f.name for scope in scopes for f in scope.schema]}"
        )

    @staticmethod
    def _literal(value: object) -> LiteralExpr:
        if value is None:
            return LiteralExpr(None, INT64)
        if isinstance(value, bool):
            return LiteralExpr(value, BOOL)
        if isinstance(value, int):
            return LiteralExpr(value, INT64)
        if isinstance(value, float):
            return LiteralExpr(value, FLOAT64)
        if isinstance(value, str):
            return LiteralExpr(value, STRING)
        raise AnalysisError(f"unsupported literal {value!r}")

    def _coerce_pair(self, left: Expr, right: Expr) -> Tuple[Expr, Expr]:
        """Make two comparison operands type-compatible."""
        lt, rt = left.dtype, right.dtype
        if lt is rt:
            return left, right
        # NULL literal adopts the other side's type.
        if isinstance(left, LiteralExpr) and left.value is None:
            return LiteralExpr(None, rt), right
        if isinstance(right, LiteralExpr) and right.value is None:
            return left, LiteralExpr(None, lt)
        if lt.is_numeric and rt.is_numeric:
            return left, right  # numpy broadcasting handles mixed numerics
        if {lt.name, rt.name} == {"date32", "string"}:
            # Allow comparing a date column with an ISO string literal.
            if isinstance(right, LiteralExpr) and rt is STRING:
                return left, LiteralExpr(_date_to_days(str(right.value)), DATE32)
            if isinstance(left, LiteralExpr) and lt is STRING:
                return LiteralExpr(_date_to_days(str(left.value)), DATE32), right
        if lt is DATE32 and rt.name in ("int32", "int64"):
            return left, right
        if rt is DATE32 and lt.name in ("int32", "int64"):
            return left, right
        raise AnalysisError(f"cannot compare {lt} with {rt}")

    @staticmethod
    def _contains_aggregate(node: ast.Expression) -> bool:
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            return True
        children: List[ast.Expression] = []
        if isinstance(node, ast.UnaryOp):
            children = [node.operand]
        elif isinstance(node, ast.BinaryOp):
            children = [node.left, node.right]
        elif isinstance(node, ast.Between):
            children = [node.expr, node.low, node.high]
        elif isinstance(node, ast.InList):
            children = [node.expr, *node.items]
        elif isinstance(node, ast.IsNull):
            children = [node.expr]
        elif isinstance(node, ast.Cast):
            children = [node.expr]
        elif isinstance(node, ast.FunctionCall):
            children = list(node.args)
        elif isinstance(node, ast.InSubquery):
            # The subquery body has its own scope; only the probe
            # expression lives in this one.
            children = [node.expr]
        return any(Analyzer._contains_aggregate(c) for c in children)

    @staticmethod
    def _unique_name(base: str, seen: set[str]) -> str:
        name = base
        counter = 1
        while name in seen:
            name = f"{base}_{counter}"
            counter += 1
        seen.add(name)
        return name


def analyze(
    statement: ast.SelectStatement,
    table_schema: Schema,
    right_schema: Optional[Schema] = None,
    *,
    join_schemas: Optional[Sequence[Schema]] = None,
) -> AnalyzedQuery:
    """Analyze ``statement`` against ``table_schema`` (+ join schemas).

    ``right_schema`` is the single-join shorthand; chained joins pass
    one schema per JOIN clause via ``join_schemas``.
    """
    return Analyzer(
        statement, table_schema, right_schema, join_schemas=join_schemas
    ).analyze()
