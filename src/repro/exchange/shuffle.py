"""The shuffle: Arrow-IPC exchange pages moved over the simulated network.

One :class:`ExchangeFabric` lives on the compute node and hosts the
``exchange`` RPC service.  A *put* is the network hop: the sender
serializes a partition's batches into an Arrow-IPC framed page, claims a
backpressure slot, and sends the page over the exchange link through
:func:`~repro.rpc.retry.retrying_call` — so injected link faults exercise
real retries, and a page lost beyond the retry budget surfaces as
:class:`~repro.errors.ExchangeFaultError`.  A *get* (``drain``) is a
local buffer read on the receiving side: pages are returned sorted by
``(sender, seq)`` and de-duplicated, so downstream row order — and hence
any order-sensitive float aggregation — is identical across replays no
matter how page arrivals interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.arrowsim.ipc import deserialize_batches, serialize_batches
from repro.arrowsim.record_batch import RecordBatch
from repro.compress.codec import decode_varint, encode_varint
from repro.errors import (
    ExchangeError,
    ExchangeFaultError,
    ExchangePartitionError,
    RpcStatusError,
)
from repro.rpc.channel import RpcClient, RpcService
from repro.rpc.retry import RetryPolicy, retrying_call
from repro.sim import santrack
from repro.sim.costmodel import CostParams
from repro.sim.kernel import ProcessGenerator, Simulator
from repro.sim.node import SimNode
from repro.sim.resources import Resource
from repro.trace import NOOP_TRACER, Span, SpanContext, Tracer

__all__ = ["ExchangePage", "ExchangeFabric", "encode_page", "decode_page"]

_PAGE_MAGIC = b"EXPG"
_PUT_ACK = b"ok"


@dataclass(frozen=True)
class ExchangePage:
    """One framed shuffle page: addressing header + Arrow-IPC body."""

    exchange_id: int
    partition: int
    sender: int
    seq: int
    body: bytes


def encode_page(page: ExchangePage) -> bytes:
    out = bytearray(_PAGE_MAGIC)
    for value in (page.exchange_id, page.partition, page.sender, page.seq):
        out += encode_varint(value)
    out += encode_varint(len(page.body))
    out += page.body
    return bytes(out)


def decode_page(buf: bytes) -> ExchangePage:
    if len(buf) < 4 or buf[:4] != _PAGE_MAGIC:
        raise ExchangeError("bad exchange page magic")
    pos = 4
    values: List[int] = []
    for _ in range(5):
        value, pos = decode_varint(buf, pos)
        values.append(value)
    exchange_id, partition, sender, seq, body_len = values
    if pos + body_len > len(buf):
        raise ExchangeError(
            f"truncated exchange page: need {body_len} body bytes, "
            f"have {len(buf) - pos}"
        )
    return ExchangePage(exchange_id, partition, sender, seq, buf[pos : pos + body_len])


@dataclass(frozen=True)
class DrainResult:
    """Everything a consumer task pulls out of one exchange partition."""

    batches: Tuple[RecordBatch, ...]
    pages: int
    nbytes: int
    rows: int


class ExchangeFabric:
    """Receiving side of the shuffle, hosted on the compute node.

    Buffers are keyed ``(exchange_id, partition)``; within a buffer,
    pages are keyed ``(sender, seq)`` so a retried put whose first
    attempt's *response* frame was dropped (the page actually landed)
    de-duplicates instead of double-counting rows.
    """

    SERVICE = "exchange"
    METHOD = "exchange.put"

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        costs: CostParams,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self.sim = sim
        self.node = node
        self.costs = costs
        self.tracer = tracer
        self.service = RpcService(sim, node, self.SERVICE, costs, tracer=tracer)
        self.service.register(self.METHOD, self._handle_put)
        self._partitions: Dict[int, int] = {}
        self._inflight: Dict[int, Resource] = {}
        self._buffers: Dict[Tuple[int, int], Dict[Tuple[int, int], bytes]] = {}
        #: Partitions already drained.  A put landing afterwards is a
        #: zombie: a deadline-abandoned server handler finishing after
        #: the consumer consumed the buffer.  Accepting it would leave
        #: residue a re-drain double-counts and inflate page metrics.
        self._closed: Set[Tuple[int, int]] = set()
        self._next_exchange_id = 0
        self.pages_received = 0
        self.bytes_received = 0
        self.duplicate_pages = 0
        self.retries = 0

    def create(self, num_partitions: int) -> int:
        """Register a new exchange; returns its id."""
        if num_partitions < 1:
            raise ExchangePartitionError(
                f"exchange needs >= 1 partition, got {num_partitions}"
            )
        exchange_id = self._next_exchange_id
        self._next_exchange_id += 1
        self._partitions[exchange_id] = num_partitions
        self._inflight[exchange_id] = Resource(
            self.sim, capacity=self.costs.exchange_max_inflight_pages
        )
        for partition in range(num_partitions):
            self._buffers[(exchange_id, partition)] = {}
        return exchange_id

    def num_partitions(self, exchange_id: int) -> int:
        try:
            return self._partitions[exchange_id]
        except KeyError:
            raise ExchangeError(f"unknown exchange {exchange_id}") from None

    # -- sender side ------------------------------------------------------

    def put(
        self,
        client: RpcClient,
        exchange_id: int,
        partition: int,
        sender: int,
        seq: int,
        batches: List[RecordBatch],
        policy: RetryPolicy,
        parent: "Span | SpanContext | None" = None,
    ) -> ProcessGenerator:
        """DES generator (``yield from``): ship one page, with backpressure.

        The caller's node pays Arrow serialization CPU, then the page
        races the retry policy across the exchange link.  Returns the
        framed page size in bytes (what actually crossed the wire, minus
        RPC framing overhead).  Raises :class:`ExchangeFaultError` when
        the retry budget is exhausted.
        """
        body = serialize_batches(batches)
        page = encode_page(
            ExchangePage(
                exchange_id=exchange_id,
                partition=partition,
                sender=sender,
                seq=seq,
                body=body,
            )
        )
        yield client.node.execute(
            len(page) * self.costs.arrow_serialize_cycles_per_byte,
            name="exchange-serialize",
        )
        inflight = self._inflight.get(exchange_id)
        if inflight is None:
            raise ExchangeError(f"unknown exchange {exchange_id}")
        with inflight.request(owner=f"put:{sender}:{seq}") as slot:
            yield slot
            try:
                yield from retrying_call(
                    client,
                    self.METHOD,
                    page,
                    policy,
                    on_retry=self._count_retry,
                    parent=parent,
                )
            except RpcStatusError as exc:
                raise ExchangeFaultError(
                    f"exchange {exchange_id} partition {partition} page "
                    f"(sender {sender}, seq {seq}) lost after "
                    f"{getattr(exc, 'attempts', '?')} attempts: {exc}"
                ) from exc
        return len(page)

    def _count_retry(self, attempt: int, exc: RpcStatusError, delay: float) -> None:
        self.retries += 1

    # -- receiving side ---------------------------------------------------

    def _handle_put(
        self, payload: bytes, trace: Optional[SpanContext] = None
    ) -> ProcessGenerator:
        page = decode_page(payload)
        buffer = self._buffers.get((page.exchange_id, page.partition))
        if buffer is None:
            raise ExchangePartitionError(
                f"exchange {page.exchange_id} has no partition {page.partition}"
            )
        yield self.node.execute(
            self.costs.exchange_page_ingest_cycles, name="exchange-ingest"
        )
        key = (page.sender, page.seq)
        if (page.exchange_id, page.partition) in self._closed:
            # Zombie put: the consumer already drained this partition.
            # Ack and count as a duplicate instead of inserting residue.
            self.duplicate_pages += 1
        elif key in buffer:
            # Retried put whose original landed: ack again, count once.
            self.duplicate_pages += 1
        else:
            sanitizer = santrack.active()
            if sanitizer is not None:
                # Inserts of distinct (sender, seq) keys commute (drain
                # sorts), so this is an update; it still conflicts with
                # a same-instant drain (write), the zombie-put hazard.
                sanitizer.record_update(
                    ("exchange", id(self), page.exchange_id, page.partition),
                    "exchange.put",
                )
            buffer[key] = page.body
            self.pages_received += 1
            self.bytes_received += len(page.body)
        return _PUT_ACK

    def drain(self, exchange_id: int, partition: int) -> DrainResult:
        """Consume a partition's buffered pages in ``(sender, seq)`` order.

        A plain function, not a process: the get side is a local buffer
        read on the node that already holds the pages.  The caller
        charges Arrow deserialization CPU for ``nbytes`` on whichever
        node runs the consumer task.
        """
        buffer = self._buffers.get((exchange_id, partition))
        if buffer is None:
            raise ExchangePartitionError(
                f"exchange {exchange_id} has no partition {partition}"
            )
        sanitizer = santrack.active()
        if sanitizer is not None:
            sanitizer.record_write(
                ("exchange", id(self), exchange_id, partition), "exchange.drain"
            )
        self._closed.add((exchange_id, partition))
        batches: List[RecordBatch] = []
        nbytes = 0
        for key in sorted(buffer):
            body = buffer[key]
            nbytes += len(body)
            batches.extend(deserialize_batches(body))
        pages = len(buffer)
        buffer.clear()
        return DrainResult(
            batches=tuple(batches),
            pages=pages,
            nbytes=nbytes,
            rows=sum(b.num_rows for b in batches),
        )
