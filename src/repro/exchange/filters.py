"""Dynamic join filters: min/max range + Bloom filter over build keys.

PushdownDB's bloom-join and Presto's dynamic filtering both hinge on the
same move: once the build side of a join has been read, the set of join
keys it produced is a *data-dependent* predicate on the probe side.  The
coordinator publishes that predicate as a :class:`DynamicFilter` — a
min/max range plus a :class:`BloomFilter` — and the connector folds it
into the probe scan's pushed Substrait filter, so storage nodes prune
probe rows before they are ever shuffled.

:class:`BloomProbeExpr` is the evaluable expression form: it rides the
normal expression pipeline (and its Substrait twin ``SBloomProbe`` rides
the wire), so the embedded engine needs no special casing to apply it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.dtypes import BOOL, DataType
from repro.arrowsim.record_batch import RecordBatch
from repro.errors import JoinError
from repro.exec.expressions import (
    AndExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    LiteralExpr,
)
from repro.exchange.hashing import hash_column, mix64

__all__ = ["BloomFilter", "BloomProbeExpr", "DynamicFilter", "build_dynamic_filter"]

#: Bits budgeted per distinct build key (~1% false-positive rate at k=6).
BLOOM_BITS_PER_KEY = 10
#: Number of probe positions per membership test.
BLOOM_HASH_COUNT = 6
#: Smallest filter ever built, so tiny build sides still behave.
BLOOM_MIN_BITS = 1024


@dataclass(frozen=True)
class BloomFilter:
    """An immutable Bloom filter over 64-bit value hashes.

    ``bits`` is held as ``bytes`` (not an ndarray) so the filter is
    hashable and can live inside frozen expression nodes; ``num_bits``
    is always a power of two so probe positions reduce with a mask.
    """

    bits: bytes
    num_bits: int
    hashes: int

    @classmethod
    def build(cls, column: ColumnArray) -> "BloomFilter":
        """Size for the column's distinct values and populate."""
        hashed = np.unique(hash_column(column)[column.is_valid()])
        target = max(BLOOM_MIN_BITS, BLOOM_BITS_PER_KEY * max(1, len(hashed)))
        num_bits = 1 << int(target - 1).bit_length()
        array = np.zeros(num_bits // 8, dtype=np.uint8)
        for position in cls._positions(hashed, num_bits):
            np.bitwise_or.at(
                array, position >> 3, np.uint8(1) << (position & np.uint64(7))
            )
        return cls(bits=array.tobytes(), num_bits=num_bits, hashes=BLOOM_HASH_COUNT)

    @staticmethod
    def _positions(hashed: np.ndarray, num_bits: int) -> "list[np.ndarray]":
        """The k probe positions per hash (double hashing, mask reduce)."""
        mask = np.uint64(num_bits - 1)
        h1 = hashed
        h2 = mix64(hashed ^ np.uint64(0xA076_1D64_78BD_642F)) | np.uint64(1)
        return [
            ((h1 + np.uint64(i) * h2) & mask) for i in range(BLOOM_HASH_COUNT)
        ]

    def contains_hashes(self, hashed: np.ndarray) -> np.ndarray:
        """Vectorized membership test over pre-hashed values."""
        array = np.frombuffer(self.bits, dtype=np.uint8)
        mask = np.uint64(self.num_bits - 1)
        h1 = hashed
        h2 = mix64(hashed ^ np.uint64(0xA076_1D64_78BD_642F)) | np.uint64(1)
        member = np.ones(len(hashed), dtype=bool)
        for i in range(self.hashes):
            position = (h1 + np.uint64(i) * h2) & mask
            member &= (
                array[position >> 3] >> (position & np.uint64(7)).astype(np.uint8)
            ) & 1 == 1
        return member

    def contains(self, column: ColumnArray) -> np.ndarray:
        """Membership mask for a column (NULL rows test as not-member)."""
        member = self.contains_hashes(hash_column(column))
        if column.validity is not None:
            member &= column.validity
        return member

    @property
    def fill_fraction(self) -> float:
        array = np.frombuffer(self.bits, dtype=np.uint8)
        return float(np.unpackbits(array).sum()) / self.num_bits


@dataclass(frozen=True)
class BloomProbeExpr(Expr):
    """``bloom_contains(operand)`` — membership in a build-side Bloom filter.

    Evaluates to BOOL per row; NULL operands evaluate to not-member
    (a join key that is NULL can never match, so pruning it is safe for
    the inner and probe-preserving joins this engine plans).
    """

    operand: Expr
    bloom: BloomFilter
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        column = self.operand.evaluate(batch)
        return ColumnArray(BOOL, self.bloom.contains(column))

    def __repr__(self) -> str:
        return (
            f"bloom_contains({self.operand!r}, "
            f"{self.bloom.num_bits}b/{self.bloom.hashes}h)"
        )


@dataclass(frozen=True)
class DynamicFilter:
    """A build-side summary of join-key values, publishable to the probe.

    ``min_value``/``max_value`` are None only when the build side was
    empty — the filter then rejects every probe row.
    """

    column: str
    dtype: DataType
    min_value: Optional[object]
    max_value: Optional[object]
    bloom: BloomFilter
    build_rows: int
    distinct_keys: int

    def to_expression(self, probe_column: str, probe_dtype: DataType) -> Expr:
        """The filter as a pushable predicate over the probe column.

        The range conjuncts double as row-group pruning bounds at the
        storage node; the Bloom probe prunes row-by-row inside surviving
        groups.
        """
        ref = ColumnExpr(probe_column, probe_dtype)
        if self.min_value is None or self.max_value is None:
            # Empty build side: nothing can join.  A contradiction keeps
            # the plan well-formed while rejecting every row.
            return CompareExpr("<", ref, ColumnExpr(probe_column, probe_dtype))
        return AndExpr(
            (
                CompareExpr(">=", ref, LiteralExpr(self.min_value, self.dtype)),
                CompareExpr("<=", ref, LiteralExpr(self.max_value, self.dtype)),
                BloomProbeExpr(ref, self.bloom),
            )
        )


def build_dynamic_filter(batches: "list[RecordBatch]", column: str) -> DynamicFilter:
    """Summarize the build side's ``column`` into a :class:`DynamicFilter`."""
    if not batches:
        raise JoinError("dynamic filter needs at least one (possibly empty) build page")
    dtype = batches[0].schema.field(column).dtype
    parts = [b.column(column) for b in batches]
    valid_values = np.concatenate(
        [p.values[p.is_valid()] for p in parts]
    )
    validity = np.ones(len(valid_values), dtype=bool)
    merged = ColumnArray(dtype, valid_values, validity if len(valid_values) else None)
    bloom = BloomFilter.build(merged)
    if len(valid_values) == 0:
        return DynamicFilter(
            column=column, dtype=dtype, min_value=None, max_value=None,
            bloom=bloom, build_rows=0, distinct_keys=0,
        )
    if valid_values.dtype == object:
        low = min(str(v) for v in valid_values)
        high = max(str(v) for v in valid_values)
        distinct = len(set(map(str, valid_values)))
    else:
        low = valid_values.min().item()
        high = valid_values.max().item()
        distinct = len(np.unique(valid_values))
    return DynamicFilter(
        column=column, dtype=dtype, min_value=low, max_value=high,
        bloom=bloom, build_rows=sum(b.num_rows for b in batches),
        distinct_keys=distinct,
    )
