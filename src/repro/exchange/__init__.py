"""Distributed exchange: hash partitioning, shuffle pages, dynamic filters.

The subsystem behind multi-stage (join) query execution:

- :mod:`repro.exchange.hashing` — deterministic vectorized value hashing
  shared by partition assignment and Bloom membership.
- :mod:`repro.exchange.partition` — split batches by hash of join keys.
- :mod:`repro.exchange.shuffle` — :class:`ExchangeFabric`, the RPC-backed
  page store that moves Arrow-IPC framed pages over the simulated
  exchange link with backpressure and retry-on-fault.
- :mod:`repro.exchange.filters` — build-side :class:`DynamicFilter`
  (min/max + Bloom) pushed into the probe side's OCS scan.
"""

from repro.exchange.filters import (
    BloomFilter,
    BloomProbeExpr,
    DynamicFilter,
    build_dynamic_filter,
)
from repro.exchange.hashing import combine_hashes, hash_column, mix64
from repro.exchange.partition import hash_partition, partition_indices
from repro.exchange.shuffle import (
    DrainResult,
    ExchangeFabric,
    ExchangePage,
    decode_page,
    encode_page,
)

__all__ = [
    "BloomFilter",
    "BloomProbeExpr",
    "DynamicFilter",
    "build_dynamic_filter",
    "combine_hashes",
    "hash_column",
    "mix64",
    "hash_partition",
    "partition_indices",
    "DrainResult",
    "ExchangeFabric",
    "ExchangePage",
    "decode_page",
    "encode_page",
]
