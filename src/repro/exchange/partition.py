"""Hash partitioning of record batches by join-key columns.

The partitioner is the pure-compute half of the shuffle: given a batch
and the join key names, it assigns every row a partition in
``[0, num_partitions)`` using the shared deterministic hash, then splits
the batch with vectorized ``take``.  Build and probe sides use the same
function over their respective key columns, which is what guarantees
co-partitioning: equal keys always land in the same partition index.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.arrowsim.record_batch import RecordBatch
from repro.errors import ExchangePartitionError
from repro.exchange.hashing import combine_hashes, hash_column

__all__ = ["partition_indices", "hash_partition"]


def partition_indices(
    batch: RecordBatch, key_columns: Sequence[str], num_partitions: int
) -> np.ndarray:
    """Per-row partition assignment (uint64 array in ``[0, P)``)."""
    if num_partitions < 1:
        raise ExchangePartitionError(
            f"num_partitions must be >= 1, got {num_partitions}"
        )
    hashes = [hash_column(batch.column(name)) for name in key_columns]
    return combine_hashes(hashes) % np.uint64(num_partitions)


def hash_partition(
    batch: RecordBatch, key_columns: Sequence[str], num_partitions: int
) -> List[RecordBatch]:
    """Split ``batch`` into ``num_partitions`` batches by key hash.

    Row order *within* each partition preserves the input order, so the
    shuffle's (sender, seq) replay ordering fully determines downstream
    row order.
    """
    assignment = partition_indices(batch, key_columns, num_partitions)
    parts: List[RecordBatch] = []
    for p in range(num_partitions):
        rows = np.nonzero(assignment == np.uint64(p))[0]
        parts.append(batch.take(rows))
    return parts
