"""Deterministic vectorized hashing shared by the shuffle and Bloom filters.

Partition assignment and Bloom membership must agree across build and
probe sides of a join *and* across replayed runs, so everything here is a
pure function of the values — no process-salted ``hash()``, no RNG.  The
mixer is splitmix64, evaluated with numpy ``uint64`` modular arithmetic.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.arrowsim.array import ColumnArray

__all__ = ["mix64", "hash_column", "combine_hashes"]

_CRC_SALT = 0x9E3779B9
_SPLITMIX_INC = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a ``uint64`` array (wrapping arithmetic)."""
    v = values.astype(np.uint64, copy=True)
    v += _SPLITMIX_INC
    v ^= v >> np.uint64(30)
    v *= _MIX_A
    v ^= v >> np.uint64(27)
    v *= _MIX_B
    v ^= v >> np.uint64(31)
    return v


def hash_column(column: ColumnArray) -> np.ndarray:
    """Per-row 64-bit hash of one column (NULL rows hash to mix64(0))."""
    values = column.values
    if values.dtype.kind in ("i", "u"):
        raw = values.astype(np.int64, copy=False).view(np.uint64)
    elif values.dtype.kind == "f":
        # Hash the bit pattern; normalize -0.0 so equal keys hash equally.
        normalized = values.astype(np.float64, copy=True)
        normalized[normalized == 0.0] = 0.0  # simlint: ignore[float-eq]
        raw = normalized.view(np.uint64)
    elif values.dtype.kind == "b":
        raw = values.astype(np.uint64)
    else:
        # Two independently-seeded crc32s packed into 64 bits: a single
        # crc32 caps row-hash entropy at 2^32, which degrades the Bloom
        # filter's false-positive rate and collides distinct strings at
        # the ~65k birthday bound.
        raw = np.fromiter(
            (
                (zlib.crc32(b, _CRC_SALT) << 32) | zlib.crc32(b)
                for b in (str(v).encode("utf-8") for v in values)
            ),
            dtype=np.uint64,
            count=len(values),
        )
    hashed = mix64(raw)
    if column.validity is not None:
        hashed = np.where(column.validity, hashed, mix64(np.zeros(1, np.uint64)))
    return hashed


def combine_hashes(hashes: "list[np.ndarray]") -> np.ndarray:
    """Fold per-column hashes into one row hash (order-sensitive)."""
    out = hashes[0]
    for h in hashes[1:]:
        out = mix64(out ^ h)
    return out
