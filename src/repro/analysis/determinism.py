"""Determinism checker: digest replays + adversarial tie-break runs.

PR 2 claimed "traced runs are bit-identical in simulated time"; this
module turns that claim into a checked invariant:

* :class:`DigestRecorder` hangs off the simulator's ``observer`` hook and
  folds every dispatched event (timestamp, sequence id, event type/name,
  scalar payload) into a sha256 chain — a per-event digest of the
  schedule as it unfolds.
* :func:`check_determinism` replays one seeded workload twice with FIFO
  tie-breaking and diffs the digest chains event by event (the first
  divergence pinpoints where two "identical" runs split), then runs a
  third replay under **LIFO** tie-breaking.  Events at equal simulated
  time are the only places dispatch order is policy-dependent; if the
  canonical (row-order-independent) result digest changes under the
  adversarial order, some same-timestamp pair of events races on shared
  state — a genuine ordering hazard, not a formatting difference.

Run the built-in harness with ``python -m repro.analysis.determinism``.
It covers three suites: a quickstart-style seeded sensor workload under
full OCS pushdown (``query``), one straggler trial of the dag bench with
speculation on (``dag``, via :func:`check_dag_determinism`), and a
seeded multi-tenant service run (``service``, via
:func:`check_service_determinism` — there the adversarial LIFO replay
must reproduce the *entire* SLO digest, timings included, because
same-instant submission and dispatch ordering is exactly what admission
control serializes).
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.arrowsim.record_batch import RecordBatch
from repro.errors import DeterminismError
from repro.sim.kernel import Event

__all__ = [
    "DigestRecorder",
    "ReplayReport",
    "DeterminismReport",
    "canonical_result_digest",
    "run_recorded",
    "check_determinism",
    "check_dag_determinism",
    "run_service_recorded",
    "check_service_determinism",
    "main",
]

_SCALARS = (bool, int, float, str, bytes, type(None))


class DigestRecorder:
    """Simulator observer that chains a sha256 digest over every event."""

    def __init__(self) -> None:
        self._chain = hashlib.sha256(b"repro.analysis.determinism")
        self.digests: List[str] = []
        self.max_simultaneous = 0
        self._last_time: Optional[float] = None
        self._run = 0

    def __call__(self, time: float, seq: int, event: Event) -> None:
        chain = self._chain
        chain.update(float(time).hex().encode())
        chain.update(str(seq).encode())
        chain.update(type(event).__name__.encode())
        name = getattr(event, "name", "")
        if name:
            chain.update(str(name).encode())
        value = event._value
        if isinstance(value, _SCALARS):
            chain.update(repr(value).encode())
        else:
            chain.update(type(value).__name__.encode())
        self.digests.append(chain.hexdigest())
        # Track the longest same-instant run independently of the kernel
        # (the recorder may outlive the per-run Simulator).  Exact float
        # equality is correct: both values are the same heap timestamp.
        if self._last_time is not None and time == self._last_time:  # simlint: ignore[float-eq]
            self._run += 1
        else:
            self._run = 1
            self._last_time = time
        if self._run > self.max_simultaneous:
            self.max_simultaneous = self._run

    @property
    def final_digest(self) -> str:
        return self.digests[-1] if self.digests else self._chain.hexdigest()


def canonical_result_digest(batch: RecordBatch) -> str:
    """Row-order-independent digest of a result batch.

    Sorts columns by name and rows by repr so legitimate order
    differences (e.g. unordered SELECT output) do not register, while any
    value difference does.
    """
    data = batch.to_pydict()
    names = sorted(data)
    digest = hashlib.sha256()
    for name in names:
        digest.update(name.encode())
        dtype = batch.schema.field(name).dtype
        digest.update(dtype.name.encode())
    rows = sorted(zip(*(data[name] for name in names)), key=repr) if names else []
    for row in rows:
        digest.update(repr(row).encode())
    return digest.hexdigest()


@dataclass(frozen=True, kw_only=True)
class ReplayReport:
    """One instrumented run: schedule digests + canonical result digest."""

    tie_break: str
    events: int
    event_digests: List[str]
    result_digest: str
    execution_seconds: float
    max_simultaneous: int

    @property
    def final_digest(self) -> str:
        return self.event_digests[-1] if self.event_digests else ""


@dataclass(frozen=True, kw_only=True)
class DeterminismReport:
    """Outcome of the two-replay + adversarial-order harness."""

    baseline: ReplayReport
    replay: ReplayReport
    adversarial: ReplayReport
    #: Index of the first event where the two FIFO replays diverged
    #: (None when they are digest-identical).
    first_divergence: Optional[int] = None
    notes: List[str] = field(default_factory=list)

    @property
    def replay_identical(self) -> bool:
        return (
            self.first_divergence is None
            and self.baseline.result_digest == self.replay.result_digest
        )

    @property
    def ordering_hazard(self) -> bool:
        """True when LIFO tie-breaking changed the query's *results*."""
        return self.adversarial.result_digest != self.baseline.result_digest

    @property
    def ok(self) -> bool:
        return self.replay_identical and not self.ordering_hazard

    def raise_if_failed(self) -> None:
        if not self.replay_identical:
            where = (
                f"event {self.first_divergence}"
                if self.first_divergence is not None
                else "result digest"
            )
            raise DeterminismError(
                f"two identical seeded replays diverged at {where}"
            )
        if self.ordering_hazard:
            raise DeterminismError(
                "LIFO tie-break replay changed query results: some "
                "same-timestamp events race on shared state"
            )

    def summary(self) -> str:
        lines = [
            f"baseline   : {self.baseline.events} events, "
            f"{self.baseline.max_simultaneous} max simultaneous, "
            f"result {self.baseline.result_digest[:16]}",
            f"replay     : {'identical' if self.replay_identical else 'DIVERGED'}"
            + (
                f" (first divergence at event {self.first_divergence})"
                if self.first_divergence is not None
                else ""
            ),
            f"adversarial: {'identical results' if not self.ordering_hazard else 'ORDERING HAZARD'}"
            f" under LIFO tie-breaking",
        ]
        lines.extend(self.notes)
        return "\n".join(lines)


def _first_divergence(a: List[str], b: List[str]) -> Optional[int]:
    for index, (da, db) in enumerate(zip(a, b)):
        if da != db:
            return index
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def run_recorded(
    env: Any,
    sql: str,
    config: Any,
    schema: str,
    catalog: str = "repro",
    tie_break: str = "fifo",
) -> ReplayReport:
    """Run one query on ``env`` with a :class:`DigestRecorder` attached."""
    recorder = DigestRecorder()
    result = env.run(
        sql, config, schema, catalog, tie_break=tie_break, observer=recorder
    )
    return ReplayReport(
        tie_break=tie_break,
        events=len(recorder.digests),
        event_digests=recorder.digests,
        result_digest=canonical_result_digest(result.batch),
        execution_seconds=result.execution_seconds,
        max_simultaneous=recorder.max_simultaneous,
    )


def check_determinism(
    env: Any, sql: str, config: Any, schema: str, catalog: str = "repro"
) -> DeterminismReport:
    """Two FIFO replays diffed per event + one adversarial LIFO replay."""
    baseline = run_recorded(env, sql, config, schema, catalog, tie_break="fifo")
    replay = run_recorded(env, sql, config, schema, catalog, tie_break="fifo")
    adversarial = run_recorded(env, sql, config, schema, catalog, tie_break="lifo")
    notes: List[str] = []
    if baseline.max_simultaneous <= 1:
        notes.append(
            "note: no same-timestamp event runs observed; the adversarial "
            "replay exercised nothing"
        )
    return DeterminismReport(
        baseline=baseline,
        replay=replay,
        adversarial=adversarial,
        first_divergence=_first_divergence(
            baseline.event_digests, replay.event_digests
        ),
        notes=notes,
    )


# --------------------------------------------------------------------------
# Bench suites: dag (speculation) and service (multi-tenant)
# --------------------------------------------------------------------------


def check_dag_determinism(seed: int = 0) -> DeterminismReport:
    """One straggler trial of the dag bench under the replay harness.

    Speculation plus a degraded storage node is the scheduler's densest
    same-instant territory — backup launches, primary/backup completion
    ties, split settlement.  The adversarial LIFO replay asserts none of
    it leaks into query results.
    """
    from repro.bench import dag
    from repro.bench.env import RunConfig
    from repro.config import FaultSpec
    from repro.core import PushdownPolicy
    from repro.engine import SchedulerSpec

    env = dag.build_environment("smoke", seed)
    config = RunConfig(
        label="determinism-dag",
        mode="ocs",
        policy=PushdownPolicy.filter_only(),
        split_granularity="file",
        faults=FaultSpec(storage_latency_multipliers={0: 20.0}, seed=seed),
        scheduler=SchedulerSpec(speculation=True, speculation_quorum=0.25),
    )
    return check_determinism(env, dag.SQL, config, schema="tpch")


def run_service_recorded(
    *, queries: int = 8, seed: int = 0, tie_break: str = "fifo"
) -> ReplayReport:
    """One seeded multi-tenant service run with a recorder attached.

    The ``result_digest`` is the SLO report digest: per-query status,
    latency/queue-wait/execution timings, and result values.  Service
    runs must reproduce all of it — not just result rows — because
    admission control serializes same-instant submissions by dispatch
    order, and that serialization must not depend on the tie-break
    policy.
    """
    from repro.bench.service import build_environment
    from repro.config import ServiceSpec
    from repro.service import QueryService, QueryTemplate, open_loop
    from repro.workloads.laghos import LAGHOS_QUERY
    from repro.workloads.tpch import TPCH_Q1

    recorder = DigestRecorder()
    spec = ServiceSpec(max_active_queries=2, max_queue_depth=8)
    service = QueryService(
        build_environment(), spec, tie_break=tie_break, observer=recorder
    )
    templates = [
        QueryTemplate(tenant="analytics", sql=TPCH_Q1, schema="tpch", label="q1"),
        QueryTemplate(tenant="hpc", sql=LAGHOS_QUERY, schema="hpc", label="laghos"),
    ]
    open_loop(
        service,
        templates,
        queries=queries,
        mean_interarrival_s=0.05,
        seed=seed,
    )
    # report() drains the service, which is what actually runs the
    # simulation — snapshot the recorder only afterwards.
    report = service.report()
    return ReplayReport(
        tie_break=tie_break,
        events=len(recorder.digests),
        event_digests=list(recorder.digests),
        result_digest=report.digest(),
        execution_seconds=service.sim.now,
        max_simultaneous=recorder.max_simultaneous,
    )


def check_service_determinism(queries: int = 8, seed: int = 0) -> DeterminismReport:
    """Two FIFO service replays diffed per event + one adversarial LIFO."""
    baseline = run_service_recorded(queries=queries, seed=seed, tie_break="fifo")
    replay = run_service_recorded(queries=queries, seed=seed, tie_break="fifo")
    adversarial = run_service_recorded(queries=queries, seed=seed, tie_break="lifo")
    notes: List[str] = []
    if baseline.max_simultaneous <= 1:
        notes.append(
            "note: no same-timestamp event runs observed; the adversarial "
            "replay exercised nothing"
        )
    return DeterminismReport(
        baseline=baseline,
        replay=replay,
        adversarial=adversarial,
        first_divergence=_first_divergence(
            baseline.event_digests, replay.event_digests
        ),
        notes=notes,
    )


# --------------------------------------------------------------------------
# Built-in harness (CI entry point)
# --------------------------------------------------------------------------


def _build_harness_env() -> Any:
    """Quickstart-style seeded sensor workload, sized for CI."""
    import numpy as np

    from repro.bench.env import Environment
    from repro.workloads.datasets import DatasetSpec

    def make_file(index: int) -> RecordBatch:
        rng = np.random.default_rng(42 + index)
        n = 5_000
        return RecordBatch.from_arrays(
            {
                "sensor_id": rng.integers(0, 16, n),
                "temperature": 20 + 5 * rng.standard_normal(n),
                "pressure": 1000 + 30 * rng.standard_normal(n),
                "day": np.full(n, index, dtype=np.int64),
            }
        )

    env = Environment()
    env.add_dataset(
        DatasetSpec(
            schema_name="lab",
            table_name="readings",
            bucket="sensors",
            file_count=4,
            generator=make_file,
        )
    )
    return env


HARNESS_QUERY = """
SELECT sensor_id, count(*) AS samples, avg(temperature) AS avg_temp,
       max(pressure) AS max_p
FROM readings
WHERE temperature > 25.0
GROUP BY sensor_id
ORDER BY avg_temp DESC
LIMIT 10
"""


def _check_query_suite() -> DeterminismReport:
    from repro.bench.env import RunConfig

    env = _build_harness_env()
    return check_determinism(
        env,
        HARNESS_QUERY,
        RunConfig(label="determinism", mode="ocs"),
        schema="lab",
    )


def main() -> int:
    suites = [
        ("query", _check_query_suite),
        ("dag", check_dag_determinism),
        ("service", check_service_determinism),
    ]
    ok = True
    for name, check in suites:
        report = check()
        print(f"== {name} ==")
        print(report.summary())
        print()
        ok = ok and report.ok
    if ok:
        print("determinism harness: clean")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
