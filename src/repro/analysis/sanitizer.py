"""SimTSan: a happens-before race sanitizer for the simulated cluster.

The determinism harness (:mod:`repro.analysis.determinism`) can prove
*that* two replays diverged; it cannot say *where*.  SimTSan closes the
gap with vector-clock happens-before tracking over the discrete-event
kernel, in the style of dynamic race detectors (TSan/FastTrack), adapted
to the one failure mode a deterministic simulator actually has: two
accesses to shared state at the **same simulated instant** whose order
rides on the kernel's tie-break policy.

Model
-----

* Every simulated **actor** gets a logical clock component: the driver
  (test/bench code between ``sim.run`` calls), each kernel ``Process``
  (coordinator query tasks, DAG stage attempts, splits, storage-node and
  exchange handlers, service tenant loops), and an ephemeral actor per
  dispatched event for bare callbacks.
* Clocks advance and merge on **causal edges**, delivered by the kernel
  hooks (``on_schedule`` / ``on_dispatch`` / ``on_resume`` /
  ``on_step_end``): scheduling an event snapshots the scheduler's clock;
  resuming a process merges the dispatching event's snapshot.  RPC
  send/recv and response delivery (:mod:`repro.rpc.channel`) ride these
  edges for free — every message is an event.  Side-channel handoffs
  (exchange buffers, DAG stage results) add explicit :meth:`publish` /
  :meth:`observe` / :meth:`observe_completion` edges.  A kernel
  :class:`~repro.sim.kernel.Barrier` is a global synchronization point:
  it merges every clock dispatched so far.
* Instrumented shared surfaces (metrics registries, the pushdown
  monitor, exchange buffers, admission ledgers, DAG commit state) call
  :meth:`record_read` / :meth:`record_write` / :meth:`record_update`.
  ``update`` marks commutative read-modify-write mutations (counter
  adds, window appends, union-window edges): update/update pairs can
  never race, but update against a plain read or write can.
* Two same-instant accesses to one key **race** when at least one side
  mutates (and they are not both commutative updates) and neither
  happens-before the other: the epoch check ``clock_B[actor_A] >=
  epoch_A`` fails both ways.

A race produces a :class:`RaceReport` carrying both access sites
(surface and caller ``file:line``), actor/span names, event ids, and the
simulated timestamp; strict mode raises it as
:class:`~repro.errors.SanitizerError` (code ``RACE``).  Suppress an
accepted-by-design site with a ``# simtsan: ignore[site]`` comment on
the access line (see ``docs/STATIC_ANALYSIS.md``).

The sanitizer never schedules events and never reads anything the
simulation does not already compute, so sanitized runs are byte-identical
to unsanitized runs in event digests and simulated time; with no
sanitizer installed the hooks are ``None`` checks and the surfaces poll
:func:`repro.sim.santrack.active` once — the zero-cost off path.
"""

from __future__ import annotations

import linecache
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import SanitizerError
from repro.sim import santrack
from repro.sim.kernel import Barrier, Event, Process, Simulator

__all__ = [
    "AccessInfo",
    "RaceReport",
    "SimTSan",
    "install",
    "uninstall",
]

#: Access kinds; ``update`` is a commutative read-modify-write.
READ = "read"
WRITE = "write"
UPDATE = "update"

_DRIVER = 0

_SUPPRESS_RE = re.compile(r"#\s*simtsan:\s*ignore(?:\[([A-Za-z0-9_.,\-\s]*)\])?")


def _frame_site(depth: int) -> Tuple[str, int]:
    """(filename, lineno) ``depth`` frames above this helper's caller."""
    try:
        frame = sys._getframe(depth + 1)
    except ValueError:
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


def _line_suppresses(filename: str, lineno: int, label: str) -> bool:
    """True when the source line carries ``# simtsan: ignore[...]``."""
    if lineno <= 0:
        return False
    match = _SUPPRESS_RE.search(linecache.getline(filename, lineno))
    if match is None:
        return False
    listed = match.group(1)
    if listed is None:
        return True  # blanket ``# simtsan: ignore``
    labels = {part.strip() for part in listed.split(",") if part.strip()}
    return not labels or label in labels


@dataclass(frozen=True, kw_only=True)
class AccessInfo:
    """One recorded access, as it appears in a :class:`RaceReport`."""

    #: Stable site label the instrumented surface passed ("metrics.add").
    site: str
    #: read / write / update.
    kind: str
    #: Actor (process/driver/event) that made the access.
    actor: int
    #: Human-readable actor name; process names mirror trace span names
    #: ("stage:join-0", "split-3"), so this localizes the enclosing span.
    span: str
    #: Kernel event id being dispatched at access time (None = driver).
    event_id: Optional[int]
    #: Instrumented surface method ``file:line``.
    surface: str
    #: Call site into the surface, ``file:line``.
    caller: str
    #: The actor's clock component at access time (the epoch compared).
    epoch: int

    def format(self) -> str:
        eid = "driver" if self.event_id is None else f"event {self.event_id}"
        return (
            f"{self.kind} by {self.span!r} ({eid}) at {self.site} "
            f"[{self.caller}]"
        )


@dataclass(frozen=True, kw_only=True)
class RaceReport:
    """A same-instant, causally unordered conflicting access pair."""

    key: str
    time: float
    first: AccessInfo
    second: AccessInfo

    def describe(self) -> str:
        return (
            f"same-instant race on {self.key} at t={self.time!r}: "
            f"{self.first.format()} vs {self.second.format()} — causally "
            f"unordered, so the outcome depends on the kernel tie-break "
            f"policy"
        )


@dataclass
class _Access:
    """Internal per-instant record (mutable, never exposed)."""

    actor: int
    epoch: int
    kind: str
    site: str
    span: str
    event_id: Optional[int]
    surface: Tuple[str, int]
    caller: Tuple[str, int]

    def info(self) -> AccessInfo:
        return AccessInfo(
            site=self.site,
            kind=self.kind,
            actor=self.actor,
            span=self.span,
            event_id=self.event_id,
            surface=f"{self.surface[0]}:{self.surface[1]}",
            caller=f"{self.caller[0]}:{self.caller[1]}",
            epoch=self.epoch,
        )


def _conflicts(a: str, b: str) -> bool:
    """At least one side mutates, and they are not both commutative."""
    if a == READ and b == READ:
        return False
    if a == UPDATE and b == UPDATE:
        return False
    return True


class SimTSan:
    """Vector-clock happens-before tracker over one :class:`Simulator`.

    Construct one per simulated cluster and :meth:`install` it; the
    kernel drives the ``on_*`` hooks and instrumented surfaces feed
    accesses through :func:`repro.sim.santrack.active`.  Races are
    always *collected* (``self.reports``), never raised mid-simulation:
    a raise inside a fire-and-forget handler process would be swallowed
    by the kernel (or masked as a retryable fault by the RPC channel),
    and it would perturb the very schedule under test.  Install sites
    call :meth:`raise_if_races` at the run boundary instead; with
    ``sink`` set (the ``python -m repro.analysis.race`` harness) reports
    additionally stream into the caller's list and
    :meth:`raise_if_races` becomes a no-op.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        sink: Optional[List[RaceReport]] = None,
    ) -> None:
        self._sim = sim
        self._sink = sink
        self.reports: List[RaceReport] = []
        # -- actors ------------------------------------------------------
        self._next_actor = 1
        #: Stable actor ids for kernel processes, keyed id(process); the
        #: ref in the value keeps the id from being recycled mid-run.
        self._process_actors: Dict[int, Tuple[Process, int]] = {}
        self._actor_names: Dict[int, str] = {_DRIVER: "driver"}
        #: Vector clocks for stable actors (driver + processes).
        self._clocks: Dict[int, Dict[int, int]] = {_DRIVER: {}}
        #: Actors that made >= 1 access; only their components propagate
        #: in snapshots (omitting a never-yet-accessed actor cannot flip
        #: any epoch comparison, and it keeps snapshot copies small).
        self._accessors: Set[int] = set()
        # -- per-event state ---------------------------------------------
        #: Clock snapshots taken at schedule time, popped at dispatch.
        self._event_clocks: Dict[int, Tuple[Event, Dict[int, int]]] = {}
        self._ambient_actor: int = _DRIVER
        self._ambient_clock: Dict[int, int] = self._clocks[_DRIVER]
        self._ambient_name: str = "driver"
        self._current_eid: Optional[int] = None
        self._event_base: Dict[int, int] = {}
        self._step_resumed: List[int] = []
        # -- causal side channels and access history ---------------------
        self._published: Dict[Hashable, Dict[int, int]] = {}
        self._sites: Dict[Hashable, Tuple[float, List[_Access]]] = {}
        self._seen: Set[Tuple[Hashable, str, str, str, str]] = set()
        self._prev_handle: Optional[Any] = None

    # -- lifecycle --------------------------------------------------------

    def install(self) -> "SimTSan":
        """Attach to the simulator and become the process-wide handle."""
        self._sim.sanitizer = self
        self._prev_handle = santrack.install(self)
        return self

    def uninstall(self) -> None:
        """Detach; restores whatever handle was active before install."""
        if self._sim.sanitizer is self:
            self._sim.sanitizer = None
        if santrack.active() is self:
            santrack.install(self._prev_handle)

    def raise_if_races(self) -> None:
        """Raise :class:`SanitizerError` for the first collected race.

        Called at run boundaries (``Environment.run``,
        ``QueryService.drain``); a no-op in sink (collect) mode.
        """
        if self._sink is not None or not self.reports:
            return
        report = self.reports[0]
        extra = len(self.reports) - 1
        suffix = f" (+{extra} more)" if extra else ""
        raise SanitizerError(report.describe() + suffix, report)

    # -- kernel hooks ------------------------------------------------------

    def on_schedule(self, event: Event) -> None:
        """An event was enqueued: snapshot the scheduler's clock, tick."""
        accessors = self._accessors
        clock = self._ambient_clock
        snapshot = {k: v for k, v in clock.items() if k in accessors}
        self._event_clocks[id(event)] = (event, snapshot)
        actor = self._ambient_actor
        clock[actor] = clock.get(actor, 0) + 1

    def on_dispatch(self, time: float, eid: int, event: Event) -> None:
        """An event is dispatching: its snapshot becomes the ambient base."""
        entry = self._event_clocks.pop(id(event), None)
        base: Dict[int, int] = entry[1] if entry is not None else {}
        if isinstance(event, Barrier):
            # A barrier fires only after every same-instant event has
            # dispatched — a kernel-level ordering guarantee, so it is a
            # global synchronization point: merge everything seen so far
            # (the driver clock doubles as the omniscient merge).
            driver = self._clocks[_DRIVER]
            for k, v in driver.items():
                if base.get(k, 0) < v:
                    base[k] = v
        self._event_base = base
        self._current_eid = eid
        # Bare callbacks (no process resume) run as an ephemeral actor so
        # unrelated callback contexts never share a clock component.
        self._ambient_actor = self._next_actor
        self._next_actor += 1
        self._ambient_clock = dict(base)
        self._ambient_clock[self._ambient_actor] = 1
        self._ambient_name = getattr(event, "name", "") or type(event).__name__
        self._step_resumed.clear()

    def on_resume(self, process: Process, event: Event) -> None:
        """A process is resuming: merge the event's snapshot, tick, focus."""
        actor = self._actor_for(process)
        clock = self._clocks[actor]
        for k, v in self._event_base.items():
            if clock.get(k, 0) < v:
                clock[k] = v
        clock[actor] = clock.get(actor, 0) + 1
        self._ambient_actor = actor
        self._ambient_clock = clock
        self._ambient_name = process.name
        self._step_resumed.append(actor)

    def on_step_end(self) -> None:
        """Step done: fold everything into the driver's omniscient clock."""
        driver = self._clocks[_DRIVER]
        for source in (self._event_base, self._ambient_clock):
            for k, v in source.items():
                if driver.get(k, 0) < v:
                    driver[k] = v
        for actor in self._step_resumed:
            for k, v in self._clocks[actor].items():
                if driver.get(k, 0) < v:
                    driver[k] = v
        self._step_resumed.clear()
        self._ambient_actor = _DRIVER
        self._ambient_clock = driver
        self._ambient_name = "driver"
        self._current_eid = None

    # -- explicit causal edges ---------------------------------------------

    def publish(self, key: Hashable) -> None:
        """Record a happens-before source for a side-channel handoff."""
        stored = self._published.get(key)
        if stored is None:
            stored = {}
            self._published[key] = stored
        clock = self._ambient_clock
        accessors = self._accessors
        for k, v in clock.items():
            if k in accessors and stored.get(k, 0) < v:
                stored[k] = v
        actor = self._ambient_actor
        if stored.get(actor, 0) < clock.get(actor, 0):
            stored[actor] = clock[actor]

    def observe(self, key: Hashable) -> None:
        """Merge a published clock into the current actor (the sink side)."""
        stored = self._published.get(key)
        if not stored:
            return
        clock = self._ambient_clock
        for k, v in stored.items():
            if clock.get(k, 0) < v:
                clock[k] = v

    def observe_completion(self, process: Process) -> None:
        """Merge a finished process's clock into the current actor.

        ``AnyOf`` wakes carry a happens-before edge only from the *first*
        completer; a scheduler collecting several same-instant
        completions calls this per collected process so the downstream
        stages it launches are ordered after everything they consume.
        """
        entry = self._process_actors.get(id(process))
        if entry is None:
            return
        source = self._clocks[entry[1]]
        clock = self._ambient_clock
        for k, v in source.items():
            if clock.get(k, 0) < v:
                clock[k] = v

    # -- instrumented access API -------------------------------------------

    def record_read(self, key: Hashable, site: str, depth: int = 0) -> None:
        self._record(key, READ, site, depth)

    def record_write(self, key: Hashable, site: str, depth: int = 0) -> None:
        self._record(key, WRITE, site, depth)

    def record_update(self, key: Hashable, site: str, depth: int = 0) -> None:
        """A commutative read-modify-write (counter add, window append).

        ``depth`` skips that many extra frames when capturing the access
        sites, for surfaces that funnel through a local helper.
        """
        self._record(key, UPDATE, site, depth)

    # -- internals ---------------------------------------------------------

    def _actor_for(self, process: Process) -> int:
        entry = self._process_actors.get(id(process))
        if entry is not None:
            return entry[1]
        actor = self._next_actor
        self._next_actor += 1
        self._process_actors[id(process)] = (process, actor)
        self._actor_names[actor] = process.name
        self._clocks[actor] = {actor: 0}
        return actor

    def _record(self, key: Hashable, kind: str, site: str, depth: int = 0) -> None:
        actor = self._ambient_actor
        clock = self._ambient_clock
        self._accessors.add(actor)
        access = _Access(
            actor=actor,
            epoch=clock.get(actor, 0),
            kind=kind,
            site=site,
            span=self._ambient_name,
            event_id=self._current_eid,
            surface=_frame_site(2 + depth),
            caller=_frame_site(3 + depth),
        )
        now = self._sim.now
        entry = self._sites.get(key)
        if entry is None or entry[0] != now:  # simlint: ignore[float-eq]
            # Only same-instant pairs can race; earlier instants are
            # totally ordered by the clock, so drop their records.
            self._sites[key] = (now, [access])
            return
        history = entry[1]
        for previous in history:
            if previous.actor == actor:
                continue  # program order within one actor
            if not _conflicts(previous.kind, kind):
                continue
            if clock.get(previous.actor, 0) >= previous.epoch:
                continue  # previous happens-before this access
            self._report(key, now, previous, access)
        history.append(access)

    def _report(self, key: Hashable, now: float, a: _Access, b: _Access) -> None:
        if _line_suppresses(*a.surface, a.site) or _line_suppresses(
            *a.caller, a.site
        ):
            return
        if _line_suppresses(*b.surface, b.site) or _line_suppresses(
            *b.caller, b.site
        ):
            return
        dedup = (
            key,
            f"{a.site}@{a.caller[0]}:{a.caller[1]}",
            f"{b.site}@{b.caller[0]}:{b.caller[1]}",
            a.kind,
            b.kind,
        )
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        report = RaceReport(key=repr(key), time=now, first=a.info(), second=b.info())
        self.reports.append(report)
        if self._sink is not None:
            self._sink.append(report)


def install(sim: Simulator, *, sink: Optional[List[RaceReport]] = None) -> SimTSan:
    """Build and install a sanitizer on ``sim``; returns it."""
    return SimTSan(sim, sink=sink).install()


def uninstall(sanitizer: Optional[SimTSan]) -> None:
    """Uninstall, tolerating ``None`` (call sites keep one code path)."""
    if sanitizer is not None:
        sanitizer.uninstall()
