"""Process-wide strict-verification switch for the plan verifier.

The verifier (:mod:`repro.analysis.verifier`) is wired into three hot
spots — global-optimizer exit, the connector's local optimizer, and the
connector/OCS Substrait boundary — behind this flag.  Tests flip it on
globally (see ``tests/conftest.py``) so the whole suite runs verified;
benchmarks leave it off, which must be performance-neutral: every
call site checks :func:`strict_verify_enabled` *before* doing any work.

An explicit per-run setting (``RunConfig.strict_verify`` or the
``OcsConnector``/``OcsPlanOptimizer`` constructor argument) overrides
the process default in either direction.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["set_strict_verify", "strict_verify_enabled"]

_STRICT_DEFAULT: bool = False


def set_strict_verify(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _STRICT_DEFAULT
    previous = _STRICT_DEFAULT
    _STRICT_DEFAULT = bool(enabled)
    return previous


def strict_verify_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve an optional per-call override against the process default."""
    if explicit is None:
        return _STRICT_DEFAULT
    return bool(explicit)
