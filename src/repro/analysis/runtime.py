"""Process-wide strictness switches for the analysis passes.

``strict_verify`` gates the plan verifier
(:mod:`repro.analysis.verifier`), wired into three hot spots —
global-optimizer exit, the connector's local optimizer, and the
connector/OCS Substrait boundary.  Tests flip it on globally (see
``tests/conftest.py``) so the whole suite runs verified; benchmarks
leave it off, which must be performance-neutral: every call site checks
:func:`strict_verify_enabled` *before* doing any work.

``strict_sanitize`` gates SimTSan (:mod:`repro.analysis.sanitizer`),
the happens-before race detector over the simulator kernel, with the
same shape: off by default for benchmarks (the off path is zero-cost —
no events scheduled, digests byte-identical), autouse-on in the test
suite, and per-run overridable via ``RunConfig.strict_sanitize``.

An explicit per-run setting (``RunConfig.strict_verify`` /
``RunConfig.strict_sanitize`` or the corresponding constructor
argument) overrides the process default in either direction.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "set_strict_verify",
    "strict_verify_enabled",
    "set_strict_sanitize",
    "strict_sanitize_enabled",
]

_STRICT_DEFAULT: bool = False
_SANITIZE_DEFAULT: bool = False


def set_strict_verify(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _STRICT_DEFAULT
    previous = _STRICT_DEFAULT
    _STRICT_DEFAULT = bool(enabled)
    return previous


def strict_verify_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve an optional per-call override against the process default."""
    if explicit is None:
        return _STRICT_DEFAULT
    return bool(explicit)


def set_strict_sanitize(enabled: bool) -> bool:
    """Set the process-wide SimTSan default; returns the previous value."""
    global _SANITIZE_DEFAULT
    previous = _SANITIZE_DEFAULT
    _SANITIZE_DEFAULT = bool(enabled)
    return previous


def strict_sanitize_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve an optional per-call override against the process default."""
    if explicit is None:
        return _SANITIZE_DEFAULT
    return bool(explicit)
