"""Static analysis for the repro codebase: three machine-checked passes.

1. **Plan verifier** (:mod:`repro.analysis.verifier`) — schema-propagating
   type checker over logical plans and Substrait IR, pushdown-legality
   rules, and the pushed+residual ≡ pre-plan equivalence check, gated by
   the ``strict_verify`` flag (:mod:`repro.analysis.runtime`).
2. **Simulation-safety linter** (:mod:`repro.analysis.lint`) — AST rules
   for sim-reachable code (``python -m repro.analysis.lint src tests``).
3. **Determinism checker** (:mod:`repro.analysis.determinism`) — digest
   replays and adversarial tie-break runs over the simulator kernel
   (``python -m repro.analysis.determinism``).
4. **Backend parity harness** (:mod:`repro.analysis.parity`) — fused
   vs tree-walk execution backends must be digest-identical
   (``python -m repro.analysis.parity``).
5. **Race sanitizer** (:mod:`repro.analysis.sanitizer`) — SimTSan, a
   vector-clock happens-before detector for same-instant accesses to
   shared simulated state, gated by ``strict_sanitize``
   (``python -m repro.analysis.race``).

See ``docs/STATIC_ANALYSIS.md`` for the invariant list and rule catalog.
"""

from repro.analysis.runtime import (
    set_strict_sanitize,
    set_strict_verify,
    strict_sanitize_enabled,
    strict_verify_enabled,
)
from repro.analysis.verifier import (
    check_expression,
    verify_logical_plan,
    verify_optimized_plan,
    verify_pushdown,
    verify_substrait_plan,
)

#: lint/determinism names resolve lazily so ``python -m repro.analysis.lint``
#: and ``... .determinism`` run without runpy's double-import warning.
_LAZY = {
    "DeterminismReport": "repro.analysis.determinism",
    "DigestRecorder": "repro.analysis.determinism",
    "ReplayReport": "repro.analysis.determinism",
    "canonical_result_digest": "repro.analysis.determinism",
    "check_determinism": "repro.analysis.determinism",
    "run_recorded": "repro.analysis.determinism",
    "LintViolation": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "BackendParityReport": "repro.analysis.parity",
    "check_backend_parity": "repro.analysis.parity",
    "check_suite_parity": "repro.analysis.parity",
    "check_dag_determinism": "repro.analysis.determinism",
    "check_service_determinism": "repro.analysis.determinism",
    "run_service_recorded": "repro.analysis.determinism",
    "AccessInfo": "repro.analysis.sanitizer",
    "RaceReport": "repro.analysis.sanitizer",
    "SimTSan": "repro.analysis.sanitizer",
    "run_self_test": "repro.analysis.race",
    "run_bench_suites": "repro.analysis.race",
}


def __getattr__(name: str) -> object:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "BackendParityReport",
    "check_backend_parity",
    "check_suite_parity",
    "DeterminismReport",
    "DigestRecorder",
    "ReplayReport",
    "canonical_result_digest",
    "check_determinism",
    "run_recorded",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "check_dag_determinism",
    "check_service_determinism",
    "run_service_recorded",
    "AccessInfo",
    "RaceReport",
    "SimTSan",
    "run_self_test",
    "run_bench_suites",
    "set_strict_verify",
    "strict_verify_enabled",
    "set_strict_sanitize",
    "strict_sanitize_enabled",
    "check_expression",
    "verify_logical_plan",
    "verify_optimized_plan",
    "verify_pushdown",
    "verify_substrait_plan",
]
