"""Plan verifier: schema-propagating type checker + pushdown legality.

Three layers of machine-checked invariants, one per plan representation:

* :func:`verify_logical_plan` — walks a logical plan
  (:mod:`repro.plan.nodes`) bottom-up, recomputing every node's output
  schema from first principles and checking dtype agreement through
  casts, function calls, and aggregate measures.  Filters must be
  deterministic (an expression node the verifier does not know is
  rejected, not waved through).
* :func:`verify_pushdown` — checks a :class:`PushedOperators` chain
  against the pushdown-legality rules: grouping keys must be a subset of
  the pushed pipeline's columns, multi-split aggregation must ship
  partial states, and nothing may ride above a partial aggregation.
* :func:`verify_substrait_plan` — re-runs the structural validator, then
  type-checks the IR: field-ref ordinals must carry the input's dtype,
  function anchors must resolve to the signature recomputed from actual
  argument types, measure output dtypes must match aggregate semantics,
  and sort/fetch relations may only appear in the root zone (top-N is
  exactly ``FetchRel(SortRel(...))`` — the sort+fetch adjacency rule).

:func:`verify_optimized_plan` is the equivalence check wired in at the
connector optimizer's exit: pushed operators + residual plan must
type-check, agree with the pre-optimization plan's output schema, and
cover every operator kind the pre-plan contained (nothing silently
vanishes).  All entry points raise
:class:`~repro.errors.VerificationError`.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.engine` (the call sites live there); ``PushedOperators`` and
table handles are consumed duck-typed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arrowsim.dtypes import BOOL, FLOAT64, INT64, DataType
from repro.arrowsim.schema import Field, Schema
from repro.errors import (
    ExpressionError,
    SubstraitError,
    ValidationError,
    VerificationError,
)
from repro.exchange.filters import BloomProbeExpr
from repro.exec.aggregates import AggregateSpec
from repro.exec.expressions import (
    SCALAR_FUNCTION_NAMES,
    AndExpr,
    ArithExpr,
    CastExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    InExpr,
    IsNullExpr,
    LiteralExpr,
    NegExpr,
    NotExpr,
    OrExpr,
    ScalarFuncExpr,
    arithmetic_result_type,
    scalar_function_dtype,
)
from repro.plan.nodes import (
    AggregationNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    TableScanNode,
    TopNNode,
)
from repro.substrait.expressions import (
    SCAST,
    SBloomProbe,
    SExpression,
    SFieldRef,
    SFunctionCall,
    SInList,
    SLiteral,
)
from repro.substrait.functions import signature
from repro.substrait.plan import SubstraitPlan
from repro.substrait.relations import (
    AggregateRel,
    FetchRel,
    FilterRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)
from repro.substrait.validator import validate_plan

__all__ = [
    "check_expression",
    "verify_logical_plan",
    "verify_pushdown",
    "verify_substrait_plan",
    "verify_optimized_plan",
    "verify_exchange_boundary",
    "verify_stage_graph",
]


# --------------------------------------------------------------------------
# Expression checking (logical IR)
# --------------------------------------------------------------------------

_ARITH_NAME_TO_OP = {
    "add": "+",
    "subtract": "-",
    "multiply": "*",
    "divide": "/",
    "modulus": "%",
}
_BOOL_RESULT_FUNCTIONS = frozenset(
    {"equal", "not_equal", "lt", "lte", "gt", "gte", "and", "or", "not",
     "is_null", "is_not_null"}
)


def check_expression(expr: Expr, schema: Schema) -> DataType:
    """Recompute ``expr``'s dtype over ``schema``; raise on disagreement.

    Every node type this verifier accepts is deterministic, so a
    successful check doubles as the "filters must be deterministic"
    pushdown rule: unknown expression classes are rejected outright.
    """
    if isinstance(expr, ColumnExpr):
        if expr.name not in schema:
            raise VerificationError(
                f"expression references unknown column {expr.name!r} "
                f"(schema: {schema.names()})"
            )
        declared = schema.field(expr.name).dtype
        if expr.dtype is not declared:
            raise VerificationError(
                f"column {expr.name!r} typed {expr.dtype} but schema says {declared}"
            )
        return expr.dtype
    if isinstance(expr, LiteralExpr):
        return expr.dtype
    if isinstance(expr, ArithExpr):
        left = check_expression(expr.left, schema)
        right = check_expression(expr.right, schema)
        try:
            expected = arithmetic_result_type(expr.op, left, right)
        except ExpressionError as exc:
            raise VerificationError(str(exc)) from exc
        if expr.dtype is not expected:
            raise VerificationError(
                f"arithmetic {expr.op!r} over ({left}, {right}) must be "
                f"{expected}, expression claims {expr.dtype}"
            )
        return expected
    if isinstance(expr, NegExpr):
        operand = check_expression(expr.operand, schema)
        if expr.dtype is not operand:
            raise VerificationError(
                f"negation must preserve dtype {operand}, got {expr.dtype}"
            )
        return operand
    if isinstance(expr, CompareExpr):
        check_expression(expr.left, schema)
        check_expression(expr.right, schema)
        if expr.dtype is not BOOL:
            raise VerificationError(f"comparison must be BOOL, got {expr.dtype}")
        return BOOL
    if isinstance(expr, (AndExpr, OrExpr)):
        for operand in expr.operands:
            if check_expression(operand, schema) is not BOOL:
                raise VerificationError(
                    f"boolean connective operand must be BOOL, got {operand!r}"
                )
        if expr.dtype is not BOOL:
            raise VerificationError(f"boolean connective must be BOOL, got {expr.dtype}")
        return BOOL
    if isinstance(expr, NotExpr):
        if check_expression(expr.operand, schema) is not BOOL:
            raise VerificationError(f"NOT operand must be BOOL: {expr.operand!r}")
        return BOOL
    if isinstance(expr, (InExpr, IsNullExpr)):
        check_expression(expr.operand, schema)
        if expr.dtype is not BOOL:
            raise VerificationError(f"{type(expr).__name__} must be BOOL, got {expr.dtype}")
        return BOOL
    if isinstance(expr, ScalarFuncExpr):
        operand = check_expression(expr.operand, schema)
        try:
            expected = scalar_function_dtype(expr.name, operand)
        except ExpressionError as exc:
            raise VerificationError(str(exc)) from exc
        if expr.dtype is not expected:
            raise VerificationError(
                f"{expr.name}({operand}) must be {expected}, "
                f"expression claims {expr.dtype}"
            )
        return expected
    if isinstance(expr, CastExpr):
        check_expression(expr.operand, schema)
        return expr.dtype
    if isinstance(expr, BloomProbeExpr):
        # Deterministic: membership in an immutable build-side bitset.
        check_expression(expr.operand, schema)
        bloom = expr.bloom
        if bloom.num_bits < 8 or bloom.num_bits & (bloom.num_bits - 1):
            raise VerificationError(
                f"bloom num_bits must be a power of two >= 8, got {bloom.num_bits}"
            )
        if len(bloom.bits) * 8 != bloom.num_bits:
            raise VerificationError(
                f"bloom bitset holds {len(bloom.bits) * 8} bits, header says "
                f"{bloom.num_bits}"
            )
        if expr.dtype is not BOOL:
            raise VerificationError(f"bloom probe must be BOOL, got {expr.dtype}")
        return BOOL
    raise VerificationError(
        f"unknown (potentially non-deterministic) expression node "
        f"{type(expr).__name__}"
    )


# --------------------------------------------------------------------------
# Logical plan checking
# --------------------------------------------------------------------------


def _aggregate_output_fields(
    specs: Sequence[AggregateSpec], phase: str
) -> List[Field]:
    fields: List[Field] = []
    for spec in specs:
        if phase == "partial":
            fields.extend(spec.partial_fields())
        else:
            fields.append(
                Field(spec.output, spec.output_dtype, nullable=spec.func != "count")
            )
    return fields


def _check_aggregation(node: AggregationNode, source: Schema) -> Schema:
    if node.phase not in ("single", "partial", "final"):
        raise VerificationError(f"unknown aggregation phase {node.phase!r}")
    fields: List[Field] = []
    for key in node.key_names:
        if key not in source:
            raise VerificationError(
                f"grouping key {key!r} not in input schema {source.names()}"
            )
        fields.append(source.field(key))
    for spec in node.specs:
        if node.phase == "final":
            # Final-phase inputs are the partial state columns, not the
            # original argument.
            for state in spec.partial_fields():
                if state.name not in source:
                    raise VerificationError(
                        f"final aggregation missing partial state column "
                        f"{state.name!r} (input: {source.names()})"
                    )
                declared = source.field(state.name).dtype
                if declared is not state.dtype:
                    raise VerificationError(
                        f"partial state {state.name!r} typed {declared}, "
                        f"expected {state.dtype}"
                    )
        elif spec.arg is not None:
            if spec.arg not in source:
                raise VerificationError(
                    f"aggregate argument {spec.arg!r} not in input schema "
                    f"{source.names()}"
                )
            declared = source.field(spec.arg).dtype
            if spec.input_dtype is not None and declared is not spec.input_dtype:
                raise VerificationError(
                    f"aggregate {spec.func}({spec.arg}) expects "
                    f"{spec.input_dtype}, input column is {declared}"
                )
    fields.extend(_aggregate_output_fields(node.specs, node.phase))
    return Schema(fields)


def verify_logical_plan(plan: PlanNode) -> Schema:
    """Bottom-up schema/type check; returns the verified output schema."""
    if isinstance(plan, TableScanNode):
        if len(set(plan.columns)) != len(plan.columns):
            raise VerificationError(f"duplicate scan columns {plan.columns}")
        for column in plan.columns:
            if column not in plan.table_schema:
                raise VerificationError(
                    f"scan column {column!r} not in table schema "
                    f"{plan.table_schema.names()}"
                )
        return plan.table_schema.select(plan.columns)
    if isinstance(plan, FilterNode):
        source = verify_logical_plan(plan.source)
        if check_expression(plan.predicate, source) is not BOOL:
            raise VerificationError(
                f"filter predicate must be BOOL: {plan.predicate!r}"
            )
        return source
    if isinstance(plan, ProjectNode):
        source = verify_logical_plan(plan.source)
        names = [name for name, _ in plan.projections]
        if len(set(names)) != len(names):
            raise VerificationError(f"duplicate projection names {names}")
        for _, expr in plan.projections:
            check_expression(expr, source)
        return Schema([Field(n, e.dtype) for n, e in plan.projections])
    if isinstance(plan, AggregationNode):
        return _check_aggregation(plan, verify_logical_plan(plan.source))
    if isinstance(plan, (SortNode, TopNNode)):
        source = verify_logical_plan(plan.source)
        for key, _descending in plan.sort_keys:
            if key not in source:
                raise VerificationError(
                    f"sort key {key!r} not in input schema {source.names()}"
                )
        if isinstance(plan, TopNNode) and plan.count < 0:
            raise VerificationError(f"negative top-N count {plan.count}")
        return source
    if isinstance(plan, LimitNode):
        if plan.count < 0:
            raise VerificationError(f"negative limit {plan.count}")
        return verify_logical_plan(plan.source)
    if isinstance(plan, OutputNode):
        source = verify_logical_plan(plan.source)
        for column in plan.column_names:
            if column not in source:
                raise VerificationError(
                    f"output column {column!r} not in input schema {source.names()}"
                )
        return source.select(plan.column_names)
    if isinstance(plan, JoinNode):
        return _check_join(plan)
    raise VerificationError(f"unknown plan node {type(plan).__name__}")


#: Join kinds whose build side may legally publish a dynamic filter back
#: to the probe scan.  Inner and semi joins only *select* probe rows that
#: match a build key, so pre-filtering the probe to candidate keys is
#: sound.  Anti joins keep exactly the NON-matching probe rows — a
#: build-key filter would delete the entire answer; left joins keep
#: non-matching probe rows too.  The coordinator consults this before
#: inserting a dynamic-filter stage, and tests pin it.
DYNAMIC_FILTER_JOIN_KINDS = ("inner", "semi")


def _check_join(plan: JoinNode) -> Schema:
    """Join invariants: paired equi-keys with equal dtypes, and an output
    schema that is exactly left ⊕ (renamed, collision-free) right — or,
    for the filtering kinds (semi/anti), exactly the left schema."""
    left = verify_logical_plan(plan.left)
    right = verify_logical_plan(plan.right)
    if plan.kind not in ("inner", "left", "semi", "anti"):
        raise VerificationError(f"unknown join kind {plan.kind!r}")
    if plan.distribution not in ("auto", "broadcast", "partitioned"):
        raise VerificationError(
            f"unknown join distribution {plan.distribution!r}"
        )
    if not plan.left_keys or len(plan.left_keys) != len(plan.right_keys):
        raise VerificationError(
            f"join must pair equal, non-empty key lists, got "
            f"{plan.left_keys} / {plan.right_keys}"
        )
    for lk, rk in zip(plan.left_keys, plan.right_keys):
        if lk not in left:
            raise VerificationError(
                f"join key {lk!r} not in left input {left.names()}"
            )
        if rk not in right:
            raise VerificationError(
                f"join key {rk!r} not in right input {right.names()}"
            )
        ldt = left.field(lk).dtype
        rdt = right.field(rk).dtype
        if ldt is not rdt:
            raise VerificationError(
                f"join key dtype mismatch: {lk} is {ldt}, {rk} is {rdt}"
            )
    if plan.kind in ("semi", "anti"):
        # Filtering joins pass probe rows through untouched: the output
        # schema must be the left input, bit for bit, and no right
        # column may leak.
        declared = plan.output_schema()
        if not _schemas_agree(left, declared):
            raise VerificationError(
                f"{plan.kind} join must publish its probe schema "
                f"{left.names()}, declared {declared.names()}"
            )
        return left
    fields = list(left.fields)
    seen = set(left.names())
    force_nullable = plan.kind == "left"
    for f in right.fields:
        out_name = plan.right_renames.get(f.name, f.name)
        if out_name in seen:
            raise VerificationError(
                f"join output column {out_name!r} collides across sides "
                f"(right_renames must disambiguate it)"
            )
        seen.add(out_name)
        fields.append(
            Field(out_name, f.dtype, nullable=f.nullable or force_nullable)
        )
    recomputed = Schema(fields)
    declared = plan.output_schema()
    if not _schemas_agree(recomputed, declared):
        raise VerificationError(
            f"join output schema {declared.names()} disagrees with "
            f"left ⊕ renamed right {recomputed.names()}"
        )
    return recomputed


# --------------------------------------------------------------------------
# Pushed-operator legality
# --------------------------------------------------------------------------


def verify_pushdown(pushed: Any, table_schema: Schema, split_count: int = 1) -> Schema:
    """Check a ``PushedOperators`` chain stage by stage.

    Returns the schema OCS will hand back (which must equal the residual
    scan's schema).  ``split_count`` is how many pushdown requests the
    scan fans out into; more than one forces partial aggregation.
    """
    if not pushed.columns:
        raise VerificationError("pushdown must scan at least one column")
    if len(set(pushed.columns)) != len(pushed.columns):
        raise VerificationError(f"duplicate pushed columns {pushed.columns}")
    for column in pushed.columns:
        if column not in table_schema:
            raise VerificationError(
                f"pushed column {column!r} not in table schema "
                f"{table_schema.names()}"
            )
    schema = table_schema.select(pushed.columns)

    if pushed.filter is not None:
        if check_expression(pushed.filter, schema) is not BOOL:
            raise VerificationError(f"pushed filter must be BOOL: {pushed.filter!r}")

    dynamic_filter = getattr(pushed, "dynamic_filter", None)
    if dynamic_filter is not None:
        # Applied directly above the read (before projections rebind names).
        if check_expression(dynamic_filter, schema) is not BOOL:
            raise VerificationError(
                f"pushed dynamic filter must be BOOL: {dynamic_filter!r}"
            )

    if pushed.projections is not None:
        names = [name for name, _ in pushed.projections]
        if len(set(names)) != len(names):
            raise VerificationError(f"duplicate pushed projection names {names}")
        for _, expr in pushed.projections:
            check_expression(expr, schema)
        schema = Schema([Field(n, e.dtype) for n, e in pushed.projections])

    aggregation = pushed.aggregation
    if aggregation is not None:
        if aggregation.phase not in ("single", "partial"):
            raise VerificationError(
                f"pushed aggregation phase must be single/partial, "
                f"got {aggregation.phase!r}"
            )
        if split_count > 1 and aggregation.phase != "partial":
            raise VerificationError(
                f"single-phase aggregation over {split_count} splits is "
                f"unsound: per-split groups need a mergeable partial state"
            )
        fields: List[Field] = []
        for key in aggregation.key_names:
            if key not in schema:
                raise VerificationError(
                    f"pushed grouping key {key!r} is not a pushed scan/"
                    f"projection column ({schema.names()})"
                )
            fields.append(schema.field(key))
        if len(aggregation.arg_expressions) != len(aggregation.specs):
            raise VerificationError(
                "pushed aggregation arg_expressions/specs length mismatch"
            )
        for spec, arg_expr in zip(aggregation.specs, aggregation.arg_expressions):
            if arg_expr is None:
                if spec.arg is not None:
                    raise VerificationError(
                        f"aggregate {spec.func}({spec.arg}) pushed without "
                        f"an argument expression"
                    )
                continue
            dtype = check_expression(arg_expr, schema)
            if spec.input_dtype is not None and dtype is not spec.input_dtype:
                raise VerificationError(
                    f"aggregate {spec.func}({spec.arg}) expects "
                    f"{spec.input_dtype}, pushed argument evaluates to {dtype}"
                )
        fields.extend(_aggregate_output_fields(aggregation.specs, aggregation.phase))
        schema = Schema(fields)
        if aggregation.phase == "partial" and (
            pushed.final_project is not None
            or pushed.topn is not None
            or pushed.sort is not None
            or pushed.limit is not None
        ):
            raise VerificationError(
                "nothing may ride above a partial aggregation (the residual "
                "final aggregation must see the states verbatim)"
            )

    if pushed.final_project is not None:
        if aggregation is None:
            raise VerificationError(
                "final_project requires a pushed aggregation below it"
            )
        for _, expr in pushed.final_project:
            check_expression(expr, schema)
        schema = Schema([Field(n, e.dtype) for n, e in pushed.final_project])

    if pushed.topn is not None:
        count, sort_keys = pushed.topn
        if count < 0:
            raise VerificationError(f"negative pushed top-N count {count}")
        if not sort_keys:
            raise VerificationError("pushed top-N requires sort keys")
        for key, _descending in sort_keys:
            if key not in schema:
                raise VerificationError(
                    f"pushed top-N key {key!r} not in schema {schema.names()}"
                )
    if pushed.sort is not None:
        for key, _descending in pushed.sort:
            if key not in schema:
                raise VerificationError(
                    f"pushed sort key {key!r} not in schema {schema.names()}"
                )
    if pushed.limit is not None and pushed.limit < 0:
        raise VerificationError(f"negative pushed limit {pushed.limit}")
    return schema


# --------------------------------------------------------------------------
# Substrait IR checking
# --------------------------------------------------------------------------


def _typed_sexpr(
    expr: SExpression, input_types: Sequence[DataType], plan: SubstraitPlan
) -> DataType:
    if isinstance(expr, SFieldRef):
        if not 0 <= expr.ordinal < len(input_types):
            raise VerificationError(
                f"field ordinal {expr.ordinal} out of range "
                f"(width {len(input_types)})"
            )
        actual = input_types[expr.ordinal]
        if expr.dtype is not actual:
            raise VerificationError(
                f"field ref ${expr.ordinal} typed {expr.dtype}, input is {actual}"
            )
        return actual
    if isinstance(expr, SLiteral):
        return expr.dtype
    if isinstance(expr, SCAST):
        _typed_sexpr(expr.operand, input_types, plan)
        return expr.dtype
    if isinstance(expr, SBloomProbe):
        _typed_sexpr(expr.operand, input_types, plan)
        if expr.dtype is not BOOL:
            raise VerificationError(f"bloom probe must be BOOL, got {expr.dtype}")
        return BOOL
    if isinstance(expr, SInList):
        operand = _typed_sexpr(expr.operand, input_types, plan)
        if operand is not expr.option_dtype:
            raise VerificationError(
                f"IN-list options typed {expr.option_dtype}, operand is {operand}"
            )
        return BOOL
    if isinstance(expr, SFunctionCall):
        name = plan.registry.name_of(expr.anchor)
        declared_sig = plan.registry.signature_of(expr.anchor)
        arg_types = [_typed_sexpr(a, input_types, plan) for a in expr.args]
        try:
            expected_sig = signature(name, arg_types)
        except SubstraitError as exc:
            raise VerificationError(str(exc)) from exc
        if expected_sig != declared_sig:
            raise VerificationError(
                f"function anchor {expr.anchor} declares {declared_sig!r} but "
                f"arguments recompute to {expected_sig!r}"
            )
        expected = _scalar_result_dtype(name, arg_types)
        if expr.dtype is not expected:
            raise VerificationError(
                f"{name}({', '.join(str(t) for t in arg_types)}) must be "
                f"{expected}, call claims {expr.dtype}"
            )
        return expected
    raise VerificationError(f"unknown Substrait expression {type(expr).__name__}")


def _scalar_result_dtype(name: str, arg_types: Sequence[DataType]) -> DataType:
    if name in _BOOL_RESULT_FUNCTIONS:
        return BOOL
    if name in _ARITH_NAME_TO_OP:
        if len(arg_types) != 2:
            raise VerificationError(f"{name} takes two arguments")
        try:
            return arithmetic_result_type(
                _ARITH_NAME_TO_OP[name], arg_types[0], arg_types[1]
            )
        except ExpressionError as exc:
            raise VerificationError(str(exc)) from exc
    if name == "negate":
        return arg_types[0]
    if name in SCALAR_FUNCTION_NAMES:
        try:
            return scalar_function_dtype(name, arg_types[0])
        except ExpressionError as exc:
            raise VerificationError(str(exc)) from exc
    raise VerificationError(f"unknown scalar function {name!r}")


def _measure_result_dtype(func: str, arg_types: Sequence[DataType]) -> DataType:
    if func == "count":
        return INT64
    if func in ("avg", "variance", "stddev"):
        return FLOAT64
    if not arg_types:
        raise VerificationError(f"aggregate {func!r} requires an argument")
    if func == "sum":
        return FLOAT64 if arg_types[0].is_floating else INT64
    if func in ("min", "max"):
        return arg_types[0]
    raise VerificationError(f"unknown aggregate {func!r}")


def _typed_rel(
    rel: Relation, plan: SubstraitPlan, order_zone: str
) -> List[DataType]:
    """Type-check a relation subtree; returns its output dtypes.

    ``order_zone`` enforces sort+fetch adjacency: ``"fetch"`` (the plan
    root: fetch and sort allowed), ``"sort"`` (directly under a fetch:
    sort allowed), ``"none"`` (anywhere else: neither).
    """
    if isinstance(rel, FetchRel):
        if order_zone != "fetch":
            raise VerificationError(
                "fetch relation outside the root zone (top-N requires "
                "sort+fetch adjacency at the plan root)"
            )
        return _typed_rel(rel.input, plan, "sort")
    if isinstance(rel, SortRel):
        if order_zone == "none":
            raise VerificationError(
                "sort relation below other operators (top-N requires "
                "sort+fetch adjacency at the plan root)"
            )
        types = _typed_rel(rel.input, plan, "none")
        for sort_field in rel.sort_fields:
            if not 0 <= sort_field.ordinal < len(types):
                raise VerificationError(
                    f"sort ordinal {sort_field.ordinal} out of range"
                )
        return types
    if isinstance(rel, ReadRel):
        base_types = list(rel.base_schema.types)
        types = [base_types[i] for i in rel.projection]
        if rel.best_effort_filter is not None:
            if _typed_sexpr(rel.best_effort_filter, types, plan) is not BOOL:
                raise VerificationError("best-effort filter must be BOOL")
        return types
    if isinstance(rel, FilterRel):
        types = _typed_rel(rel.input, plan, "none")
        if _typed_sexpr(rel.condition, types, plan) is not BOOL:
            raise VerificationError(f"filter condition must be BOOL: {rel.condition!r}")
        return types
    if isinstance(rel, ProjectRel):
        types = _typed_rel(rel.input, plan, "none")
        return [_typed_sexpr(e, types, plan) for e in rel.expressions_]
    if isinstance(rel, AggregateRel):
        types = _typed_rel(rel.input, plan, "none")
        out: List[DataType] = [types[i] for i in rel.grouping]
        for measure in rel.measures:
            arg_types = [_typed_sexpr(a, types, plan) for a in measure.args]
            declared_sig = plan.registry.signature_of(measure.anchor)
            try:
                expected_sig = signature(measure.function, arg_types)
            except SubstraitError as exc:
                raise VerificationError(str(exc)) from exc
            if expected_sig != declared_sig:
                raise VerificationError(
                    f"measure anchor {measure.anchor} declares "
                    f"{declared_sig!r} but arguments recompute to "
                    f"{expected_sig!r}"
                )
            expected = _measure_result_dtype(measure.function, arg_types)
            if measure.output_dtype is not expected:
                raise VerificationError(
                    f"measure {measure.function} must emit {expected}, "
                    f"declares {measure.output_dtype}"
                )
            if measure.phase == "partial" and measure.function == "avg":
                out.extend([FLOAT64, INT64])
            elif measure.phase == "partial" and measure.function in (
                "variance", "stddev",
            ):
                out.extend([FLOAT64, FLOAT64, INT64])
            else:
                out.append(expected)
        return out
    raise VerificationError(f"unknown relation node {type(rel).__name__}")


def verify_substrait_plan(plan: SubstraitPlan) -> List[DataType]:
    """Structural validation + full dtype recomputation over the IR."""
    try:
        validate_plan(plan)
    except ValidationError as exc:
        raise VerificationError(f"structural validation failed: {exc}") from exc
    types = _typed_rel(plan.root, plan, "fetch")
    if plan.root_names and len(plan.root_names) != len(types):
        raise VerificationError(
            f"root names ({len(plan.root_names)}) disagree with verified "
            f"output width ({len(types)})"
        )
    return types


# --------------------------------------------------------------------------
# Optimizer-exit equivalence check
# --------------------------------------------------------------------------

_NODE_KIND: Dict[type, str] = {
    FilterNode: "filter",
    ProjectNode: "project",
    AggregationNode: "aggregation",
    TopNNode: "topn",
    SortNode: "sort",
    LimitNode: "limit",
}


def _linearize(plan: PlanNode) -> Tuple[TableScanNode, List[PlanNode]]:
    """(scan leaf, operators above it root-first); rejects non-chains."""
    chain: List[PlanNode] = []
    node = plan
    while True:
        children = node.children()
        if not children:
            break
        if len(children) != 1:
            raise VerificationError(
                f"{type(node).__name__} is not part of a linear scan chain"
            )
        chain.append(node)
        node = children[0]
    if not isinstance(node, TableScanNode):
        raise VerificationError(
            f"plan leaf is {type(node).__name__}, expected TableScanNode"
        )
    return node, chain


def _schemas_agree(a: Schema, b: Schema) -> bool:
    """Name+dtype equality; nullability is advisory and not compared."""
    if a.names() != b.names():
        return False
    return all(fa.dtype is fb.dtype for fa, fb in zip(a, b))


def _expand_pushed(scan: TableScanNode, base_schema: Schema, pushed: Any) -> PlanNode:
    """Re-inflate pushed operators into logical nodes over the base scan."""
    node: PlanNode = TableScanNode(
        table=scan.table, table_schema=base_schema, columns=list(pushed.columns)
    )
    if pushed.filter is not None:
        node = FilterNode(node, pushed.filter)
    if pushed.projections is not None:
        node = ProjectNode(node, list(pushed.projections))
    aggregation = pushed.aggregation
    if aggregation is not None:
        # A fused projection lives in arg_expressions; re-insert it as an
        # explicit projection so the expanded plan mirrors the pre-fusion
        # pipeline (AggregationNode consumes plain argument columns).
        fused = any(
            expr is not None
            and not (isinstance(expr, ColumnExpr) and expr.name == spec.arg)
            for spec, expr in zip(aggregation.specs, aggregation.arg_expressions)
        )
        if fused:
            current = node.output_schema()
            projections: List[Tuple[str, Expr]] = [
                (key, ColumnExpr(key, current.field(key).dtype))
                for key in aggregation.key_names
            ]
            produced = {name for name, _ in projections}
            for spec, expr in zip(aggregation.specs, aggregation.arg_expressions):
                if spec.arg is not None and expr is not None and spec.arg not in produced:
                    projections.append((spec.arg, expr))
                    produced.add(spec.arg)
            node = ProjectNode(node, projections)
        node = AggregationNode(
            node,
            list(aggregation.key_names),
            list(aggregation.specs),
            phase=aggregation.phase,
        )
    if pushed.final_project is not None:
        node = ProjectNode(node, list(pushed.final_project))
    if pushed.topn is not None:
        node = TopNNode(node, pushed.topn[0], list(pushed.topn[1]))
    if pushed.sort is not None:
        node = SortNode(node, list(pushed.sort))
    if pushed.limit is not None:
        node = LimitNode(node, pushed.limit)
    return node


def verify_optimized_plan(
    pre_plan: PlanNode, residual_plan: PlanNode, split_count: int = 1
) -> None:
    """Equivalence check: pushed + residual ≡ the pre-optimization plan.

    Three obligations, each a :class:`VerificationError` on failure:

    1. The pushed operator chain is legal (:func:`verify_pushdown`) and
       produces exactly the residual scan's schema.
    2. The residual plan *and* the expanded plan (pushed operators
       re-inflated over the original scan, residual operators on top)
       type-check and agree with the pre-plan's output schema.
    3. Operator coverage: every operator kind present in the pre-plan
       appears either pushed or residual — nothing silently vanishes.
    """
    pre_output = verify_logical_plan(pre_plan)
    residual_scan, residual_chain = _linearize(residual_plan)
    handle = residual_scan.connector_handle
    if handle is None or getattr(handle, "pushed", None) is None:
        raise VerificationError("residual scan carries no pushed-operator handle")
    pushed = handle.pushed
    base_schema: Schema = handle.descriptor.table_schema

    pushed_schema = verify_pushdown(pushed, base_schema, split_count)
    if not _schemas_agree(pushed_schema, residual_scan.output_schema()):
        raise VerificationError(
            f"pushed pipeline returns {pushed_schema.names()} but the "
            f"residual scan expects {residual_scan.output_schema().names()}"
        )

    residual_output = verify_logical_plan(residual_plan)
    if not _schemas_agree(pre_output, residual_output):
        raise VerificationError(
            f"residual plan output {residual_output.names()} disagrees with "
            f"pre-optimization output {pre_output.names()}"
        )

    pre_scan, pre_chain = _linearize(pre_plan)
    expanded = _expand_pushed(pre_scan, base_schema, pushed)
    for node in reversed(residual_chain):
        expanded = node.with_source(expanded)
    expanded_output = verify_logical_plan(expanded)
    if not _schemas_agree(pre_output, expanded_output):
        raise VerificationError(
            f"expanded (pushed + residual) output {expanded_output.names()} "
            f"disagrees with pre-optimization output {pre_output.names()}"
        )

    pre_kinds = {_NODE_KIND[type(n)] for n in pre_chain if type(n) in _NODE_KIND}
    residual_kinds = {
        _NODE_KIND[type(n)] for n in residual_chain if type(n) in _NODE_KIND
    }
    covered = residual_kinds | set(pushed.operator_names())
    if pushed.aggregation is not None or pushed.final_project is not None:
        # Fused or post-aggregation projections are absorbed rather than
        # listed under their own operator name.
        covered.add("project")
    missing = pre_kinds - covered
    if missing:
        raise VerificationError(
            f"operators {sorted(missing)} from the pre-optimization plan are "
            f"neither pushed nor residual"
        )


# --------------------------------------------------------------------------
# Rewrite equivalence
# --------------------------------------------------------------------------


def _contains_subquery(expr: Any) -> bool:
    """True when an AST expression embeds a subquery node at any depth."""
    import dataclasses

    from repro.sql.ast_nodes import (
        ExistsExpr,
        Expression,
        InSubquery,
        ScalarSubquery,
    )

    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ExistsExpr, InSubquery, ScalarSubquery)):
            return True
        if dataclasses.is_dataclass(node):
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                for child in value if isinstance(value, tuple) else (value,):
                    if isinstance(child, Expression):
                        stack.append(child)
    return False


def verify_rewrite(original: Any, plan: PlanNode) -> Schema:
    """Equivalence obligation for the logical rewriter.

    The rewritten statement's plan must (1) re-type-check bottom-up and
    (2) still produce the output shape the *pre-rewrite* statement
    declared: one column per original select item, in order, under the
    original output names.  Rules may reshape joins, predicates, and
    CTEs at will, but the user-visible result schema is inviolable.

    ``original`` is the parsed pre-rewrite :class:`SelectStatement`;
    ``plan`` is the logical plan built from the rewritten statement.
    Raises :class:`VerificationError` on any mismatch and returns the
    verified output schema.
    """
    from repro.sql.ast_nodes import Star

    out = verify_logical_plan(plan)
    items = list(original.select_items)
    if any(isinstance(item.expr, Star) for item in items):
        # ``SELECT *`` expands against catalog schemas the verifier does
        # not hold; the bottom-up type check above still applies.
        return out
    expected = [item.output_name for item in items]
    names = out.names()
    if len(names) != len(expected):
        raise VerificationError(
            f"rewrite changed the output arity: statement declares "
            f"{len(expected)} column(s) {expected}, plan produces "
            f"{len(names)} {names}"
        )
    for got, want, item in zip(names, expected, items):
        if item.alias is None and _contains_subquery(item.expr):
            # An unaliased select item containing a subquery derives its
            # output name from the subquery's SQL text; the rewriter
            # legitimately renames it when materializing the value.
            continue
        # The analyzer uniquifies duplicate output names with ``_N``.
        if got != want and not got.startswith(f"{want}_"):
            raise VerificationError(
                f"rewrite changed an output column name: statement "
                f"declares {want!r}, plan produces {got!r}"
            )
    return out


# --------------------------------------------------------------------------
# Exchange boundaries
# --------------------------------------------------------------------------


def verify_exchange_boundary(scan: TableScanNode) -> None:
    """The synthetic scan standing in for an exchange must carry no pushdown.

    When the coordinator fragments the portion of a join plan *above* the
    exchange, it substitutes a handle-less synthetic :class:`TableScanNode`
    for the join: the exchange consumes engine pages produced by the join
    tasks, not storage pages, so no operator may ride down through it into
    a connector.  (Partial aggregation *below* the boundary is fine — that
    is the per-task half of a two-phase aggregate, not a pushdown.)
    """
    handle = scan.connector_handle
    if handle is None:
        return
    pushed = getattr(handle, "pushed", None)
    if pushed is not None and pushed.any_pushdown:
        raise VerificationError(
            f"operators {pushed.operator_names()} pushed through an exchange "
            f"boundary: the exchange input is engine pages, not a storage scan"
        )
    raise VerificationError(
        "exchange-boundary scan carries a connector handle; it must stay "
        "synthetic (no connector may bind to exchange output)"
    )


# --------------------------------------------------------------------------
# Stage graphs (DAG typing)
# --------------------------------------------------------------------------


def verify_stage_graph(graph: Any) -> None:
    """Structural + edge-schema checks over a lowered stage graph.

    Rejects, before anything runs:

    * edges naming a producer absent from the graph,
    * cycles (no topological order exists),
    * orphan stages — a non-sink stage nothing consumes would be pure
      wasted work, and a graph with zero sinks has no result,
    * schema-mismatched edges: when a consumer declares the schema it
      expects from a producer (``input_schemas``) and the producer
      declares an ``output_schema``, names and dtypes must agree
      exactly (dtype identity, matching the engine's singleton dtypes).

    Untyped edges (either side ``None``/undeclared) are allowed — some
    payloads are not batch streams (a dynamic-filter handshake, an
    exchange's drained partition list keeps the producer's schema).

    ``cache-union`` stages (the hybrid reassembly of a partially cached
    scan) carry extra rules: at least one input, every input a ``scan``
    stage (the cached-local and pushed-remote branches), and all
    declared input schemas mutually identical — both fractions of one
    scan must emit the same split schema or the union is meaningless.
    """
    stages = {stage.stage_id: stage for stage in graph}
    if not stages:
        raise VerificationError("stage graph is empty")
    for stage in stages.values():
        for dep in stage.inputs:
            if dep not in stages:
                raise VerificationError(
                    f"stage {stage.stage_id!r} reads from unknown stage {dep!r}"
                )
    graph.topological()  # raises PlanError on cycles
    consumed = {dep for stage in stages.values() for dep in stage.inputs}
    sinks = [sid for sid in stages if sid not in consumed]
    if not sinks:
        raise VerificationError("stage graph has no sink stage")
    if len(sinks) > 1:
        raise VerificationError(
            f"stage graph has {len(sinks)} sinks {sorted(sinks)}; orphan "
            f"stages produce work nothing consumes"
        )
    for stage in stages.values():
        for dep, expected in stage.input_schemas.items():
            produced = stages[dep].output_schema
            if expected is None or produced is None:
                continue
            if not _schemas_agree(produced, expected):
                raise VerificationError(
                    f"edge {dep!r} -> {stage.stage_id!r} schema mismatch: "
                    f"producer emits {produced.names()} but consumer "
                    f"expects {expected.names()}"
                )
    for stage in stages.values():
        # Dynamic-filter stages record which join kind they serve; only
        # the selective kinds (inner/semi) may prune the probe scan.
        join_kind = (stage.attributes or {}).get("join_kind")
        if (
            stage.kind == "filter"
            and join_kind is not None
            and join_kind not in DYNAMIC_FILTER_JOIN_KINDS
        ):
            raise VerificationError(
                f"stage {stage.stage_id!r} publishes a dynamic filter for "
                f"a {join_kind!r} join; only {DYNAMIC_FILTER_JOIN_KINDS} "
                f"may prune the probe side"
            )
    for stage in stages.values():
        if stage.kind != "cache-union":
            continue
        if not stage.inputs:
            raise VerificationError(
                f"cache-union stage {stage.stage_id!r} has no inputs; it "
                f"must union at least one scan branch"
            )
        bad = [dep for dep in stage.inputs if stages[dep].kind != "scan"]
        if bad:
            raise VerificationError(
                f"cache-union stage {stage.stage_id!r} unions non-scan "
                f"stages {sorted(bad)}; only the cached-local and "
                f"pushed-remote fractions of one scan may feed it"
            )
        declared = [
            schema
            for schema in (stage.input_schemas.get(dep) for dep in stage.inputs)
            if schema is not None
        ]
        for other in declared[1:]:
            if not _schemas_agree(declared[0], other):
                raise VerificationError(
                    f"cache-union stage {stage.stage_id!r} unions branches "
                    f"with mismatched schemas {declared[0].names()} vs "
                    f"{other.names()}"
                )
