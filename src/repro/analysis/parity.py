"""Backend parity harness: fused kernels vs the tree-walk reference.

The fused execution backend (:mod:`repro.exec.kernels`) is only
admissible if it is *observationally identical* to the tree-walk
reference backend — same rows, same bytes, under every query shape.
This module turns that claim into a checked invariant at the analysis
layer, alongside the determinism harness it builds on:

* :func:`check_backend_parity` runs one query twice on the same
  environment — once per backend — and compares the canonical
  (row-order-independent) result digests from
  :mod:`repro.analysis.determinism`.
* :func:`check_suite_parity` sweeps a list of (sql, config, schema)
  cases and returns one report per case; the test suite drives it over
  every suite query (TPC-H, HPC, sensor workloads) in both raw and
  pushdown modes.
* ``python -m repro.analysis.parity`` runs the built-in seeded harness
  workload under both backends, additionally replaying the fused run
  through the determinism checker (FIFO/FIFO/LIFO) so backend parity is
  wired into the same digest rail CI already gates on.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, replace
from typing import Any, Iterable, List, Sequence, Tuple

from repro.analysis.determinism import (
    HARNESS_QUERY,
    _build_harness_env,
    canonical_result_digest,
    check_determinism,
)
from repro.errors import DeterminismError

__all__ = [
    "BackendParityReport",
    "check_backend_parity",
    "check_suite_parity",
    "main",
]


@dataclass(frozen=True)
class BackendParityReport:
    """Digest comparison of one query run under both exec backends."""

    label: str
    sql: str
    tree_digest: str
    fused_digest: str
    tree_rows: int
    fused_rows: int
    tree_seconds: float
    fused_seconds: float

    @property
    def ok(self) -> bool:
        return self.tree_digest == self.fused_digest

    @property
    def sim_speedup(self) -> float:
        """Simulated-time ratio (tree / fused); >= 1.0 means fused is
        no slower under the cost model."""
        if self.fused_seconds <= 0.0:
            return 1.0
        return self.tree_seconds / self.fused_seconds

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        raise DeterminismError(
            f"backend parity violation for {self.label!r}: tree digest "
            f"{self.tree_digest[:16]}… ({self.tree_rows} rows) != fused "
            f"digest {self.fused_digest[:16]}… ({self.fused_rows} rows)"
        )

    def summary(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (
            f"parity[{self.label}]: {status} rows={self.tree_rows} "
            f"digest={self.tree_digest[:16]} sim_speedup={self.sim_speedup:.3f}"
        )


def check_backend_parity(
    env: Any,
    sql: str,
    config: Any,
    schema: str,
    catalog: str = "repro",
) -> BackendParityReport:
    """Run ``sql`` under tree-walk and fused backends; digest-compare.

    ``config`` is a :class:`repro.bench.env.RunConfig`; its
    ``exec_backend`` field is overridden in both directions so any
    config can be handed in as the base.
    """
    tree = env.run(sql, replace(config, exec_backend="tree"), schema, catalog)
    fused = env.run(sql, replace(config, exec_backend="fused"), schema, catalog)
    return BackendParityReport(
        label=config.label,
        sql=sql,
        tree_digest=canonical_result_digest(tree.batch),
        fused_digest=canonical_result_digest(fused.batch),
        tree_rows=tree.rows,
        fused_rows=fused.rows,
        tree_seconds=tree.execution_seconds,
        fused_seconds=fused.execution_seconds,
    )


def check_suite_parity(
    env: Any,
    cases: Iterable[Tuple[str, Any, str]],
    catalog: str = "repro",
) -> List[BackendParityReport]:
    """Parity-check every ``(sql, config, schema)`` case; raise on the
    first mismatch after checking them all."""
    reports = [
        check_backend_parity(env, sql, config, schema, catalog)
        for sql, config, schema in cases
    ]
    for report in reports:
        report.raise_if_failed()
    return reports


def _harness_cases() -> Sequence[Tuple[str, Any, str]]:
    from repro.bench.env import RunConfig

    return (
        (HARNESS_QUERY, RunConfig(label="parity-ocs", mode="ocs"), "lab"),
        (HARNESS_QUERY, RunConfig(label="parity-raw", mode="hive-raw"), "lab"),
    )


def main() -> int:
    from repro.bench.env import RunConfig

    env = _build_harness_env()
    failed = False
    for sql, config, schema in _harness_cases():
        report = check_backend_parity(env, sql, config, schema)
        print(report.summary())
        failed = failed or not report.ok
    # The fused backend must also be deterministic in its own right:
    # replay it through the FIFO/FIFO/LIFO digest checker.
    det = check_determinism(
        env,
        HARNESS_QUERY,
        RunConfig(label="determinism-fused", mode="ocs", exec_backend="fused"),
        schema="lab",
    )
    print(det.summary())
    if failed or not det.ok:
        return 1
    print("backend parity harness: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
