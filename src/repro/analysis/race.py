"""SimTSan CLI: run the smoke benches under the race sanitizer.

``python -m repro.analysis.race`` does two things:

1. **Self-test** — a seeded synthetic cluster of racy actors (two
   same-instant writers to one shared key with no happens-before edge,
   plus a read/write pair) runs under a sink-mode
   :class:`~repro.analysis.sanitizer.SimTSan`.  The sanitizer *must*
   report both races with the planted access sites; a detector that
   stays silent here is broken, so the harness fails closed.
2. **Bench sweep** — the table3, join, dag, cache, and service smoke
   benches run with ``strict_sanitize`` on.  These are the repo's own
   workloads; any report means a same-instant access to shared
   simulated state whose outcome rides the kernel tie-break policy.

Exit status is 0 only when the self-test races are caught *and* every
bench suite comes back clean.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.runtime import set_strict_sanitize
from repro.errors import SanitizerError

__all__ = ["SuiteRow", "run_self_test", "run_bench_suites", "main"]


@dataclass(frozen=True, kw_only=True)
class SuiteRow:
    """Outcome of one sanitized suite."""

    name: str
    clean: bool
    detail: str


# --------------------------------------------------------------------------
# Self-test: planted races the sanitizer must catch
# --------------------------------------------------------------------------


def run_self_test(seed: int = 0) -> List[SuiteRow]:
    """Plant two races in a synthetic actor cluster; both must be caught.

    ``seed`` shifts the racing instant (binary-exact multiples of 0.25)
    so replays under different seeds still collide at one timestamp.
    """
    from repro.analysis.sanitizer import RaceReport, SimTSan
    from repro.sim.kernel import ProcessGenerator, Simulator

    instant = 0.25 * (1 + seed % 4)
    sim = Simulator()
    reports: List[RaceReport] = []
    sanitizer = SimTSan(sim, sink=reports).install()
    try:
        shared = {"hits": 0}

        def writer(tag: str) -> ProcessGenerator:
            yield sim.timeout(instant)
            sanitizer.record_write(("self-test", "counter"), f"self_test.{tag}")
            shared["hits"] += 1

        def reader() -> ProcessGenerator:
            yield sim.timeout(2 * instant)
            sanitizer.record_read(("self-test", "window"), "self_test.reader")
            return shared["hits"]

        def appender() -> ProcessGenerator:
            yield sim.timeout(2 * instant)
            sanitizer.record_write(("self-test", "window"), "self_test.appender")

        sim.process(writer("writer_a"), name="writer-a")
        sim.process(writer("writer_b"), name="writer-b")
        sim.process(reader(), name="reader")
        sim.process(appender(), name="appender")
        sim.run()
    finally:
        sanitizer.uninstall()

    sites = {(r.first.site, r.second.site) for r in reports}

    def caught(a: str, b: str) -> bool:
        return (a, b) in sites or (b, a) in sites

    rows = [
        SuiteRow(
            name="self-test w/w",
            clean=caught("self_test.writer_a", "self_test.writer_b"),
            detail="two same-instant writers, no happens-before edge",
        ),
        SuiteRow(
            name="self-test r/w",
            clean=caught("self_test.reader", "self_test.appender"),
            detail="same-instant read racing a write on one key",
        ),
    ]
    return rows


# --------------------------------------------------------------------------
# Bench sweep: the repo's own workloads must come back clean
# --------------------------------------------------------------------------


def _suite_table3(rows: int) -> None:
    from repro.bench.table3 import run_table3

    run_table3(rows=rows)


def _suite_join() -> None:
    from repro.bench.join import QUERIES, build_environment, run_join_bench

    env = build_environment("smoke", seed=0)
    run_join_bench(env, QUERIES["q3"])


def _suite_dag(seed: int) -> None:
    """One straggler trial: degraded storage node, speculation on."""
    from repro.bench import dag
    from repro.bench.env import RunConfig
    from repro.config import FaultSpec
    from repro.core import PushdownPolicy
    from repro.engine import SchedulerSpec

    env = dag.build_environment("smoke", seed)
    config = RunConfig(
        label="race-dag",
        mode="ocs",
        policy=PushdownPolicy.filter_only(),
        split_granularity="file",
        faults=FaultSpec(storage_latency_multipliers={0: 20.0}, seed=seed),
        scheduler=SchedulerSpec(speculation=True, speculation_quorum=0.25),
    )
    env.run(dag.SQL, config, "tpch")


def _suite_cache(seed: int) -> None:
    """The cache tier drill: fills and hits on every shared cache tier."""
    from repro.bench.cache import run_tier_drill

    run_tier_drill("smoke", seed)


def _suite_service(seed: int) -> None:
    from repro.bench.service import build_environment
    from repro.config import ServiceSpec
    from repro.service import QueryService, QueryTemplate, open_loop
    from repro.workloads.laghos import LAGHOS_QUERY
    from repro.workloads.tpch import TPCH_Q1

    spec = ServiceSpec(max_active_queries=2, max_queue_depth=8)
    service = QueryService(build_environment(), spec)
    templates = [
        QueryTemplate(tenant="analytics", sql=TPCH_Q1, schema="tpch", label="q1"),
        QueryTemplate(tenant="hpc", sql=LAGHOS_QUERY, schema="hpc", label="laghos"),
    ]
    open_loop(service, templates, queries=8, mean_interarrival_s=0.05, seed=seed)


def _sanitized(name: str, fn: Callable[[], None]) -> SuiteRow:
    """Run ``fn`` with the process-wide sanitizer default forced on."""
    previous = set_strict_sanitize(True)
    try:
        fn()
    except SanitizerError as exc:
        return SuiteRow(name=name, clean=False, detail=str(exc))
    finally:
        set_strict_sanitize(previous)
    return SuiteRow(name=name, clean=True, detail="no races")


def run_bench_suites(rows: int = 8192, seed: int = 0) -> List[SuiteRow]:
    return [
        _sanitized("table3", lambda: _suite_table3(rows)),
        _sanitized("join", _suite_join),
        _sanitized("dag", lambda: _suite_dag(seed)),
        _sanitized("cache", lambda: _suite_cache(seed)),
        _sanitized("service", lambda: _suite_service(seed)),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.race",
        description="run the smoke benches under the SimTSan race sanitizer",
    )
    parser.add_argument(
        "--rows", type=int, default=8192, help="table3 rows (default 8192)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    args = parser.parse_args(argv)

    self_rows = run_self_test(args.seed)
    ok = True
    for row in self_rows:
        status = "caught" if row.clean else "MISSED"
        ok = ok and row.clean
        print(f"{row.name:<14} {status:<8} {row.detail}")

    bench_rows = run_bench_suites(rows=args.rows, seed=args.seed)
    for row in bench_rows:
        status = "clean" if row.clean else "RACES"
        ok = ok and row.clean
        print(f"{row.name:<14} {status:<8} {row.detail}")

    print()
    if ok:
        print("race harness: self-test races caught, benches clean")
        return 0
    print("race harness: FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
