"""Simulation-safety linter: repo-specific AST rules.

Run as ``python -m repro.analysis.lint src tests``.  These rules encode
invariants of *this* codebase that no off-the-shelf tool knows:

``wall-clock``
    No ``time.time()``/``datetime.now()``-style wall-clock reads in
    sim-reachable modules — simulated time comes from ``Simulator.now``
    only, or runs stop being reproducible.  (Sim-scoped.)
``unseeded-random``
    No module-level ``random.*`` / ``numpy.random.*`` draws or unseeded
    generator construction in sim-reachable modules; randomness must flow
    from an explicitly seeded ``random.Random(seed)`` /
    ``default_rng(seed)``.  (Sim-scoped.)
``float-eq``
    No ``==``/``!=`` against a float literal — simulated timestamps and
    cost-model outputs accumulate rounding; compare with tolerances or
    integers.  (Sim-scoped; tests may assert exact values.)
``mutable-default``
    No mutable default arguments (list/dict/set literals or bare
    constructor calls) — shared state across calls breaks run isolation.
``kwonly-config``
    Frozen config dataclasses that define a ``validate()`` hook must be
    ``kw_only=True`` so call sites cannot silently swap positional knobs.
``span-pair``
    A function that opens a span with ``tracer.start(...)`` must also
    close one (``tracer.end(...)``) or use the ``tracer.span(...)``
    context manager — unbalanced spans fail trace validation at runtime,
    this catches them statically.  (Sim-scoped.)
``bare-except``
    No bare ``except:`` — it swallows ``Interrupt`` and
    ``SimDeadlockError``, corrupting process cleanup in the kernel.
``module-state``
    No module-level mutable containers (registries, queues, caches
    created at import time): two services or replays in one process
    would share them, breaking run isolation and determinism.  UPPER
    constants and dunders are exempt; hold state on a class or build it
    in a factory instead.  (Sim-scoped.)
``unordered-iter``
    No iterating directly over a set expression (``{...}`` literal, set
    comprehension, ``set()``/``frozenset()`` call) in sim-reachable
    code — set iteration is hash order, which ``PYTHONHASHSEED`` can
    reshuffle between processes, so anything the loop feeds into a
    shared registry or commit path becomes order-sensitive.  Wrap the
    iterable in ``sorted(...)``.  (Sim-scoped.)
``zero-timeout``
    No literal ``.timeout(0)`` / ``.timeout(0.0)`` — a zero-delay timer
    schedules at the *current* instant and races every other
    same-instant event under the kernel tie-break policy.  Use
    ``Simulator.barrier()`` for a tie-break-insensitive sync point, or
    a positive delay.  (Sim-scoped.)

Suppress a finding in place with ``# simlint: ignore[rule]`` (or
``ignore[rule-a,rule-b]``, or a blanket ``ignore`` for every rule) on
the offending line.  Sim-scoped rules apply to library code only: files
under ``tests``/``examples``/``benchmarks`` directories and ``test_*.py``
files are exempt from them, while universal rules apply everywhere.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["LintViolation", "lint_file", "lint_paths", "main", "RULES"]

RULES: Dict[str, str] = {
    "wall-clock": "wall-clock read in sim-reachable code",
    "unseeded-random": "unseeded randomness in sim-reachable code",
    "float-eq": "exact equality against a float literal",
    "mutable-default": "mutable default argument",
    "kwonly-config": "frozen config dataclass with validate() must be kw_only",
    "span-pair": "tracer.start() without tracer.end()/tracer.span() in function",
    "bare-except": "bare except swallows simulator control-flow exceptions",
    "module-state": "module-level mutable container shared across runs",
    "unordered-iter": "iteration over a set expression is hash-ordered",
    "zero-timeout": "timeout(0) races every same-instant event; use barrier()",
}

#: Rules that only apply to simulation-reachable library code.
SIM_SCOPED_RULES = frozenset(
    {"wall-clock", "unseeded-random", "float-eq", "span-pair", "module-state",
     "unordered-iter", "zero-timeout"}
)

#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict"}
)

_WALL_CLOCK_TIME_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns"}
)
_WALL_CLOCK_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_RANDOM_MODULE_FUNCS = frozenset(
    {"random", "randint", "randrange", "uniform", "gauss", "normalvariate",
     "choice", "choices", "sample", "shuffle", "betavariate", "expovariate",
     "seed", "getrandbits", "triangular"}
)
_NUMPY_RANDOM_FUNCS = frozenset(
    {"random", "rand", "randn", "randint", "uniform", "normal", "choice",
     "shuffle", "permutation", "exponential", "poisson", "seed", "random_sample"}
)

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[([A-Za-z0-9_,\-\s]*)\])?")


@dataclass(frozen=True, kw_only=True)
class LintViolation:
    """One finding: where, which rule, and a human-readable message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _suppressed_rules(line: str) -> Optional[Set[str]]:
    """Rules suppressed on this source line; empty set = suppress all."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    listed = match.group(1)
    if listed is None:
        return set()
    return {part.strip() for part in listed.split(",") if part.strip()}


def is_sim_scope(path: Path) -> bool:
    """True for library code where sim-scoped rules apply."""
    parts = set(path.parts)
    if parts & {"tests", "examples", "benchmarks"}:
        return False
    return not path.name.startswith("test_")


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: Sequence[str], sim_scope: bool) -> None:
        self.path = path
        self.source_lines = source_lines
        self.sim_scope = sim_scope
        self.violations: List[LintViolation] = []

    # -- reporting ---------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in SIM_SCOPED_RULES and not self.sim_scope:
            return
        lineno = getattr(node, "lineno", 1)
        if 1 <= lineno <= len(self.source_lines):
            suppressed = _suppressed_rules(self.source_lines[lineno - 1])
            if suppressed is not None and (not suppressed or rule in suppressed):
                return
        self.violations.append(
            LintViolation(
                path=str(self.path),
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    # -- per-node rules ----------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        self._check_module_state(node)
        self.generic_visit(node)

    def _check_module_state(self, node: ast.Module) -> None:
        """Flag import-time registries/queues (direct module-body assigns)."""
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not self._is_mutable_container(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.isupper() or (name.startswith("__") and name.endswith("__")):
                    # UPPER constants (treated as frozen by convention) and
                    # dunders like __all__ are not service state.
                    continue
                self._report(
                    stmt, "module-state",
                    f"module-level mutable container {name!r} is created at "
                    f"import time and shared by every run in the process; "
                    f"hold it on a class or build it in a factory",
                )

    @staticmethod
    def _is_mutable_container(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return (
                dotted is not None
                and dotted.split(".")[-1] in _MUTABLE_CONSTRUCTORS
            )
        return False

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self._check_wall_clock(node, dotted)
            self._check_unseeded_random(node, dotted)
        self._check_zero_timeout(node)
        self.generic_visit(node)

    def _check_zero_timeout(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "timeout"):
            return
        if not node.args:
            return
        delay = node.args[0]
        if isinstance(delay, ast.Constant) and isinstance(
            delay.value, (int, float)
        ) and not isinstance(delay.value, bool) and delay.value == 0:
            self._report(
                node, "zero-timeout",
                "timeout(0) schedules at the current instant and races every "
                "other same-instant event under the tie-break policy; use "
                "Simulator.barrier() for a sync point, or a positive delay",
            )

    # -- unordered iteration ----------------------------------------------

    @staticmethod
    def _is_set_expression(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted in ("set", "frozenset")
        return False

    def _check_unordered_iter(self, iter_node: ast.expr) -> None:
        if self._is_set_expression(iter_node):
            self._report(
                iter_node, "unordered-iter",
                "iterating a set is hash order (PYTHONHASHSEED-dependent); "
                "wrap in sorted(...) before feeding shared state",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for generator in getattr(node, "generators", []):
            self._check_unordered_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-2] == "time" and parts[-1] in _WALL_CLOCK_TIME_FUNCS:
            self._report(node, "wall-clock", f"{dotted}() reads the wall clock; "
                         f"use Simulator.now for simulated time")
        elif parts[-1] in _WALL_CLOCK_DATETIME_FUNCS and parts[-2:-1] in (
            ["datetime"], ["date"],
        ):
            self._report(node, "wall-clock", f"{dotted}() reads the wall clock; "
                         f"use Simulator.now for simulated time")

    def _check_unseeded_random(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _RANDOM_MODULE_FUNCS:
                self._report(
                    node, "unseeded-random",
                    f"module-level {dotted}() shares global, unseeded state; "
                    f"draw from an explicit random.Random(seed)",
                )
            elif parts[1] == "Random" and not node.args and not node.keywords:
                self._report(
                    node, "unseeded-random",
                    "random.Random() without a seed; pass an explicit seed",
                )
        elif len(parts) >= 2 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
            if parts[-1] in _NUMPY_RANDOM_FUNCS:
                self._report(
                    node, "unseeded-random",
                    f"{dotted}() uses numpy's global RNG; "
                    f"draw from an explicit default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                self._report(
                    node, "unseeded-random",
                    "default_rng() without a seed; pass an explicit seed",
                )

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self._report(
                    node, "float-eq",
                    "exact ==/!= against a float literal; compare with a "
                    "tolerance (math.isclose) or restructure to integers",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults: List[ast.expr] = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            if self._is_mutable_literal(default):
                self._report(
                    default, "mutable-default",
                    f"mutable default in {node.name}(); use None and "
                    f"construct inside the body",
                )
        self._check_span_pairing(node)

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and not node.args and not node.keywords:
            return isinstance(node.func, ast.Name) and node.func.id in (
                "list", "dict", "set",
            )
        return False

    def _check_span_pairing(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        starts: List[ast.Call] = []
        has_close = False
        for child in ast.walk(node):
            if child is not node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested defs are checked on their own visit
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if not isinstance(func, ast.Attribute):
                continue
            base = _dotted_name(func.value)
            if base is None or "tracer" not in base.lower():
                continue
            if func.attr == "start":
                starts.append(child)
            elif func.attr in ("end", "span"):
                has_close = True
        if starts and not has_close:
            for start in starts:
                self._report(
                    start, "span-pair",
                    f"{node.name}() opens a span with tracer.start() but "
                    f"never calls tracer.end() or uses tracer.span()",
                )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_kwonly_config(node)
        self.generic_visit(node)

    def _check_kwonly_config(self, node: ast.ClassDef) -> None:
        decorator_call: Optional[ast.Call] = None
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = _dotted_name(decorator.func)
                if name is not None and name.split(".")[-1] == "dataclass":
                    decorator_call = decorator
                    break
        if decorator_call is None:
            return
        keywords = {
            kw.arg: kw.value for kw in decorator_call.keywords if kw.arg is not None
        }
        frozen = keywords.get("frozen")
        kw_only = keywords.get("kw_only")
        is_frozen = isinstance(frozen, ast.Constant) and frozen.value is True
        is_kw_only = isinstance(kw_only, ast.Constant) and kw_only.value is True
        has_validate = any(
            isinstance(item, ast.FunctionDef) and item.name == "validate"
            for item in node.body
        )
        if is_frozen and has_validate and not is_kw_only:
            self._report(
                decorator_call, "kwonly-config",
                f"config dataclass {node.name} is frozen and validated but "
                f"not kw_only=True; positional construction can silently "
                f"swap knobs",
            )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "bare-except",
                "bare except catches Interrupt/SimDeadlockError; name the "
                "exception classes (or use `except Exception`)",
            )
        self.generic_visit(node)


def lint_file(path: Path) -> List[LintViolation]:
    """Lint one Python file; syntax errors surface as a finding."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="syntax",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    linter = _Linter(path, source.splitlines(), is_sim_scope(path))
    linter.visit(tree)
    return linter.violations


def lint_paths(paths: Iterable[Path | str]) -> List[LintViolation]:
    """Lint files and directory trees; skips ``__pycache__``."""
    violations: List[LintViolation] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            files = [path]
        for file in files:
            violations.extend(lint_file(file))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Simulation-safety linter (repo-specific AST rules).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            scope = "sim-scoped" if rule in SIM_SCOPED_RULES else "universal"
            print(f"{rule:16s} [{scope}] {description}")
        return 0
    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    print("simlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
