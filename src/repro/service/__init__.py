"""Multi-tenant query service over the simulated OCS cluster.

The subsystem the paper's single-query benchmarks stop short of: many
concurrently submitted queries from multiple tenants sharing one
simulated cluster, with admission control in front (bounded queue,
per-tenant quotas), a FIFO/fair-share scheduler in the middle, seeded
open/closed-loop load generation driving it, and an SLO report
(p50/p95/p99, queue-wait vs execution, per-tenant throughput) out the
back.  See ``docs/SERVICE.md``.
"""

from repro.service.admission import AdmissionController, TenantState
from repro.service.jobs import JobStatus, QueryHandle, QueryJob
from repro.service.loadgen import QueryTemplate, closed_loop, open_loop
from repro.service.service import QueryService
from repro.service.slo import QueryStat, SLOReport, TenantSLO, build_report

__all__ = [
    "AdmissionController",
    "TenantState",
    "JobStatus",
    "QueryHandle",
    "QueryJob",
    "QueryTemplate",
    "open_loop",
    "closed_loop",
    "QueryService",
    "QueryStat",
    "SLOReport",
    "TenantSLO",
    "build_report",
]
