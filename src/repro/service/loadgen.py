"""Seeded load generators driving the multi-tenant query service.

Two canonical shapes from the SLO literature:

* :func:`open_loop` — arrivals follow a seeded Poisson process that does
  *not* react to service latency (the shape that exposes queueing
  collapse: arrivals keep coming while the cluster falls behind).
* :func:`closed_loop` — a fixed population of simulated clients, each
  submitting its next query only after the previous one finished
  (optionally after a think time), which self-limits concurrency.

Both are deterministic: the only randomness is a ``random.Random(seed)``
driving interarrival draws, and all waiting happens in simulated time,
so one seed always produces one schedule (digest-checkable with
``repro.analysis.determinism``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.env import RunConfig
from repro.errors import ConfigError
from repro.service.jobs import QueryHandle
from repro.service.service import QueryService

__all__ = ["QueryTemplate", "open_loop", "closed_loop"]


@dataclass(frozen=True, kw_only=True)
class QueryTemplate:
    """One tenant's recurring query in a load mix."""

    tenant: str
    sql: str
    schema: str
    label: str = ""
    memory_bytes: Optional[int] = None
    config: Optional[RunConfig] = None

    @property
    def display_label(self) -> str:
        return self.label or self.tenant


def open_loop(
    service: QueryService,
    templates: Sequence[QueryTemplate],
    *,
    queries: int,
    mean_interarrival_s: float,
    seed: int,
    start_at: float = 0.0,
) -> List[QueryHandle]:
    """Submit ``queries`` Poisson arrivals, round-robin over ``templates``.

    Round-robin template selection guarantees every tenant appears in the
    mix regardless of seed; only the *timing* is random.  Returns the
    handles immediately — drive them with ``service.drain()`` (or
    ``handle.result()``).
    """
    if not templates:
        raise ConfigError("open_loop needs at least one query template")
    if mean_interarrival_s <= 0:
        raise ConfigError(
            f"mean_interarrival_s must be > 0, got {mean_interarrival_s}"
        )
    rng = random.Random(seed)
    rate = 1.0 / mean_interarrival_s
    handles: List[QueryHandle] = []
    t = start_at
    for i in range(queries):
        template = templates[i % len(templates)]
        t += rng.expovariate(rate)
        handles.append(
            service.submit(
                template.sql,
                tenant=template.tenant,
                schema=template.schema,
                config=template.config,
                memory_bytes=template.memory_bytes,
                label=f"{template.display_label}-{i}",
                at=t,
            )
        )
    return handles


def closed_loop(
    service: QueryService,
    templates: Sequence[QueryTemplate],
    *,
    queries_per_client: int,
    clients_per_template: int = 1,
    think_time_s: float = 0.0,
) -> List[QueryHandle]:
    """Fixed client population: submit, await completion, repeat.

    Spawns ``clients_per_template`` simulated clients per template, each
    issuing ``queries_per_client`` queries back to back.  The returned
    list fills *as the simulation runs* — it is complete only after
    ``service.drain()``.  A rejected or timed-out submission still
    completes its wait, so a throttled client simply moves on to its
    next query (retry loops belong to the caller).
    """
    if not templates:
        raise ConfigError("closed_loop needs at least one query template")
    if queries_per_client < 1 or clients_per_template < 1:
        raise ConfigError("closed_loop needs >= 1 query per client and >= 1 client")
    handles: List[QueryHandle] = []

    def client(template: QueryTemplate, client_id: str):
        for i in range(queries_per_client):
            handle = service.submit(
                template.sql,
                tenant=template.tenant,
                schema=template.schema,
                config=template.config,
                memory_bytes=template.memory_bytes,
                label=f"{template.display_label}-{client_id}.{i}",
            )
            handles.append(handle)
            yield handle.completion_event()
            if think_time_s > 0:
                yield service.sim.timeout(think_time_s)

    for t_index, template in enumerate(templates):
        for c in range(clients_per_template):
            client_id = f"{t_index}.{c}"
            service.sim.process(
                client(template, client_id), name=f"client-{client_id}"
            )
    return handles
