"""The multi-tenant query service: one shared cluster, many queries.

Where :meth:`Environment.run` executes exactly one query per simulated
cluster, :class:`QueryService` accepts a *stream* of concurrently
submitted queries and interleaves their split execution over one shared
cluster — the paper's real deployment shape, where many Presto workers
push plans down to a shared pool of OCS storage nodes and contention on
storage-side compute is the first thing that breaks offloading.

The service composes four pieces:

* an :class:`~repro.service.admission.AdmissionController` guarding a
  bounded run queue with per-tenant in-flight and memory limits
  (rejections are typed :class:`~repro.errors.AdmissionError`\\ s);
* a **concurrent scheduler** dispatching queued queries as execution
  slots free up, under a FIFO or fair-share policy, with storage-queue
  backpressure;
* per-query scoping: each query gets its own metrics registry, span
  root, and resource-accounting tag, so concurrent queries stay
  attributable on the shared substrate;
* deterministic replay: the service schedules everything through the
  DES kernel, so a seeded workload produces an identical event digest
  on every replay (``repro.analysis.determinism`` machinery applies).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.runtime import strict_sanitize_enabled
from repro.bench.env import Environment, RunConfig
from repro.config import ServiceSpec
from repro.engine.cluster import Cluster
from repro.engine.coordinator import Coordinator
from repro.engine.session import Session
from repro.errors import AdmissionError, ConfigError, QueueTimeoutError, ServiceError
from repro.service.admission import AdmissionController
from repro.service.jobs import JobStatus, QueryHandle, QueryJob
from repro.sim.metrics import MetricsRegistry

__all__ = ["QueryService"]

#: Default per-query run configuration (full OCS pushdown).
_DEFAULT_CONFIG_LABEL = "service"


class QueryService:
    """Admission + concurrent scheduling over one shared simulated cluster."""

    def __init__(
        self,
        environment: Environment,
        spec: Optional[ServiceSpec] = None,
        *,
        catalog: str = "repro",
        default_schema: Optional[str] = None,
        base_config: Optional[RunConfig] = None,
        tie_break: str = "fifo",
        observer=None,
    ) -> None:
        """Stand the service up on ``environment``'s datasets.

        ``base_config`` fixes the cluster-level knobs (fault spec, strict
        S3 typing) and the default per-query connector config; individual
        submissions may carry their own :class:`RunConfig`, which binds a
        separate connector on the *same* cluster.  ``tie_break`` /
        ``observer`` instrument the kernel for the determinism harness.
        """
        self.environment = environment
        self.spec = spec if spec is not None else ServiceSpec()
        self.catalog = catalog
        self.default_schema = default_schema
        self.base_config = (
            base_config
            if base_config is not None
            else RunConfig(label=_DEFAULT_CONFIG_LABEL, mode="ocs")
        )
        #: Hybrid result/page cache (docs/CACHE.md), shared through the
        #: environment so cached state is visible to later services built
        #: on the same datasets with an equal spec.
        self.cache = environment.cache_manager(self.base_config.cache)
        self.cluster = Cluster(
            environment.store,
            environment.testbed,
            environment.costs,
            strict_s3_types=self.base_config.strict_s3_types,
            faults=self.base_config.faults,
            tracing=self.spec.tracing,
            tie_break=tie_break,
            sim_observer=observer,
            cache=self.cache,
        )
        self.sim = self.cluster.sim
        self.coordinator = Coordinator(
            self.cluster, {}, exec_backend=self.base_config.exec_backend,
            scheduler=self.base_config.scheduler,
        )
        self.admission = AdmissionController(self.spec)
        if self.cache is not None:
            # Per-tenant quota accounting: hit/miss/fill/refusal counters
            # land in the same ledgers the SLO report reads.
            self.cache.accountant = self.admission.record_cache
        self.jobs: List[QueryJob] = []
        self._queue: List[QueryJob] = []
        self._active = 0
        self._next_seq = 0
        self._poll_scheduled = False
        #: Deterministic connector cache: config key -> catalog name.
        self._catalogs: Dict[tuple, str] = {}
        #: SimTSan over the shared cluster, when strict_sanitize resolves
        #: on (explicitly via ``base_config`` or the process default).
        #: One tracker per service so clocks persist across drains, but
        #: *installed* only around :meth:`wait_for`/:meth:`drain` — the
        #: process-wide handle must not leak into other clusters' runs.
        self.sanitizer = None
        if strict_sanitize_enabled(self.base_config.strict_sanitize):
            from repro.analysis.sanitizer import SimTSan

            self.sanitizer = SimTSan(self.sim)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        sql: str,
        *,
        tenant: str = "default",
        schema: Optional[str] = None,
        config: Optional[RunConfig] = None,
        at: Optional[float] = None,
        memory_bytes: Optional[int] = None,
        label: Optional[str] = None,
    ) -> QueryHandle:
        """Enqueue one query for arrival at simulated time ``at``.

        ``at`` defaults to the current simulated instant (submissions
        from inside a running simulation, e.g. a closed-loop load
        generator, land "now").  The returned handle is live immediately;
        admission happens at the arrival instant.
        """
        schema = schema if schema is not None else self.default_schema
        if schema is None:
            raise ConfigError(
                "submit() needs schema=... (or construct the service with "
                "default_schema)"
            )
        arrival = self.sim.now if at is None else float(at)
        if arrival < self.sim.now:
            raise ConfigError(
                f"submission time {arrival} is in the simulated past "
                f"(now={self.sim.now})"
            )
        seq = self._next_seq
        self._next_seq += 1
        job = QueryJob(
            query_id=f"q{seq:04d}",
            arrival_seq=seq,
            tenant=tenant,
            sql=sql,
            schema=schema,
            label=label if label is not None else f"q{seq:04d}",
            config=config if config is not None else self.base_config,
            memory_bytes=(
                memory_bytes
                if memory_bytes is not None
                else self.spec.default_query_memory_bytes
            ),
            completion=self.sim.event(),
        )
        self.jobs.append(job)
        self.sim.process(
            self._arrival(job, arrival - self.sim.now), name=f"submit-{job.query_id}"
        )
        return QueryHandle(self, job)

    def _arrival(self, job: QueryJob, delay: float):
        yield self.sim.timeout(delay)
        self._admit(job)

    # -- admission -------------------------------------------------------------

    # Same-instant submissions are processed in kernel dispatch order —
    # under the default FIFO tie-break, that is submission (arrival_seq)
    # order, and replays fix the policy, so the serialization is
    # deterministic *by design* even though no causal edge orders one
    # arrival's ledger update before the next one's check.  SimTSan
    # would flag every burst workload for it, so the admission calls
    # below carry targeted suppressions; any ledger access that does
    # not go through these serialized transitions is still checked.
    def _admit(self, job: QueryJob) -> None:
        now = self.sim.now
        tracer = self.cluster.tracer
        job.submitted = now
        self.admission.record_submit(job, now)  # simtsan: ignore[admission.record_submit]
        # Lifecycle spans deliberately outlive this function: the root
        # closes at the job's terminal transition, the queue span at
        # dispatch (or timeout/rejection).
        job.span = tracer.start(  # simlint: ignore[span-pair]
            "service.query",
            attributes={
                "tenant": job.tenant,
                "query_id": job.query_id,
                "label": job.label,
            },
        )
        # A query that can start immediately never occupies the queue, so
        # the queue bound only applies to submissions that would wait.
        would_wait = not (
            self._active < self.spec.max_active_queries
            and not self._queue
            and not self._backpressured()
        )
        error = self.admission.check(  # simtsan: ignore[admission.check]
            job, len(self._queue) if would_wait else -1
        )
        if error is not None:
            self._reject(job, error)
            return
        self.admission.admit(job)  # simtsan: ignore[admission.admit]
        job.status = JobStatus.QUEUED
        job.queue_span = tracer.start("queue", parent=job.span)  # simlint: ignore[span-pair]
        self._queue.append(job)
        if self.spec.queue_timeout_s is not None:
            self.sim.process(
                self._queue_timeout(job), name=f"queue-timeout-{job.query_id}"
            )
        self._pump()

    def _reject(self, job: QueryJob, error: AdmissionError) -> None:
        job.status = JobStatus.REJECTED
        job.error = error
        job.finished = self.sim.now
        self.admission.record_reject(job, error)  # simtsan: ignore[admission.record_reject]
        span = job.span
        span.record_error(str(error.code))
        span.set("status", str(job.status))
        span.set("error_code", str(error.code))
        self.cluster.tracer.end(span)
        job.completion.succeed(None)

    def _queue_timeout(self, job: QueryJob):
        yield self.sim.timeout(self.spec.queue_timeout_s)
        if job.status is not JobStatus.QUEUED:
            return
        self._queue.remove(job)
        job.status = JobStatus.TIMED_OUT
        job.error = QueueTimeoutError(
            f"query {job.query_id} (tenant {job.tenant!r}) waited "
            f"{self.spec.queue_timeout_s}s in the run queue"
        )
        job.finished = self.sim.now
        self.admission.release(job, self.sim.now)  # simtsan: ignore[admission.release]
        tracer = self.cluster.tracer
        if job.queue_span is not None:
            tracer.end(job.queue_span)
        job.span.record_error(str(job.error.code))
        job.span.set("status", str(job.status))
        job.span.set("error_code", str(job.error.code))
        tracer.end(job.span)
        job.completion.succeed(None)

    # -- scheduling ------------------------------------------------------------

    def _backpressured(self) -> bool:
        threshold = self.spec.backpressure_queue_depth
        return (
            threshold is not None
            and self.cluster.storage_queue_depth() >= threshold
        )

    def _pump(self) -> None:
        """Dispatch queued queries while slots are free (the scheduler)."""
        while self._queue and self._active < self.spec.max_active_queries:
            if self._backpressured():
                self._schedule_backpressure_poll()
                return
            self._dispatch(self._pick_next())

    def _pick_next(self) -> QueryJob:
        """Remove and return the next job to run under the policy.

        * ``fifo`` — strict arrival order across all tenants.
        * ``fair`` — among tenants with queued work, pick the one with the
          fewest running queries, breaking ties by least service received
          (simulated execution seconds, then completed count), then by
          arrival order.  Within a tenant, arrival order.
        """
        if self.spec.policy == "fifo":
            return self._queue.pop(0)
        head: Dict[str, QueryJob] = {}
        for job in self._queue:  # arrival order, so first seen = tenant head
            if job.tenant not in head:
                head[job.tenant] = job
        best: Optional[QueryJob] = None
        best_key = None
        for tenant, job in head.items():
            state = self.admission.tenant(tenant)
            key = (
                state.running,
                state.served_seconds,
                state.completed,
                job.arrival_seq,
            )
            if best_key is None or key < best_key:
                best_key, best = key, job
        assert best is not None  # _pump only calls with a non-empty queue
        self._queue.remove(best)
        return best

    def _schedule_backpressure_poll(self) -> None:
        if self._poll_scheduled:
            return
        self._poll_scheduled = True

        def poll():
            yield self.sim.timeout(self.spec.backpressure_poll_s)
            self._poll_scheduled = False
            self._pump()

        self.sim.process(poll(), name="backpressure-poll")

    def _dispatch(self, job: QueryJob) -> None:
        job.status = JobStatus.RUNNING
        job.dispatched = self.sim.now
        self.admission.record_dispatch(job)  # simtsan: ignore[admission.record_dispatch]
        self._active += 1
        if job.queue_span is not None:
            self.cluster.tracer.end(job.queue_span)
        self.sim.process(self._execute(job), name=f"query-{job.query_id}")

    def _execute(self, job: QueryJob):
        session = Session(catalog=self._catalog_for(job.config), schema=job.schema)
        tracer = self.cluster.tracer
        try:
            result = yield self.sim.process(
                self.coordinator.query_process(
                    job.sql,
                    session,
                    metrics=MetricsRegistry(),
                    parent=job.span,
                    query_id=job.query_id,
                    tenant=job.tenant,
                ),
                name=f"run-{job.query_id}",
            )
        except Exception as exc:  # noqa: BLE001 - preserved on the handle
            job.status = JobStatus.FAILED
            job.error = exc
            code = getattr(exc, "code", None)
            job.span.record_error(str(code) if code is not None else "INTERNAL")
        else:
            job.status = JobStatus.SUCCEEDED
            job.result = result
        job.finished = self.sim.now
        job.span.set("status", str(job.status))
        self._active -= 1
        self.admission.release(job, self.sim.now)  # simtsan: ignore[admission.release]
        tracer.end(job.span)
        job.completion.succeed(None)
        self._pump()

    def _catalog_for(self, config: RunConfig) -> str:
        """Bind (and cache) a connector for ``config`` on the shared cluster.

        Each distinct per-query config becomes its own catalog entry on
        the one coordinator, so mixed workloads (e.g. full pushdown next
        to filter-only) coexist on the same simulated hardware.
        """
        key = _config_key(config)
        name = self._catalogs.get(key)
        if name is None:
            name = (
                self.catalog
                if not self._catalogs
                else f"{self.catalog}-{len(self._catalogs)}"
            )
            connector = self.environment.build_connector(self.cluster, config)
            self.coordinator.catalogs[name] = connector
            self._catalogs[key] = name
        return name

    # -- driving ---------------------------------------------------------------

    def _run_sanitized(self, until) -> None:
        """Advance the kernel with this service's SimTSan installed.

        Install/uninstall brackets every advance so the process-wide
        sanitizer handle never leaks into some other cluster's run; the
        tracker itself persists, so causality spans multiple drains.
        """
        sanitizer = self.sanitizer
        if sanitizer is None:
            self.sim.run(until)
            return
        sanitizer.install()
        try:
            self.sim.run(until)
        finally:
            sanitizer.uninstall()

    def wait_for(self, job: QueryJob) -> None:
        """Advance simulated time until ``job`` reaches a terminal state."""
        if not job.completion.processed:
            self._run_sanitized(job.completion)

    def drain(self) -> "QueryService":
        """Run the simulation until every submitted query is terminal.

        Under SimTSan, any same-instant race collected during the run
        surfaces here as :class:`~repro.errors.SanitizerError`.
        """
        self._run_sanitized(None)
        stuck = [job.query_id for job in self.jobs if not job.terminal]
        if stuck:
            raise ServiceError(
                f"event queue drained with non-terminal queries: {stuck}"
            )
        if self.sanitizer is not None:
            self.sanitizer.raise_if_races()
        return self

    # -- reporting -------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def active_queries(self) -> int:
        return self._active

    def report(self):
        """SLO report over everything submitted so far (drains first)."""
        from repro.service.slo import build_report

        self.drain()
        return build_report(self)


def _config_key(config: RunConfig) -> tuple:
    """Deterministic, hash-stable identity of a connector-level config.

    ``repr`` would be unstable across processes (frozenset ordering under
    hash randomization), so the key is built from sorted scalars.  The
    cosmetic ``label`` is excluded: configs differing only in label share
    a connector.
    """
    policy = config.policy
    policy_key = None
    if policy is not None:
        policy_key = (
            tuple(sorted(policy.enabled)),
            policy.use_statistics,
            policy.filter_selectivity_threshold,
            policy.aggregation_selectivity_threshold,
            policy.distribution,
        )
    retry = config.retry
    retry_key = None
    if retry is not None:
        retry_key = tuple(
            sorted((f, repr(getattr(retry, f))) for f in retry.__dataclass_fields__)
        )
    return (
        config.mode,
        config.split_granularity,
        config.prune_columns,
        config.strict_verify,
        policy_key,
        retry_key,
        config.cache.key() if config.cache is not None else None,
    )
