"""Job records and the public query handle of the multi-tenant service.

A :class:`QueryJob` is the service's mutable record of one submitted
query as it moves through its lifecycle::

    pending -> queued -> running -> succeeded | failed
            \\-> rejected             (admission refused it)
             \\-> timed-out           (queue wait exceeded the bound)

A :class:`QueryHandle` is the caller-facing view: ``status()`` inspects
the lifecycle, ``result()`` drives the simulation until the query
reaches a terminal state and returns (or raises) its outcome — the
async-submission shape ``Client.execute`` hides.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.engine.coordinator import QueryResult
from repro.errors import ServiceError
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import QueryService

__all__ = ["JobStatus", "QueryJob", "QueryHandle", "TERMINAL_STATUSES"]


class JobStatus(enum.StrEnum):
    """Lifecycle states of a submitted query."""

    #: Submitted with a future arrival time; not yet at the service.
    PENDING = "pending"
    #: Admitted and waiting in the bounded run queue.
    QUEUED = "queued"
    #: Dispatched; splits are executing on the shared cluster.
    RUNNING = "running"
    #: Finished with a result.
    SUCCEEDED = "succeeded"
    #: Execution raised (the error is preserved on the handle).
    FAILED = "failed"
    #: Admission control refused the query (typed AdmissionError).
    REJECTED = "rejected"
    #: Waited in the queue longer than ``ServiceSpec.queue_timeout_s``.
    TIMED_OUT = "timed-out"


TERMINAL_STATUSES = frozenset(
    {JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.REJECTED, JobStatus.TIMED_OUT}
)


class QueryJob:
    """One submission's mutable state inside the service."""

    __slots__ = (
        "query_id", "arrival_seq", "tenant", "sql", "schema", "label",
        "config", "memory_bytes", "status", "error", "result",
        "submitted", "dispatched", "finished", "completion",
        "span", "queue_span",
    )

    def __init__(
        self,
        *,
        query_id: str,
        arrival_seq: int,
        tenant: str,
        sql: str,
        schema: str,
        label: str,
        config,
        memory_bytes: int,
        completion: Event,
    ) -> None:
        self.query_id = query_id
        self.arrival_seq = arrival_seq
        self.tenant = tenant
        self.sql = sql
        self.schema = schema
        self.label = label
        self.config = config
        self.memory_bytes = memory_bytes
        self.status = JobStatus.PENDING
        self.error: Optional[BaseException] = None
        self.result: Optional[QueryResult] = None
        #: Simulated instants of the three lifecycle edges (None until hit).
        self.submitted: Optional[float] = None
        self.dispatched: Optional[float] = None
        self.finished: Optional[float] = None
        #: Fires when the job reaches any terminal state.
        self.completion = completion
        self.span = None
        self.queue_span = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def queue_wait_seconds(self) -> float:
        """Admission to dispatch (or to terminal, for jobs never run)."""
        if self.submitted is None:
            return 0.0
        if self.dispatched is not None:
            return self.dispatched - self.submitted
        if self.finished is not None:
            return self.finished - self.submitted
        return 0.0

    @property
    def latency_seconds(self) -> float:
        """Submission to completion, queue wait included."""
        if self.submitted is None or self.finished is None:
            return 0.0
        return self.finished - self.submitted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QueryJob {self.query_id} {self.tenant} {self.status}>"


class QueryHandle:
    """Caller-facing view of one submitted query.

    Returned by ``QueryService.submit`` and ``Client.submit``.  The
    handle never blocks a real thread: ``result()`` advances the
    *simulated* clock until the query completes, which also makes
    progress on every other in-flight query sharing the cluster.
    """

    def __init__(self, service: "QueryService", job: QueryJob) -> None:
        self._service = service
        self._job = job

    # -- identity --------------------------------------------------------------

    @property
    def query_id(self) -> str:
        return self._job.query_id

    @property
    def tenant(self) -> str:
        return self._job.tenant

    @property
    def label(self) -> str:
        return self._job.label

    # -- lifecycle -------------------------------------------------------------

    def status(self) -> str:
        """Current lifecycle state as a stable string."""
        return str(self._job.status)

    @property
    def done(self) -> bool:
        return self._job.terminal

    def exception(self) -> Optional[BaseException]:
        """The terminal error, or None (not done yet, or succeeded)."""
        return self._job.error

    def completion_event(self) -> Event:
        """The sim event that fires at the terminal transition.

        For in-simulation waiters: a closed-loop load generator yields
        this event to model a client that submits its next query only
        after the previous one finished.
        """
        return self._job.completion

    def result(self) -> QueryResult:
        """Drive the simulation to this query's completion; return/raise.

        Raises the typed :class:`~repro.errors.AdmissionError` for
        rejected or queue-timed-out submissions, or the original
        execution error for failed ones.
        """
        job = self._job
        if not job.terminal:
            self._service.wait_for(job)
        if job.error is not None:
            raise job.error
        if job.result is None:
            raise ServiceError(
                f"query {job.query_id} ended {job.status} without a result"
            )
        return job.result

    # -- measurements ----------------------------------------------------------

    @property
    def queue_wait_seconds(self) -> float:
        return self._job.queue_wait_seconds

    @property
    def latency_seconds(self) -> float:
        return self._job.latency_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<QueryHandle {self.query_id} {self.status()}>"
