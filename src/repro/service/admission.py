"""Admission control: bounded queue, per-tenant quotas, memory budgets.

The controller is the service's gatekeeper.  Every submission is checked
at its arrival instant against three limits from
:class:`~repro.config.ServiceSpec`:

* the service-wide **run queue bound** (``max_queue_depth``),
* the tenant's **in-flight cap** (``per_tenant_max_inflight``, counting
  queued + running queries), and
* the tenant's **memory budget** (``per_tenant_memory_bytes``, summed
  over the declared/estimated memory of the tenant's admitted queries).

A violated limit produces a typed :class:`~repro.errors.AdmissionError`
subclass — the caller sees a stable ``code`` (``ADMISSION_QUEUE_FULL``,
``ADMISSION_TENANT_LIMIT``, ``ADMISSION_MEMORY_BUDGET``), never a parsed
message.  The controller also keeps the per-tenant ledgers (running
counts, service received, first/last activity) that the fair-share
scheduler and the SLO reporter read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import ServiceSpec
from repro.errors import (
    AdmissionError,
    MemoryBudgetError,
    QueueFullError,
    TenantLimitError,
)
from repro.service.jobs import JobStatus, QueryJob
from repro.sim import santrack

__all__ = ["TenantState", "AdmissionController"]


@dataclass
class TenantState:
    """Per-tenant ledger: admission counters + scheduler inputs."""

    name: str
    #: Queued + running queries (what the in-flight cap bounds).
    inflight: int = 0
    #: Currently executing queries (fair-share load signal).
    running: int = 0
    #: Sum of memory estimates over admitted (queued + running) queries.
    memory_admitted: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timed_out: int = 0
    #: Simulated execution seconds served to completed queries
    #: (fair-share "service received" signal).
    served_seconds: float = 0.0
    first_submit: Optional[float] = None
    last_finish: Optional[float] = None
    rejections_by_code: Dict[str, int] = field(default_factory=dict)
    #: Cache-quota ledger (fed by :meth:`AdmissionController.record_cache`
    #: through the cache manager's accountant seam).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_fills: int = 0
    cache_stale_drops: int = 0
    cache_quota_refusals: int = 0
    cache_bytes_served: int = 0
    cache_bytes_filled: int = 0


class AdmissionController:
    """Stateless checks + stateful per-tenant ledgers."""

    def __init__(self, spec: ServiceSpec) -> None:
        self.spec = spec
        self._tenants: Dict[str, TenantState] = {}

    def _track(self, kind: str, tenant: str, site: str) -> None:
        """SimTSan hook, keyed per tenant ledger.  Ledger transitions are
        commutative updates (counter adds/subtracts); :meth:`check` is a
        read, so a same-instant check racing another actor's admit or
        release — the check-then-act admission hazard — is flagged."""
        sanitizer = santrack.active()
        if sanitizer is None:
            return
        key = ("tenant", id(self), tenant)
        if kind == "u":
            sanitizer.record_update(key, site, depth=1)
        else:
            sanitizer.record_read(key, site, depth=1)

    # -- ledgers ---------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(name=name)
            self._tenants[name] = state
        return state

    def tenants(self) -> Dict[str, TenantState]:
        return dict(self._tenants)

    # -- the admission decision ------------------------------------------------

    def check(self, job: QueryJob, queue_depth: int) -> Optional[AdmissionError]:
        """The error admitting ``job`` would violate, or None to admit.

        Pure decision — ledgers are only touched by :meth:`admit` /
        :meth:`release`, so a rejection leaves no residue.
        """
        self._track("r", job.tenant, "admission.check")
        spec = self.spec
        if queue_depth >= spec.max_queue_depth:
            return QueueFullError(
                f"run queue full ({queue_depth}/{spec.max_queue_depth}); "
                f"rejecting {job.query_id} from tenant {job.tenant!r}"
            )
        state = self.tenant(job.tenant)
        if (
            spec.per_tenant_max_inflight is not None
            and state.inflight >= spec.per_tenant_max_inflight
        ):
            return TenantLimitError(
                f"tenant {job.tenant!r} already has {state.inflight} queries "
                f"in flight (limit {spec.per_tenant_max_inflight})"
            )
        if spec.per_tenant_memory_bytes is not None:
            projected = state.memory_admitted + job.memory_bytes
            if projected > spec.per_tenant_memory_bytes:
                return MemoryBudgetError(
                    f"admitting {job.query_id} would put tenant {job.tenant!r} "
                    f"at {projected} admitted bytes "
                    f"(budget {spec.per_tenant_memory_bytes})"
                )
        return None

    # -- ledger transitions ----------------------------------------------------

    def record_submit(self, job: QueryJob, now: float) -> None:
        self._track("u", job.tenant, "admission.record_submit")
        state = self.tenant(job.tenant)
        state.submitted += 1
        if state.first_submit is None:
            state.first_submit = now

    def admit(self, job: QueryJob) -> None:
        self._track("u", job.tenant, "admission.admit")
        state = self.tenant(job.tenant)
        state.inflight += 1
        state.memory_admitted += job.memory_bytes

    def record_reject(self, job: QueryJob, error: AdmissionError) -> None:
        self._track("u", job.tenant, "admission.record_reject")
        state = self.tenant(job.tenant)
        state.rejected += 1
        code = str(error.code)
        state.rejections_by_code[code] = state.rejections_by_code.get(code, 0) + 1

    def record_cache(self, event: str, tenant: str, nbytes: int) -> None:
        """Cache-quota accounting (the cache manager's accountant seam).

        ``event`` is one of hit/miss/fill/stale/quota; bytes accumulate
        for hits (served) and fills so the SLO report can show how much
        of a tenant's traffic the cache absorbed.
        """
        self._track("u", tenant, "admission.record_cache")
        state = self.tenant(tenant)
        if event == "hit":
            state.cache_hits += 1
            state.cache_bytes_served += nbytes
        elif event == "miss":
            state.cache_misses += 1
        elif event == "fill":
            state.cache_fills += 1
            state.cache_bytes_filled += nbytes
        elif event == "stale":
            state.cache_stale_drops += 1
        elif event == "quota":
            state.cache_quota_refusals += 1

    def record_dispatch(self, job: QueryJob) -> None:
        self._track("u", job.tenant, "admission.record_dispatch")
        self.tenant(job.tenant).running += 1

    def release(self, job: QueryJob, now: float) -> None:
        """Return the job's admission holdings at its terminal transition."""
        self._track("u", job.tenant, "admission.release")
        state = self.tenant(job.tenant)
        state.inflight -= 1
        state.memory_admitted -= job.memory_bytes
        state.last_finish = now
        if job.status is JobStatus.SUCCEEDED:
            state.running -= 1
            state.completed += 1
            if job.result is not None:
                state.served_seconds += job.result.execution_seconds
        elif job.status is JobStatus.FAILED:
            state.running -= 1
            state.failed += 1
        elif job.status is JobStatus.TIMED_OUT:
            state.timed_out += 1
