"""SLO reporting: latency percentiles, queue-wait breakdown, fairness.

Turns a drained :class:`~repro.service.service.QueryService` into the
numbers an operator would put on a dashboard: per-tenant p50/p95/p99
latency, the queue-wait vs execution split of that latency, admission
outcomes by error code, throughput over each tenant's active window, and
the scan-driver seconds each tenant consumed on the shared cluster (the
fairness signal).

Everything is derived from simulated timestamps and per-owner resource
ledgers, so the report — including :meth:`SLOReport.digest` — is
bit-identical across replays of the same seeded workload.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.analysis.determinism import canonical_result_digest
from repro.bench.report import format_table
from repro.service.jobs import JobStatus, QueryJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import QueryService

__all__ = ["percentile", "QueryStat", "TenantSLO", "SLOReport", "build_report"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


@dataclass(frozen=True, kw_only=True)
class QueryStat:
    """One submission's outcome, flattened for reporting."""

    query_id: str
    tenant: str
    label: str
    status: str
    latency_s: float
    queue_wait_s: float
    execution_s: float
    rows: int
    error_code: Optional[str] = None
    result_digest: Optional[str] = None


@dataclass(frozen=True, kw_only=True)
class TenantSLO:
    """One tenant's service-level numbers over the run."""

    tenant: str
    submitted: int
    completed: int
    failed: int
    rejected: int
    timed_out: int
    rejections_by_code: Dict[str, int] = field(default_factory=dict)
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    mean_queue_wait_s: float = 0.0
    mean_execution_s: float = 0.0
    #: Completed queries per simulated second of the tenant's active
    #: window (first submission to last completion).
    throughput_qps: float = 0.0
    #: Scan-driver slot seconds this tenant consumed on the shared
    #: cluster — the fairness signal the scheduler balances.
    scan_driver_seconds: float = 0.0


@dataclass(frozen=True, kw_only=True)
class SLOReport:
    """The full report: per-query rows, per-tenant SLOs, overall numbers."""

    queries: List[QueryStat]
    tenants: List[TenantSLO]
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_queue_wait_s: float
    mean_execution_s: float
    #: First submission to last completion across all tenants.
    makespan_s: float
    completed: int
    rejected: int
    timed_out: int
    failed: int

    def tenant(self, name: str) -> TenantSLO:
        for slo in self.tenants:
            if slo.tenant == name:
                return slo
        raise KeyError(name)

    def digest(self) -> str:
        """Deterministic digest of outcomes, timings, and result values.

        Two replays of one seeded workload must produce identical
        digests; submission order does not matter (rows are sorted), but
        any status, timing, or result-value difference registers.
        """
        digest = hashlib.sha256(b"repro.service.slo")
        lines = sorted(
            "|".join(
                (
                    stat.tenant,
                    stat.label,
                    stat.status,
                    float(stat.latency_s).hex(),
                    float(stat.queue_wait_s).hex(),
                    float(stat.execution_s).hex(),
                    stat.error_code or "",
                    stat.result_digest or "",
                )
            )
            for stat in self.queries
        )
        for line in lines:
            digest.update(line.encode())
        return digest.hexdigest()

    def format(self) -> str:
        """Dashboard-style plain-text rendering."""
        lines = [
            f"queries: {len(self.queries)}   completed: {self.completed}   "
            f"rejected: {self.rejected}   timed-out: {self.timed_out}   "
            f"failed: {self.failed}",
            f"makespan: {self.makespan_s * 1e3:.3f} ms   "
            f"latency p50/p95/p99: {self.p50_latency_s * 1e3:.3f} / "
            f"{self.p95_latency_s * 1e3:.3f} / {self.p99_latency_s * 1e3:.3f} ms",
            f"mean latency split: queue wait {self.mean_queue_wait_s * 1e3:.3f} ms"
            f" + execution {self.mean_execution_s * 1e3:.3f} ms",
            "",
            format_table(
                [
                    "tenant", "submitted", "done", "rejected", "timed-out",
                    "p50 ms", "p95 ms", "p99 ms", "queue ms", "exec ms",
                    "qps", "driver s",
                ],
                [
                    [
                        slo.tenant,
                        slo.submitted,
                        slo.completed,
                        slo.rejected,
                        slo.timed_out,
                        f"{slo.p50_latency_s * 1e3:.3f}",
                        f"{slo.p95_latency_s * 1e3:.3f}",
                        f"{slo.p99_latency_s * 1e3:.3f}",
                        f"{slo.mean_queue_wait_s * 1e3:.3f}",
                        f"{slo.mean_execution_s * 1e3:.3f}",
                        f"{slo.throughput_qps:.3f}",
                        f"{slo.scan_driver_seconds:.6f}",
                    ]
                    for slo in self.tenants
                ],
            ),
        ]
        rejection_codes: Dict[str, int] = {}
        for slo in self.tenants:
            for code, count in slo.rejections_by_code.items():
                rejection_codes[code] = rejection_codes.get(code, 0) + count
        if rejection_codes:
            lines.append("")
            lines.append("admission rejections by code:")
            for code in sorted(rejection_codes):
                lines.append(f"  {code:<28} {rejection_codes[code]}")
        return "\n".join(lines)


def _execution_seconds(job: QueryJob) -> float:
    if job.dispatched is None or job.finished is None:
        return 0.0
    return job.finished - job.dispatched


def _query_stat(job: QueryJob) -> QueryStat:
    error_code = getattr(job.error, "code", None)
    return QueryStat(
        query_id=job.query_id,
        tenant=job.tenant,
        label=job.label,
        status=str(job.status),
        latency_s=job.latency_seconds,
        queue_wait_s=job.queue_wait_seconds,
        execution_s=_execution_seconds(job),
        rows=job.result.rows if job.result is not None else 0,
        error_code=str(error_code) if error_code is not None else None,
        result_digest=(
            canonical_result_digest(job.result.batch)
            if job.result is not None
            else None
        ),
    )


def build_report(service: "QueryService") -> SLOReport:
    """Assemble the SLO report from a drained service's job records."""
    stats = [_query_stat(job) for job in service.jobs]
    drivers = service.cluster.scan_drivers

    tenants: List[TenantSLO] = []
    for name in sorted(service.admission.tenants()):
        state = service.admission.tenant(name)
        jobs = [job for job in service.jobs if job.tenant == name]
        done = [j for j in jobs if j.status is JobStatus.SUCCEEDED]
        latencies = [j.latency_seconds for j in done]
        window = 0.0
        if state.first_submit is not None and state.last_finish is not None:
            window = state.last_finish - state.first_submit
        tenants.append(
            TenantSLO(
                tenant=name,
                submitted=state.submitted,
                completed=state.completed,
                failed=state.failed,
                rejected=state.rejected,
                timed_out=state.timed_out,
                rejections_by_code=dict(state.rejections_by_code),
                p50_latency_s=percentile(latencies, 50),
                p95_latency_s=percentile(latencies, 95),
                p99_latency_s=percentile(latencies, 99),
                mean_queue_wait_s=(
                    sum(j.queue_wait_seconds for j in done) / len(done)
                    if done else 0.0
                ),
                mean_execution_s=(
                    sum(_execution_seconds(j) for j in done) / len(done)
                    if done else 0.0
                ),
                throughput_qps=(len(done) / window if window > 0 else 0.0),
                scan_driver_seconds=sum(
                    drivers.busy_seconds(j.query_id) for j in jobs
                ),
            )
        )

    done_stats = [s for s in stats if s.status == str(JobStatus.SUCCEEDED)]
    latencies = [s.latency_s for s in done_stats]
    submits = [job.submitted for job in service.jobs if job.submitted is not None]
    finishes = [job.finished for job in service.jobs if job.finished is not None]
    makespan = (max(finishes) - min(submits)) if submits and finishes else 0.0
    return SLOReport(
        queries=stats,
        tenants=tenants,
        p50_latency_s=percentile(latencies, 50),
        p95_latency_s=percentile(latencies, 95),
        p99_latency_s=percentile(latencies, 99),
        mean_queue_wait_s=(
            sum(s.queue_wait_s for s in done_stats) / len(done_stats)
            if done_stats else 0.0
        ),
        mean_execution_s=(
            sum(s.execution_s for s in done_stats) / len(done_stats)
            if done_stats else 0.0
        ),
        makespan_s=makespan,
        completed=sum(1 for s in stats if s.status == str(JobStatus.SUCCEEDED)),
        rejected=sum(1 for s in stats if s.status == str(JobStatus.REJECTED)),
        timed_out=sum(1 for s in stats if s.status == str(JobStatus.TIMED_OUT)),
        failed=sum(1 for s in stats if s.status == str(JobStatus.FAILED)),
    )
