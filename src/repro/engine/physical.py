"""Physical planning: fragment the logical plan into split/final pipelines.

Presto fragments plans into stages; our plans are linear, so fragmentation
reduces to deciding, bottom-up from the scan, which operators run inside
each split driver and which run once in the merge (final) stage:

* Filter / Project run split-local until a merge barrier is crossed.
* Aggregation(single) splits into partial-per-split + final merge
  (two-phase), except when a DISTINCT aggregate forces single-phase at
  the merge stage.
* Aggregation(final) — produced by the Presto-OCS connector when it
  pushes partial aggregation into storage — runs at the merge stage.
* TopN runs per split (keeps at most N rows each) *and* again at merge.
* Sort runs only at merge; Limit runs per split and again at merge.
* Output becomes a column-selecting projection at merge.

Operator instances are stateful, so the fragments are *factories*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.arrowsim.schema import Schema
from repro.errors import PlanError
from repro.exec.expressions import ColumnExpr
from repro.exec.operators import (
    FilterOperator,
    HashAggregationOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    SortOperator,
    TopNOperator,
)
from repro.plan.nodes import (
    AggregationNode,
    FilterNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    TableScanNode,
    TopNNode,
)

__all__ = ["PhysicalPlan", "fragment_plan"]


@dataclass
class PhysicalPlan:
    """Executable fragments plus the scan they hang off.

    ``split_schema`` is the schema of the batches crossing the
    split/merge boundary (what each split driver emits); ``agg_schema``
    is the schema right after the *last* merge-stage aggregation, or
    ``None`` when the merge stage has no aggregation.  The stage-graph
    lowering uses both to type the edges between scan, aggregate, and
    merge stages.
    """

    scan: TableScanNode
    split_operators: Callable[[], List[Operator]]
    final_operators: Callable[[], List[Operator]]
    output_names: List[str]
    split_schema: Schema
    agg_schema: Optional[Schema] = None


def _linearize(plan: PlanNode) -> List[PlanNode]:
    """Bottom-up chain [scan, ..., root]; rejects non-linear plans."""
    chain: List[PlanNode] = []
    node: PlanNode = plan
    while True:
        chain.append(node)
        children = node.children()
        if not children:
            break
        if len(children) != 1:
            raise PlanError(f"{node.name} has {len(children)} children; plans must be linear")
        node = children[0]
    chain.reverse()
    if not isinstance(chain[0], TableScanNode):
        raise PlanError("plan does not bottom out in a table scan")
    return chain


def fragment_plan(plan: PlanNode) -> PhysicalPlan:
    """Split the logical plan into per-split and merge-stage fragments."""
    chain = _linearize(plan)
    scan = chain[0]
    assert isinstance(scan, TableScanNode)

    # Build *descriptions* first; factories instantiate fresh operators.
    split_builders: List[Callable[[], Operator]] = []
    final_builders: List[Callable[[], Operator]] = []
    merged = False
    output_names: List[str] = []
    split_schema = scan.output_schema()
    agg_schema: Optional[Schema] = None

    for node in chain[1:]:
        if isinstance(node, FilterNode):
            predicate = node.predicate
            builder = lambda predicate=predicate: FilterOperator(predicate)
            if merged:
                final_builders.append(builder)
            else:
                split_builders.append(builder)
                split_schema = node.output_schema()
        elif isinstance(node, ProjectNode):
            projections = list(node.projections)
            builder = lambda projections=projections: ProjectOperator(projections)
            if merged:
                final_builders.append(builder)
            else:
                split_builders.append(builder)
                split_schema = node.output_schema()
        elif isinstance(node, AggregationNode):
            keys, specs = list(node.key_names), list(node.specs)
            phase = "final" if node.phase == "final" else "single"
            if node.phase == "final" or merged:
                final_builders.append(
                    lambda keys=keys, specs=specs, phase=phase: HashAggregationOperator(
                        keys, specs, phase=phase
                    )
                )
            elif any(s.distinct for s in specs):
                # DISTINCT aggregates cannot be merged from partials.
                final_builders.append(
                    lambda keys=keys, specs=specs: HashAggregationOperator(
                        keys, specs, phase="single"
                    )
                )
            else:
                split_builders.append(
                    lambda keys=keys, specs=specs: HashAggregationOperator(
                        keys, specs, phase="partial"
                    )
                )
                final_builders.append(
                    lambda keys=keys, specs=specs: HashAggregationOperator(
                        keys, specs, phase="final"
                    )
                )
                split_schema = replace(node, phase="partial").output_schema()
            merged = True
            agg_schema = node.output_schema()
        elif isinstance(node, TopNNode):
            count, sort_keys = node.count, list(node.sort_keys)
            if not merged:
                split_builders.append(
                    lambda count=count, sort_keys=sort_keys: TopNOperator(count, sort_keys)
                )
            final_builders.append(
                lambda count=count, sort_keys=sort_keys: TopNOperator(count, sort_keys)
            )
            merged = True
        elif isinstance(node, SortNode):
            sort_keys = list(node.sort_keys)
            final_builders.append(
                lambda sort_keys=sort_keys: SortOperator(sort_keys)
            )
            merged = True
        elif isinstance(node, LimitNode):
            count = node.count
            if not merged:
                split_builders.append(lambda count=count: LimitOperator(count))
            final_builders.append(lambda count=count: LimitOperator(count))
        elif isinstance(node, OutputNode):
            schema = node.source.output_schema()
            names = list(node.column_names)
            output_names = names
            projections = [
                (name, ColumnExpr(name, schema.field(name).dtype)) for name in names
            ]
            final_builders.append(
                lambda projections=projections: ProjectOperator(projections)
            )
        else:
            raise PlanError(f"cannot fragment node {type(node).__name__}")

    if not output_names:
        output_names = plan.output_schema().names()

    return PhysicalPlan(
        scan=scan,
        split_operators=lambda: [b() for b in split_builders],
        final_operators=lambda: [b() for b in final_builders],
        output_names=output_names,
        split_schema=split_schema,
        agg_schema=agg_schema,
    )
