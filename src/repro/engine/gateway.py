"""S3-class gateway: the conventional object-storage access path.

Serves the two baseline data paths of the evaluation:

* **raw ranged GETs** (``s3.get_tail`` / ``s3.get_ranges``) — the
  no-pushdown path: the compute node fetches Parcel footers and column
  chunks and does all decoding/filtering itself;
* **``s3.select``** — the S3-Select-class filter+projection pushdown,
  returning row-oriented CSV.

The gateway runs on the OCS frontend node (one storage endpoint, as in
the paper's testbed) and routes each object to the storage node that
hosts it; that node pays disk and CPU for the request.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.compress.codec import decode_varint, encode_varint
from repro.exec.expressions import Expr
from repro.objectstore.s3select import S3SelectRequest, S3SelectService
from repro.objectstore.store import ObjectStore
from repro.rpc.channel import RpcService
from repro.sim.costmodel import CostParams
from repro.sim.kernel import Simulator
from repro.sim.network import Link
from repro.sim.node import SimNode
from repro.substrait.convert import expression_to_substrait, substrait_to_expression
from repro.substrait.functions import FunctionRegistry
from repro.substrait.serde import decode_expression, encode_expression
from repro.trace import NOOP_TRACER, SpanContext, Tracer

__all__ = ["S3Gateway", "place_key", "SelectReply"]

#: CPU cycles the storage node spends handling one GET request.
_GET_REQUEST_CYCLES = 500_000.0


def place_key(key: str, node_count: int) -> int:
    """Deterministic object placement: key -> storage node index."""
    return zlib.crc32(key.encode("utf-8")) % node_count


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += encode_varint(len(data))
    out += data


def _read_str(buf: bytes, pos: int) -> Tuple[str, int]:
    length, pos = decode_varint(buf, pos)
    return buf[pos : pos + length].decode("utf-8"), pos + length


# -- request/reply codecs -----------------------------------------------------


def encode_tail_request(bucket: str, key: str, nbytes: int) -> bytes:
    out = bytearray()
    _write_str(out, bucket)
    _write_str(out, key)
    out += encode_varint(nbytes)
    return bytes(out)


def encode_ranges_request(bucket: str, key: str, ranges: Sequence[Tuple[int, int]]) -> bytes:
    out = bytearray()
    _write_str(out, bucket)
    _write_str(out, key)
    out += encode_varint(len(ranges))
    for start, length in ranges:
        out += encode_varint(start)
        out += encode_varint(length)
    return bytes(out)


def encode_select_request(
    bucket: str,
    key: str,
    columns: Sequence[str],
    table_columns: Sequence[str],
    predicate: Optional[Expr],
) -> bytes:
    """Select request; the predicate travels as a Substrait expression."""
    out = bytearray()
    _write_str(out, bucket)
    _write_str(out, key)
    out += encode_varint(len(columns))
    for name in columns:
        _write_str(out, name)
    out += encode_varint(len(table_columns))
    for name in table_columns:
        _write_str(out, name)
    if predicate is None:
        out.append(0)
        return bytes(out)
    out.append(1)
    registry = FunctionRegistry()
    sexpr = expression_to_substrait(predicate, list(table_columns), registry)
    declarations = registry.declarations()
    out += encode_varint(len(declarations))
    for anchor, sig in declarations:
        out += encode_varint(anchor)
        _write_str(out, sig)
    payload = encode_expression(sexpr)
    out += encode_varint(len(payload))
    out += payload
    return bytes(out)


@dataclass
class SelectReply:
    """CSV payload + scan accounting from one s3.select call."""

    csv_payload: bytes
    rows_scanned: int
    rows_returned: int
    stored_bytes_scanned: int
    uncompressed_bytes_scanned: int


def encode_select_reply(reply: SelectReply) -> bytes:
    out = bytearray()
    out += encode_varint(len(reply.csv_payload))
    out += reply.csv_payload
    for value in (
        reply.rows_scanned,
        reply.rows_returned,
        reply.stored_bytes_scanned,
        reply.uncompressed_bytes_scanned,
    ):
        out += encode_varint(value)
    return bytes(out)


def decode_select_reply(buf: bytes) -> SelectReply:
    length, pos = decode_varint(buf, 0)
    payload = buf[pos : pos + length]
    pos += length
    values = []
    for _ in range(4):
        value, pos = decode_varint(buf, pos)
        values.append(value)
    return SelectReply(payload, *values)


# -- the gateway --------------------------------------------------------------


class S3Gateway:
    """Conventional object-store endpoint on the frontend node."""

    GET_TAIL = "s3.get_tail"
    GET_RANGES = "s3.get_ranges"
    SELECT = "s3.select"

    def __init__(
        self,
        sim: Simulator,
        frontend: SimNode,
        storage: Sequence[SimNode],
        links: Sequence[Link],
        store: ObjectStore,
        costs: CostParams,
        strict_types: bool = True,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self.sim = sim
        self.frontend = frontend
        self.storage = list(storage)
        self.links = list(links)
        self.store = store
        self.costs = costs
        self.tracer = tracer
        self.select_service = S3SelectService(store, strict_types=strict_types)
        self.service = RpcService(sim, frontend, "s3-gateway", costs, tracer=tracer)
        self.service.register(self.GET_TAIL, self._handle_get_tail)
        self.service.register(self.GET_RANGES, self._handle_get_ranges)
        self.service.register(self.SELECT, self._handle_select)

    def _route(self, key: str) -> Tuple[SimNode, Link]:
        index = place_key(key, len(self.storage))
        return self.storage[index], self.links[index]

    # -- handlers ------------------------------------------------------------

    def _handle_get_tail(self, payload: bytes, trace: Optional[SpanContext] = None):
        bucket, pos = _read_str(payload, 0)
        key, pos = _read_str(payload, pos)
        nbytes, pos = decode_varint(payload, pos)
        data = self.store.get_object(bucket, key)
        nbytes = min(nbytes, len(data))
        response = data[len(data) - nbytes :]
        node, link = self._route(key)
        span = self.tracer.start(
            "s3.storage:get_tail",
            parent=trace,
            attributes={"node": node.name, "bytes": len(response)},
        )
        try:
            yield link.transfer(self.frontend.name, node.name, len(payload), label="get-req")
            yield node.read_disk(len(response), name="tail")
            yield node.execute(_GET_REQUEST_CYCLES, name="get")
            yield link.transfer(node.name, self.frontend.name, len(response), label="get-tail")
        finally:
            self.tracer.end(span)
        return response

    def _handle_get_ranges(self, payload: bytes, trace: Optional[SpanContext] = None):
        bucket, pos = _read_str(payload, 0)
        key, pos = _read_str(payload, pos)
        count, pos = decode_varint(payload, pos)
        pieces: List[bytes] = []
        for _ in range(count):
            start, pos = decode_varint(payload, pos)
            length, pos = decode_varint(payload, pos)
            pieces.append(self.store.get_object_range(bucket, key, start, length))
        response = b"".join(pieces)
        node, link = self._route(key)
        span = self.tracer.start(
            "s3.storage:get_ranges",
            parent=trace,
            attributes={"node": node.name, "bytes": len(response), "ranges": count},
        )
        try:
            yield link.transfer(self.frontend.name, node.name, len(payload), label="get-req")
            yield node.read_disk(len(response), name="ranges")
            yield node.execute(_GET_REQUEST_CYCLES, name="get")
            yield link.transfer(node.name, self.frontend.name, len(response), label="get-ranges")
        finally:
            self.tracer.end(span)
        return response

    def _handle_select(self, payload: bytes, trace: Optional[SpanContext] = None):
        bucket, pos = _read_str(payload, 0)
        key, pos = _read_str(payload, pos)
        n_columns, pos = decode_varint(payload, pos)
        columns: List[str] = []
        for _ in range(n_columns):
            name, pos = _read_str(payload, pos)
            columns.append(name)
        n_table_columns, pos = decode_varint(payload, pos)
        table_columns: List[str] = []
        for _ in range(n_table_columns):
            name, pos = _read_str(payload, pos)
            table_columns.append(name)
        predicate: Optional[Expr] = None
        if payload[pos]:
            pos += 1
            n_decls, pos = decode_varint(payload, pos)
            declarations = []
            for _ in range(n_decls):
                anchor, pos = decode_varint(payload, pos)
                sig, pos = _read_str(payload, pos)
                declarations.append((anchor, sig))
            registry = FunctionRegistry.from_declarations(declarations)
            length, pos = decode_varint(payload, pos)
            sexpr = decode_expression(payload[pos : pos + length])
            pos += length
            # Types resolve against the object's actual schema below; the
            # converter needs names + types, so peek at the footer.
            from repro.formats.reader import ParcelReader

            reader = ParcelReader(self.store.get_object(bucket, key))
            types = [reader.schema.field(n).dtype for n in table_columns]
            predicate = substrait_to_expression(sexpr, table_columns, types, registry)

        result = self.select_service.select(
            S3SelectRequest(bucket=bucket, key=key, columns=columns, predicate=predicate)
        )
        node, link = self._route(key)
        costs = self.costs
        cpu = (
            result.stored_bytes_scanned * costs.ocs_scan_cycles_per_stored_byte
            + costs.decompress_cycles(result.codec, result.uncompressed_bytes_scanned)
            + result.rows_scanned
            * len(table_columns)
            * costs.ocs_decode_cycles_per_value
            + len(result.csv_payload) * costs.csv_serialize_cycles_per_byte
        )
        if predicate is not None:
            cpu += result.rows_scanned * predicate.node_count() * costs.vector_op_cycles_per_value
        reply = encode_select_reply(
            SelectReply(
                csv_payload=result.csv_payload,
                rows_scanned=result.rows_scanned,
                rows_returned=result.rows_returned,
                stored_bytes_scanned=result.stored_bytes_scanned,
                uncompressed_bytes_scanned=result.uncompressed_bytes_scanned,
            )
        )
        span = self.tracer.start(
            "s3.storage:select",
            parent=trace,
            attributes={
                "node": node.name,
                "rows_scanned": result.rows_scanned,
                "rows_returned": result.rows_returned,
                "bytes": result.stored_bytes_scanned,
            },
        )
        try:
            yield link.transfer(self.frontend.name, node.name, len(payload), label="select-req")
            yield node.read_disk(result.stored_bytes_scanned, name="select-scan")
            yield node.execute_spread(cpu, name="select")
            yield link.transfer(node.name, self.frontend.name, len(reply), label="select-result")
        finally:
            self.tracer.end(span)
        return reply
