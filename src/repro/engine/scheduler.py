"""The DAG scheduler: runs a :class:`~repro.engine.dag.StageGraph`.

Three responsibilities, all stage-generic:

* **Dataflow scheduling** — launch every stage whose inputs have
  completed, as a DES process, and wake on the first completion
  (``AnyOf``); independent branches (the N scan stages of a join chain)
  overlap without the lowering having to say so.
* **Stage-level restart** — a stage failing with a *restartable* error
  (by default the exchange fabric's :class:`~repro.errors.
  ExchangeFaultError`) is re-run from its inputs, up to
  ``max_stage_restarts`` times, instead of failing the whole query.
  Stage bodies make this safe by construction: they instantiate all
  mutable state (operators, exchange ids) inside the generator, so a
  restart starts clean and abandoned in-flight work from the failed
  attempt cannot leak into the retry.
* **Speculative split re-execution** — :func:`run_splits` watches a
  stage's split fan-out for stragglers (a degraded storage node serving
  pushdown slowly) and, once a split's *service* time exceeds a
  threshold derived from the completed splits' service durations,
  launches a *backup* attempt for it.  Time spent queued for a scan
  driver never counts — backups run on spare capacity, bypassing the
  driver queue, so only genuinely slow service may trigger them.
  First result wins; the loser is interrupted.  Backups must be
  digest-identical to primaries (the OCS connector's backup is the raw
  GET + embedded-engine fallback, which produces byte-identical
  batches), so speculation changes latency, never results.

Determinism: all scheduling decisions depend only on simulated time and
insertion order — completions are collected by scanning the launch-order
list, the speculation threshold is frozen the first time the quorum is
reached, and a primary/backup tie at one instant is settled *after* a
kernel barrier (so the verdict — primary wins — cannot ride on the
event tie-break policy) — so two seeded runs replay identically under
either tie-break.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.engine.dag import Stage, StageContext, StageGraph
from repro.errors import ConfigError, ExchangeFaultError
from repro.sim import santrack
from repro.sim.kernel import AnyOf, Event, Process, Simulator
from repro.sim.metrics import MetricsRegistry, StageAccountant
from repro.trace.tracer import NOOP_TRACER

__all__ = ["SchedulerSpec", "DagScheduler", "run_splits"]


@dataclass(frozen=True, kw_only=True)
class SchedulerSpec:
    """Scheduling policy: restart and speculation knobs.

    Speculation is off by default: a healthy cluster then runs exactly
    one attempt per split, keeping timings and span trees identical to
    a scheduler without the feature.
    """

    #: Launch backup attempts for straggling splits.
    speculation: bool = False
    #: A split becomes a straggler when it runs longer than
    #: ``multiplier`` x the median duration of already-finished splits.
    speculation_multiplier: float = 1.5
    #: Fraction of a stage's splits that must finish before the
    #: straggler deadline is computed (no speculation before a quorum).
    speculation_quorum: float = 0.5
    #: How many times one stage may restart after a restartable fault.
    max_stage_restarts: int = 2
    #: Error types that trigger a stage restart instead of query failure.
    restartable: Tuple[Type[BaseException], ...] = (ExchangeFaultError,)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.speculation_multiplier < 1.0:
            raise ConfigError(
                f"speculation_multiplier must be >= 1, got {self.speculation_multiplier}"
            )
        if not 0.0 < self.speculation_quorum <= 1.0:
            raise ConfigError(
                f"speculation_quorum must be in (0, 1], got {self.speculation_quorum}"
            )
        if self.max_stage_restarts < 0:
            raise ConfigError(
                f"max_stage_restarts must be >= 0, got {self.max_stage_restarts}"
            )
        for exc in self.restartable:
            if not (isinstance(exc, type) and issubclass(exc, BaseException)):
                raise ConfigError(f"restartable entry {exc!r} is not an exception type")


class DagScheduler:
    """Runs one stage graph to completion on the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        graph: StageGraph,
        spec: Optional[SchedulerSpec] = None,
        *,
        tracer: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        accountant: Optional[StageAccountant] = None,
        parent: Optional[Any] = None,
        query_id: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.graph = graph
        self.spec = spec if spec is not None else SchedulerSpec()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.accountant = (
            accountant
            if accountant is not None
            else StageAccountant(sim, self.metrics.stages)
        )
        self.parent = parent
        self.query_id = query_id

    def run(self) -> Generator[Event, Any, Dict[str, Any]]:
        """DES generator: run every stage; returns {stage_id: output}.

        A stage launches the instant its last input completes.  The
        graph is validated to be acyclic with satisfied inputs before
        anything runs (cheap Kahn pass), so a malformed graph fails
        fast instead of deadlocking the simulator.
        """
        self.graph.topological()  # raises on cycles / missing inputs
        results: Dict[str, Any] = {}
        waiting: Dict[str, Stage] = {s.stage_id: s for s in self.graph}
        running: Dict[str, Process] = {}
        launch_order: List[str] = []

        def launch_ready() -> None:
            sanitizer = santrack.active()
            ready = [
                stage
                for stage in waiting.values()
                if all(dep in results for dep in stage.inputs)
            ]
            for stage in ready:
                del waiting[stage.stage_id]
                if sanitizer is not None:
                    for dep in stage.inputs:
                        sanitizer.record_read(
                            ("dag-results", id(self), dep), "dag.read_input"
                        )
                inputs = {dep: results[dep] for dep in stage.inputs}
                running[stage.stage_id] = self.sim.process(
                    self._supervise(stage, inputs), name=f"stage:{stage.stage_id}"
                )
                launch_order.append(stage.stage_id)

        launch_ready()
        while running:
            yield AnyOf(self.sim, list(running.values()))
            # Several stages can complete at the same instant; collect
            # them all (in launch order, for determinism) before
            # launching the newly unblocked ones.  ``AnyOf`` carries a
            # happens-before edge only from the *first* completer, so
            # each additionally collected process donates its clock via
            # ``observe_completion`` — downstream stages are then
            # causally ordered after every input they consume.
            sanitizer = santrack.active()
            for stage_id in [s for s in launch_order if s in running]:
                process = running[stage_id]
                if process.triggered:
                    if sanitizer is not None:
                        sanitizer.observe_completion(process)
                        sanitizer.record_write(
                            ("dag-results", id(self), stage_id), "dag.commit"
                        )
                    results[stage_id] = process.value
                    del running[stage_id]
            launch_ready()
        return results

    def _supervise(
        self, stage: Stage, inputs: Dict[str, Any]
    ) -> Generator[Event, Any, Any]:
        """One stage's lifecycle: run, and restart on restartable faults.

        The stage span is per-attempt, attribute-tagged with the attempt
        number, so a trace of a restarted query shows both attempts.
        Spans carry no ``stage`` tag — the bodies keep the Table 3
        stage-window attribution themselves — so span-derived stage
        totals stay equal to ``stage_seconds``.
        """
        attempt = 0
        while True:
            span = self.tracer.start(
                f"stage:{stage.stage_id}",
                parent=self.parent,
                attributes={"kind": stage.kind, "attempt": attempt},
            )
            ctx = StageContext(
                sim=self.sim,
                metrics=self.metrics,
                accountant=self.accountant,
                parent=self.parent,
                span=span,
                query_id=self.query_id,
                attempt=attempt,
            )
            try:
                value = yield from stage.run(ctx, inputs)
            except self.spec.restartable:
                self.tracer.end(span)
                attempt += 1
                if attempt > self.spec.max_stage_restarts:
                    raise
                self.metrics.add("stage_restarts", 1)
                continue
            self.tracer.end(span)
            return value


def run_splits(
    ctx: StageContext,
    spec: SchedulerSpec,
    tasks: Sequence[Any],
    launch_primary: Callable[[int], Process],
    launch_backup: Callable[[int], Optional[Process]],
    *,
    service_starts: Optional[List[Optional[float]]] = None,
) -> Generator[Event, Any, List[Any]]:
    """DES generator: run a stage's split fan-out, speculating on stragglers.

    ``launch_primary(i)`` / ``launch_backup(i)`` spawn the i-th split's
    attempts as processes; ``launch_backup`` may return ``None`` when no
    alternative execution path exists (then that split simply waits for
    its primary).  Returns the per-split outputs in task order.

    First-result-wins: when both attempts of a split are in flight the
    earlier completion settles it and the other attempt is interrupted
    (its resource claims unwind via the DES ``with`` blocks).  A backup
    completion observed while the primary is still alive is *not*
    settled at the wake: whether a same-instant primary completion has
    dispatched yet depends on the kernel tie-break policy (SimTSan
    flagged exactly this write/write pair on the split result).  The
    verdict is deferred past a kernel :class:`~repro.sim.kernel.Barrier`
    — which fires only after every other event at the instant — and
    primaries that completed by then win the tie under either policy,
    keeping healthy-cluster replays byte-identical with speculation on
    or off.

    Straggler detection is *service-time* based.  ``service_starts`` is
    a shared list the split bodies stamp (``sim.now``) when they acquire
    a scan driver and actually begin work; time spent queued for a
    driver never counts toward straggling (a healthy-but-busy cluster
    must not speculate — backups bypass the driver queue, so a false
    positive would change healthy timings).  When ``service_starts`` is
    omitted, launch time doubles as service start.

    The straggler *threshold* is frozen the first time a quorum
    (``ceil(quorum * n)``) of primaries has finished: ``multiplier *
    median(finished service durations)``.  From then on, each running
    split whose service time exceeds the threshold gets one backup.
    """
    sim = ctx.sim
    n = len(tasks)
    if n == 0:
        return []
    start = sim.now
    if service_starts is None:
        service_starts = [start] * n
    primaries: List[Process] = [launch_primary(i) for i in range(n)]
    backups: Dict[int, Process] = {}
    results: List[Any] = [None] * n
    settled: List[bool] = [False] * n
    #: Splits whose backup completed while the primary was still alive;
    #: settled only after a barrier so same-instant primary completions
    #: get to dispatch first (primary wins ties under either tie-break).
    pending: List[int] = []
    durations: List[float] = []
    threshold: Optional[float] = None
    speculate = spec.speculation

    def settle(index: int, winner: Process, loser: Optional[Process]) -> None:
        sanitizer = santrack.active()
        if sanitizer is not None:
            sanitizer.observe_completion(winner)
            sanitizer.record_write(("split-results", id(results), index), "dag.settle")
        results[index] = winner.value
        settled[index] = True
        if loser is not None and loser.is_alive:
            loser.interrupt("speculation lost")

    def next_deadline() -> Optional[float]:
        """Earliest instant an un-backed-up split could turn straggler.

        A split not yet in service (queued for a driver) starts at the
        earliest *now*, so ``now + threshold`` bounds its deadline; the
        wake then re-checks actual service clocks and re-sleeps if it
        was early.  Spurious wakes consume no simulated resources, so
        they cannot perturb timings.
        """
        if threshold is None:
            return None
        candidates = [
            (service_starts[i] if service_starts[i] is not None else sim.now)
            + threshold
            for i in range(n)
            if not settled[i] and i not in backups
        ]
        return min(candidates) if candidates else None

    while not all(settled):
        events: List[Any] = [p for i, p in enumerate(primaries) if not settled[i] and p.is_alive]
        events.extend(b for i, b in backups.items() if not settled[i] and b.is_alive)
        if speculate:
            deadline = next_deadline()
            if deadline is not None and sim.now < deadline:
                # Wake at the straggler deadline even if nothing completes.
                events.append(sim.timeout(deadline - sim.now))
        yield AnyOf(sim, events)

        for i in range(n):
            if settled[i] or i in pending:
                continue
            primary, backup = primaries[i], backups.get(i)
            if primary.triggered:
                started = service_starts[i]
                durations.append(sim.now - (started if started is not None else start))
                settle(i, primary, backup)
            elif backup is not None and backup.triggered:
                # Primary still alive at this wake; its own completion
                # may be queued at this very instant.  Defer the verdict
                # past a barrier instead of letting dispatch order pick
                # the winner.
                pending.append(i)

        if pending:
            yield sim.barrier()
            for i in pending:
                primary, backup = primaries[i], backups.get(i)
                assert backup is not None
                if primary.triggered:
                    started = service_starts[i]
                    durations.append(
                        sim.now - (started if started is not None else start)
                    )
                    settle(i, primary, backup)
                else:
                    ctx.metrics.add("speculative_wins", 1)
                    settle(i, backup, primary)
            pending.clear()

        if speculate and threshold is None:
            quorum = max(1, math.ceil(spec.speculation_quorum * n))
            if len(durations) >= quorum:
                finished = sorted(durations)
                median = finished[(len(finished) - 1) // 2]
                threshold = spec.speculation_multiplier * median

        if speculate and threshold is not None:
            for i in range(n):
                if settled[i] or i in backups:
                    continue
                started = service_starts[i]
                # The wake timer fires at ``now + (deadline - now)``,
                # which IEEE-rounds a hair below ``started + threshold``;
                # the relative epsilon keeps the comparison from missing
                # its own deadline.
                if started is None or (
                    sim.now - started < threshold * (1.0 - 1e-9)
                ):
                    continue
                backup = launch_backup(i)
                if backup is not None:
                    backups[i] = backup
                    ctx.metrics.add("speculative_backups", 1)

    return results
