"""Typed stage graphs: the coordinator's unit of scheduling.

The paper's coordinator/OCS split is a staged dataflow: scans feed
exchanges feed joins feed a merge.  Earlier revisions hard-coded one
pipeline shape per query class (single-table, one join); this module
makes the dataflow a first-class value instead.  A :class:`StageGraph`
is a DAG of :class:`Stage` nodes — each a *kind* (scan, filter,
exchange, join, aggregate, merge), a declared output schema, typed
input edges, and a DES generator that performs the work — which the
:class:`repro.engine.scheduler.DagScheduler` runs with maximal
concurrency: any stage whose inputs have completed is launched, so
independent scan branches of an N-way join overlap instead of running
in script order.

Edges carry schemas.  A stage declares, per producer, the schema it
expects on that edge (``input_schemas``); the producer declares what it
emits (``output_schema``).  :func:`repro.analysis.verifier.
verify_stage_graph` rejects graphs whose edges disagree, alongside
cycles and orphan stages, before anything runs.

Stages communicate only through their return values: the scheduler
hands each stage a dict mapping producer stage id -> that producer's
returned value.  Nothing here touches the simulator directly — the
module is pure data + validation, so EXPLAIN can lower a query to a
graph and render it without executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.arrowsim.schema import Schema
from repro.errors import PlanError
from repro.sim.metrics import MetricsRegistry, StageAccountant

__all__ = [
    "STAGE_KINDS",
    "Stage",
    "StageContext",
    "StageGraph",
]

#: The closed set of stage kinds the lowering emits.  ``scan`` acquires
#: table data (split drivers), ``filter`` publishes a dynamic filter
#: from a finished build side into a not-yet-started probe scan,
#: ``exchange`` shuffles pages through the fabric, ``join`` runs the
#: parallel hash-join tasks of one join level, ``aggregate`` runs the
#: merge-side aggregation, ``merge`` produces the query's final batch
#: (post-aggregation operators + output projection), and
#: ``cache-union`` reassembles a partially cached scan — a cached-local
#: branch served from the coordinator's split cache unioned, in
#: original split order, with the pushed-remote residual branch.
STAGE_KINDS: Tuple[str, ...] = (
    "scan",
    "filter",
    "exchange",
    "join",
    "aggregate",
    "merge",
    "cache-union",
)


@dataclass
class StageContext:
    """Everything a stage body needs from its scheduler.

    ``attempt`` counts restarts: 0 on the first run, incremented each
    time the scheduler restarts the stage after a restartable fault.
    ``span`` is the stage's enclosing trace span (``None`` when tracing
    is off) so stage bodies can parent their own child spans under it.
    """

    sim: Any
    metrics: MetricsRegistry
    accountant: StageAccountant
    parent: Any = None
    span: Any = None
    query_id: Optional[str] = None
    attempt: int = 0


@dataclass(frozen=True)
class Stage:
    """One node of the dataflow: a kind, typed edges, and a body.

    ``run`` is a DES generator function ``run(ctx, inputs)`` where
    ``inputs`` maps each producer stage id to its returned value; the
    generator's return value becomes this stage's output.  Bodies must
    be restartable: instantiate operators and other mutable state
    *inside* the generator, never capture them in the closure.
    """

    stage_id: str
    kind: str
    run: Callable[[StageContext, Dict[str, Any]], Any]
    inputs: Tuple[str, ...] = ()
    #: Schema this stage expects on each input edge, keyed by producer
    #: stage id.  Edges may be untyped (absent) when the payload is not
    #: a batch stream (e.g. a dynamic-filter handshake).
    input_schemas: Mapping[str, Schema] = field(default_factory=dict)
    #: Schema of the batches this stage emits (``None`` for stages whose
    #: output is not a batch stream).
    output_schema: Optional[Schema] = None
    #: Free-form annotations surfaced by EXPLAIN (splits, distribution,
    #: table name, ...).  Never read by the scheduler.
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stage_id:
            raise PlanError("stage_id must be non-empty")
        if self.kind not in STAGE_KINDS:
            raise PlanError(
                f"unknown stage kind {self.kind!r}; expected one of {STAGE_KINDS}"
            )
        if not callable(self.run):
            raise PlanError(f"stage {self.stage_id!r} run must be callable")
        unknown = set(self.input_schemas) - set(self.inputs)
        if unknown:
            raise PlanError(
                f"stage {self.stage_id!r} declares input schemas for "
                f"non-input stages {sorted(unknown)}"
            )


class StageGraph:
    """An insertion-ordered DAG of stages keyed by stage id."""

    def __init__(self, stages: Optional[List[Stage]] = None) -> None:
        self._stages: Dict[str, Stage] = {}
        for stage in stages or []:
            self.add(stage)

    # -- construction ------------------------------------------------------

    def add(self, stage: Stage) -> Stage:
        if stage.stage_id in self._stages:
            raise PlanError(f"duplicate stage id {stage.stage_id!r}")
        self._stages[stage.stage_id] = stage
        return stage

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._stages)

    def __contains__(self, stage_id: str) -> bool:
        return stage_id in self._stages

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages.values())

    def stage(self, stage_id: str) -> Stage:
        try:
            return self._stages[stage_id]
        except KeyError:
            raise PlanError(f"no stage {stage_id!r} in graph") from None

    def stages(self) -> List[Stage]:
        return list(self._stages.values())

    def consumers(self, stage_id: str) -> List[Stage]:
        return [s for s in self._stages.values() if stage_id in s.inputs]

    def roots(self) -> List[Stage]:
        """Stages with no inputs (ready immediately)."""
        return [s for s in self._stages.values() if not s.inputs]

    def sinks(self) -> List[Stage]:
        """Stages nothing consumes (the query result comes from these)."""
        consumed = {sid for s in self._stages.values() for sid in s.inputs}
        return [s for s in self._stages.values() if s.stage_id not in consumed]

    def topological(self) -> List[Stage]:
        """Stages in dependency order (Kahn); raises on cycles.

        Ties break by insertion order, so the listing is deterministic
        and reads top-down the way the lowering emitted it.
        """
        order: List[Stage] = []
        remaining = dict(self._stages)
        done: set = set()
        while remaining:
            ready = [
                s
                for s in remaining.values()
                if all(i in done for i in s.inputs if i in self._stages)
            ]
            if not ready:
                raise PlanError(
                    f"stage graph has a cycle among {sorted(remaining)}"
                )
            for stage in ready:
                order.append(stage)
                done.add(stage.stage_id)
                del remaining[stage.stage_id]
        return order

    # -- rendering ---------------------------------------------------------

    def render(self, timings: Optional[Mapping[str, float]] = None) -> str:
        """Human-readable listing, one stage per line, dependency order.

        ``timings`` (stage id -> simulated seconds) appends a per-stage
        duration column — EXPLAIN ANALYZE passes the span-derived stage
        durations here.
        """
        lines: List[str] = []
        for stage in self.topological():
            deps = ", ".join(stage.inputs) if stage.inputs else "(source)"
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(stage.attributes.items())
            )
            line = f"  {stage.stage_id:<22} [{stage.kind:<9}] <- {deps}"
            if attrs:
                line += f"  {attrs}"
            if timings is not None:
                line += f"  {timings.get(stage.stage_id, 0.0) * 1e3:10.3f} ms"
            lines.append(line)
        return "\n".join(lines)
