"""Compute-node (JVM engine) operator cost functions.

Each operator that ran (for real) reports ``rows_in``; these functions
convert that observed work into virtual cycles on the Presto side of the
cost model — the heavyweight row-oriented path, per the calibration notes
in :mod:`repro.sim.costmodel`.
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.kernels import FusedFilterProjectOperator
from repro.exec.operators import (
    FilterOperator,
    HashAggregationOperator,
    HashJoinOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    SortOperator,
    TopNOperator,
)
from repro.sim.costmodel import CostParams

__all__ = [
    "presto_operator_cycles",
    "presto_pipeline_cycles",
    "choose_join_distribution",
]


def presto_operator_cycles(op: Operator, costs: CostParams) -> float:
    """Cycles the compute engine spends running one operator instance."""
    if isinstance(op, LimitOperator):
        # Pass-through slicing: no per-row materialization.
        return op.rows_in * 5.0
    base = op.rows_in * costs.presto_row_overhead_per_op
    if isinstance(op, FusedFilterProjectOperator):
        # One pass over the page chain: per-row operator overhead is paid
        # once for the whole fused run, and expression cost is charged on
        # the cells *actually evaluated* (short-circuit selection + CSE
        # mean far fewer cells than the tree-walk equivalent).
        return base + op.eval_cell_ops * costs.vector_op_cycles_per_value
    if isinstance(op, FilterOperator):
        return base + (
            op.rows_in * op.predicate.node_count() * costs.vector_op_cycles_per_value
        )
    if isinstance(op, ProjectOperator):
        return base + (
            op.rows_in * op.expression_node_count * costs.vector_op_cycles_per_value
        )
    if isinstance(op, HashAggregationOperator):
        return base + op.rows_in * (
            costs.group_hash_cycles_per_row
            + len(op.specs) * costs.agg_update_cycles_per_row_per_func
        )
    if isinstance(op, HashJoinOperator):
        return base + (
            op.build_rows * costs.join_build_cycles_per_row
            + op.rows_in * costs.join_probe_cycles_per_row
        )
    if isinstance(op, TopNOperator):
        return base + op.rows_in * costs.topn_cycles_per_row
    if isinstance(op, SortOperator):
        return base + costs.sort_cycles(op.rows_in)
    return base


def presto_pipeline_cycles(operators: Sequence[Operator], costs: CostParams) -> float:
    """Total cycles for a chain of already-run operators."""
    return sum(presto_operator_cycles(op, costs) for op in operators)


def choose_join_distribution(
    build_rows: int, probe_rows: int, workers: int
) -> str:
    """Pick how join inputs move: replicate the build side or shuffle both.

    Broadcast ships the build side to every worker (``build_rows * workers``
    rows over the exchange) but leaves the probe side in place;
    hash-partitioning ships each side once (``build_rows + probe_rows``).
    Rows moved is the whole cost difference in this model — per-row CPU on
    the join itself is identical either way — so compare those directly,
    preferring broadcast on ties (it needs one exchange stage, not two).
    """
    if workers <= 1:
        return "broadcast"
    if build_rows * workers <= build_rows + probe_rows:
        return "broadcast"
    return "partitioned"
