"""Connector Service Provider Interface (SPI).

Mirrors the Presto SPI surface the paper builds on (Section 3.4):

* ``ConnectorTableHandle`` — opaque per-connector table state; the
  Presto-OCS connector's local optimizer *enriches* its handle with the
  operators it pushes down.
* ``ConnectorSplit`` — one schedulable unit of scan work.
* ``Connector.page_source`` — the PageSourceProvider: a DES generator
  that talks to storage over simulated links and resolves to a
  :class:`PageSourceResult`.
* ``ConnectorPlanOptimizer`` — the local-optimizer hook invoked after
  global optimization (Figure 3, step 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.arrowsim.record_batch import RecordBatch
from repro.arrowsim.schema import Schema
from repro.metastore.catalog import TableDescriptor
from repro.plan.nodes import PlanNode
from repro.sim.metrics import MetricsRegistry
from repro.trace import Span

__all__ = [
    "ConnectorTableHandle",
    "ConnectorSplit",
    "PageSourceResult",
    "ConnectorPlanOptimizer",
    "Connector",
]


@dataclass
class ConnectorTableHandle:
    """Base table handle: the catalog descriptor plus connector state."""

    descriptor: TableDescriptor

    @property
    def table_schema(self) -> Schema:
        return self.descriptor.table_schema


@dataclass(frozen=True)
class ConnectorSplit:
    """One unit of scan work assigned to a worker driver."""

    split_id: int
    #: Object keys this split covers (one file for raw scans; every key on
    #: a storage node for OCS table-level pushdown).
    keys: tuple
    #: Which storage node serves this split.
    node_index: int = 0
    info: Dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash((self.split_id, self.keys, self.node_index))


@dataclass
class PageSourceResult:
    """What a page source delivers to the worker's pipeline."""

    batches: List[RecordBatch]
    #: Payload bytes that crossed into the compute layer for this split.
    bytes_received: int = 0
    #: Compute-side cycles to materialize the pages (CSV parse, Arrow
    #: deserialize, or Parcel decode — charged by the worker driver).
    ingest_cycles: float = 0.0
    #: Simulated seconds spent between request and last byte (stage info).
    transfer_seconds: float = 0.0


class ConnectorPlanOptimizer(ABC):
    """Connector hook into the coordinator's local-optimization phase."""

    @abstractmethod
    def optimize(self, plan: PlanNode, metrics: MetricsRegistry) -> PlanNode:
        """Rewrite ``plan`` (e.g. collapse pushdown-eligible operators)."""


class Connector(ABC):
    """A pluggable storage backend."""

    name: str = "connector"

    @abstractmethod
    def get_table_handle(self, schema: str, table: str) -> ConnectorTableHandle:
        """Resolve a table to a handle (metadata phase)."""

    @abstractmethod
    def get_splits(self, handle: ConnectorTableHandle) -> List[ConnectorSplit]:
        """Partition the scan into schedulable splits."""

    @abstractmethod
    def page_source(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        metrics: MetricsRegistry,
        trace: Optional[Span] = None,
    ) -> Generator:
        """DES generator resolving to a :class:`PageSourceResult`.

        ``trace`` is the split's span; connectors parent their data-path
        spans (IR generation, RPC attempts, fallback GETs) under it.
        """

    def plan_optimizer(self) -> Optional[ConnectorPlanOptimizer]:
        """The connector's local optimizer, if it has one."""
        return None

    def speculative_page_source(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        metrics: MetricsRegistry,
        trace: Optional[Span] = None,
    ) -> Optional[Generator]:
        """An *alternative* page source for straggler speculation.

        The scheduler launches this as a backup attempt when ``split``'s
        primary page source is straggling (e.g. a degraded storage
        node's pushdown engine running slow).  The backup must produce
        batches byte-identical to the primary's — speculation may change
        latency, never results.  Connectors with no alternative data
        path return ``None`` (the default): that split then simply
        waits for its primary.
        """
        return None
