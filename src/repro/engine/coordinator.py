"""The coordinator: the paper's Figure 3 pipeline end to end.

``execute`` runs one SQL statement: parse -> analyze -> logical plan ->
global optimize -> connector local optimize -> fragment -> schedule
splits -> drive execution on the simulated cluster -> gather results.
All real computation happens inline; all timing comes from the DES.

Stage attribution matches Table 3's rows: ``logical_plan_analysis``
(connector plan traversal), ``substrait_generation`` (charged by the OCS
connector's page source), ``pushdown_and_transfer`` (storage round trip
+ page materialization), ``presto_execution`` (post-scan operators), and
``others`` (coordination fixed costs + scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.engine.cluster import Cluster
from repro.engine.costing import presto_pipeline_cycles
from repro.engine.physical import PhysicalPlan, fragment_plan
from repro.engine.session import Session
from repro.engine.spi import Connector, PageSourceResult
from repro.errors import NoSuchCatalogError
from repro.exec.operators import run_operators
from repro.plan.nodes import PlanNode, TableScanNode, format_plan
from repro.plan.optimizer import GlobalOptimizer
from repro.plan.planner import plan_query
from repro.sim.kernel import AllOf
from repro.sim.metrics import MetricsRegistry
from repro.sql.analyzer import analyze
from repro.sql.parser import parse

__all__ = ["Coordinator", "QueryResult"]

STAGE_ANALYSIS = "logical_plan_analysis"
STAGE_SUBSTRAIT = "substrait_generation"
STAGE_TRANSFER = "pushdown_and_transfer"
STAGE_EXECUTION = "presto_execution"
STAGE_OTHERS = "others"


@dataclass
class QueryResult:
    """Everything one query run produced and measured."""

    batch: RecordBatch
    execution_seconds: float
    #: Bytes that crossed from the storage layer into the compute node.
    data_moved_bytes: int
    splits: int
    plan_before: str
    plan_after: str
    metrics: MetricsRegistry
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Mean busy fraction per resource over the query's lifetime, e.g.
    #: {"compute_cores": 0.02, "storage_cores[0]": 0.61, "link": 0.05}.
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def rows(self) -> int:
        return self.batch.num_rows

    def to_pydict(self) -> Dict[str, list]:
        return self.batch.to_pydict()


class Coordinator:
    """Plans and runs queries against registered catalogs on one cluster."""

    def __init__(self, cluster: Cluster, catalogs: Dict[str, Connector]) -> None:
        self.cluster = cluster
        self.catalogs = dict(catalogs)

    def connector_for(self, name: str) -> Connector:
        try:
            return self.catalogs[name]
        except KeyError:
            raise NoSuchCatalogError(
                f"catalog {name!r}; registered: {sorted(self.catalogs)}"
            ) from None

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, session: Session) -> QueryResult:
        """Run one statement to completion; returns results + measurements."""
        cluster = self.cluster
        process = cluster.sim.process(self._run_query(sql, session), name="query")
        result = cluster.sim.run(until=process)
        return result

    def explain(self, sql: str, session: Session) -> str:
        """Plan (without executing) and describe what would happen.

        Shows the optimized logical plan, the plan after the connector's
        local optimizer, the operators merged into the scan handle with
        their selectivity estimates, and the split structure — Presto's
        EXPLAIN, extended with the paper's pushdown vocabulary.
        """
        statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        query = analyze(statement, handle.table_schema)
        plan: PlanNode = plan_query(query)
        self._attach_handle(plan, handle)
        plan = GlobalOptimizer().optimize(plan)
        before = format_plan(plan)

        optimizer = connector.plan_optimizer()
        metrics = MetricsRegistry()
        if optimizer is not None:
            plan = optimizer.optimize(plan, metrics)
        after = format_plan(plan)

        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)

        lines = [
            f"EXPLAIN {' '.join(sql.split())}",
            "",
            "Logical plan (after global optimization):",
            before,
            "",
            f"After {type(connector).__name__} local optimizer:",
            after,
        ]
        pushed = getattr(scan_handle, "pushed", None)
        if pushed is not None:
            operators = pushed.operator_names() or ["(none)"]
            lines += ["", f"Pushed to storage: {', '.join(operators)}"]
            if getattr(scan_handle, "estimated_selectivity", None) is not None:
                lines.append(
                    f"  estimated filter selectivity: "
                    f"{scan_handle.estimated_selectivity:.4%}"
                )
            if getattr(scan_handle, "estimated_output_rows", None) is not None:
                lines.append(
                    f"  estimated aggregation groups: "
                    f"{scan_handle.estimated_output_rows:,}"
                )
        lines.append("")
        lines.append(f"Splits: {len(splits)}")
        return "\n".join(lines)

    # -- the query process ----------------------------------------------------------

    def _run_query(self, sql: str, session: Session):
        cluster = self.cluster
        sim = cluster.sim
        costs = cluster.costs
        metrics = cluster.metrics

        # (0) Coordination overhead ("others" in Table 3).
        query_start = sim.now
        t0 = sim.now
        yield cluster.compute.execute(costs.coordinator_fixed_cycles, name="coordinate")

        # (1-3) Parse, analyze, logical plan, global optimization.
        statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        query = analyze(statement, handle.table_schema)
        plan: PlanNode = plan_query(query)
        self._attach_handle(plan, handle)
        plan = GlobalOptimizer().optimize(plan)
        plan_before = format_plan(plan)
        metrics.stages.charge(STAGE_OTHERS, sim.now - t0)

        # (4) Connector-specific (local) optimization — the SPI hook.
        t1 = sim.now
        optimizer = connector.plan_optimizer()
        if optimizer is not None:
            node_count = _count_nodes(plan)
            yield cluster.compute.execute(
                node_count * costs.plan_analysis_cycles_per_node, name="local-opt"
            )
            plan = optimizer.optimize(plan, metrics)
        plan_after = format_plan(plan)
        metrics.stages.charge(STAGE_ANALYSIS, sim.now - t1)

        # (5) Physical planning + (6) split generation and scheduling.
        t2 = sim.now
        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)
        yield cluster.compute.execute(
            len(splits) * costs.schedule_cycles_per_split, name="schedule"
        )
        metrics.stages.charge(STAGE_OTHERS, sim.now - t2)
        metrics.add("splits", len(splits))

        # Split drivers (scan stage).
        split_processes = [
            sim.process(
                self._run_split(connector, scan_handle, split, physical, metrics),
                name=f"split-{split.split_id}",
            )
            for split in splits
        ]
        split_outputs = yield AllOf(sim, split_processes)

        # Merge (final) stage.
        t3 = sim.now
        batches: List[RecordBatch] = [b for out in split_outputs for b in out]
        final_ops = physical.final_operators()
        results = run_operators(batches, final_ops)
        final_cycles = presto_pipeline_cycles(final_ops, costs)
        yield cluster.compute.execute_spread(final_cycles, name="final-stage")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t3)

        batch = (
            concat_batches(results)
            if results
            else RecordBatch.empty(plan.output_schema())
        )
        utilization = {
            "compute_cores": cluster.compute.core_utilization(),
            "frontend_cores": cluster.frontend.core_utilization(),
            "link": cluster.link_cf.utilization(),
            "scan_drivers": cluster.scan_drivers.utilization(),
        }
        for i, node in enumerate(cluster.storage):
            utilization[f"storage_cores[{i}]"] = node.core_utilization()
        # Stage attribution must partition the wall time: window union
        # keeps concurrent splits from double charging, but stages that
        # overlap *each other* (e.g. one split transferring while another
        # runs operators) can still push the sum past the elapsed time.
        # Scale the reported copy down so Table 3 always partitions;
        # serial runs are untouched (total <= elapsed there).
        elapsed = sim.now - query_start
        stage_seconds = dict(metrics.stages.items())
        total = sum(stage_seconds.values())
        if total > elapsed > 0:
            scale = elapsed / total
            stage_seconds = {k: v * scale for k, v in stage_seconds.items()}
        return QueryResult(
            batch=batch,
            execution_seconds=elapsed,
            data_moved_bytes=cluster.bytes_to_compute(),
            splits=len(splits),
            plan_before=plan_before,
            plan_after=plan_after,
            metrics=metrics,
            stage_seconds=stage_seconds,
            utilization=utilization,
        )

    def _run_split(self, connector: Connector, handle, split, physical: PhysicalPlan, metrics):
        cluster = self.cluster
        sim = cluster.sim
        stages = metrics.stages
        with cluster.scan_drivers.request() as driver:
            yield driver
            # Data acquisition: storage round trip + page materialization.
            # Concurrent splits each open a stage *window*; the timer
            # unions overlapping windows so wall-clock is charged once,
            # not once per split (otherwise the per-stage sum could
            # exceed the query's elapsed time).  The OCS page source
            # pauses the transfer window around IR generation so the
            # substrait stage stays separable.
            stages.begin(STAGE_TRANSFER, sim.now)
            try:
                source: PageSourceResult = yield sim.process(
                    connector.page_source(handle, split, metrics),
                    name=f"page-source-{split.split_id}",
                )
                if source.ingest_cycles:
                    yield cluster.compute.execute(source.ingest_cycles, name="ingest")
            finally:
                stages.end(STAGE_TRANSFER, sim.now)
            metrics.add("bytes_received", source.bytes_received)

            # Split-local operators (real work + cost charge).
            stages.begin(STAGE_EXECUTION, sim.now)
            try:
                split_ops = physical.split_operators()
                out = run_operators(source.batches, split_ops)
                cycles = presto_pipeline_cycles(split_ops, cluster.costs)
                if cycles:
                    yield cluster.compute.execute(cycles, name="split-ops")
            finally:
                stages.end(STAGE_EXECUTION, sim.now)
            for op in split_ops:
                metrics.add(f"rows_into_{op.name}", op.rows_in)
        return out

    @staticmethod
    def _attach_handle(plan: PlanNode, handle) -> None:
        node: Optional[PlanNode] = plan
        while node is not None:
            if isinstance(node, TableScanNode):
                node.connector_handle = handle
                return
            children = node.children()
            node = children[0] if children else None
        raise NoSuchCatalogError("plan has no table scan to attach a handle to")


def _count_nodes(plan: PlanNode) -> int:
    count = 1
    for child in plan.children():
        count += _count_nodes(child)
    return count
