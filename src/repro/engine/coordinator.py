"""The coordinator: the paper's Figure 3 pipeline end to end.

``execute`` runs one SQL statement: parse -> analyze -> logical plan ->
global optimize -> connector local optimize -> fragment -> schedule
splits -> drive execution on the simulated cluster -> gather results.
All real computation happens inline; all timing comes from the DES.

Stage attribution matches Table 3's rows: ``logical_plan_analysis``
(connector plan traversal), ``substrait_generation`` (charged by the OCS
connector's page source), ``pushdown_and_transfer`` (storage round trip
+ page materialization), ``presto_execution`` (post-scan operators), and
``others`` (coordination fixed costs + scheduling).

When the cluster's tracer records, the coordinator opens one root span
per query and mirrors every stage window with a ``stage``-tagged child
span, so the Table 3 breakdown is re-derivable from the span tree alone
(:func:`repro.trace.stage_totals`); spans add no simulated cost, so the
timings are bit-identical with tracing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.runtime import strict_verify_enabled
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.engine.cluster import Cluster
from repro.engine.costing import choose_join_distribution, presto_pipeline_cycles
from repro.engine.physical import PhysicalPlan, fragment_plan
from repro.engine.session import Session
from repro.engine.spi import Connector, PageSourceResult
from repro.errors import NoSuchCatalogError, PlanError
from repro.exchange.filters import build_dynamic_filter
from repro.exchange.partition import hash_partition
from repro.exec.backend import ExecBackend, get_backend
from repro.exec.operators import HashJoinOperator, Operator, run_operators
from repro.plan.nodes import (
    JoinNode,
    OutputNode,
    PlanNode,
    TableScanNode,
    format_plan,
)
from repro.plan.optimizer import GlobalOptimizer
from repro.plan.planner import plan_query
from repro.rpc.retry import RetryPolicy
from repro.sim.kernel import AllOf
from repro.sim.metrics import MetricsRegistry
from repro.sql.analyzer import analyze as analyze_statement
from repro.sql.ast_nodes import TableName
from repro.sql.parser import parse
from repro.trace import Trace, render_tree, stage_totals

__all__ = ["Coordinator", "QueryResult"]

STAGE_ANALYSIS = "logical_plan_analysis"
STAGE_SUBSTRAIT = "substrait_generation"
STAGE_TRANSFER = "pushdown_and_transfer"
STAGE_EXECUTION = "presto_execution"
STAGE_EXCHANGE = "exchange"
STAGE_OTHERS = "others"


@dataclass
class QueryResult:
    """Everything one query run produced and measured."""

    batch: RecordBatch
    execution_seconds: float
    #: Bytes that crossed from the storage layer into the compute node.
    data_moved_bytes: int
    splits: int
    plan_before: str
    plan_after: str
    metrics: MetricsRegistry
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Mean busy fraction per resource over the query's lifetime, e.g.
    #: {"compute_cores": 0.02, "storage_cores[0]": 0.61, "link": 0.05}.
    utilization: Dict[str, float] = field(default_factory=dict)
    #: The query's span tree when the cluster ran with tracing enabled.
    trace: Optional[Trace] = None

    @property
    def rows(self) -> int:
        return self.batch.num_rows

    def to_pydict(self) -> Dict[str, list]:
        return self.batch.to_pydict()


class Coordinator:
    """Plans and runs queries against registered catalogs on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        catalogs: Dict[str, Connector],
        exec_backend: Union[str, ExecBackend] = "tree",
    ) -> None:
        self.cluster = cluster
        self.catalogs = dict(catalogs)
        #: Compiles every compute-side operator pipeline before it runs
        #: (tree-walk reference vs fused vectorized kernels).
        self.backend = get_backend(exec_backend)

    def connector_for(self, name: str) -> Connector:
        try:
            return self.catalogs[name]
        except KeyError:
            raise NoSuchCatalogError(
                f"catalog {name!r}; registered: {sorted(self.catalogs)}"
            ) from None

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, session: Session) -> QueryResult:
        """Run one statement to completion; returns results + measurements."""
        cluster = self.cluster
        process = cluster.sim.process(self._run_query(sql, session), name="query")
        result = cluster.sim.run(until=process)
        return result

    def query_process(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
    ):
        """The query as a schedulable DES generator (re-entrant form).

        :meth:`execute` drives one query to completion on an otherwise
        idle cluster; the multi-tenant query service instead spawns many
        of these concurrently on one shared cluster.  Each call gets its
        own metrics registry and span root (parented under ``parent``
        when given, so a service-level trace nests the query), and
        ``query_id`` tags resource claims for per-query accounting.
        """
        return self._run_query(sql, session, metrics=metrics, parent=parent, query_id=query_id)

    def explain(self, sql: str, session: Session, analyze: bool = False) -> str:
        """Plan (without executing) and describe what would happen.

        Shows the optimized logical plan, the plan after the connector's
        local optimizer, the operators merged into the scan handle with
        their selectivity estimates, and the split structure — Presto's
        EXPLAIN, extended with the paper's pushdown vocabulary.

        With ``analyze=True`` the query actually runs (with tracing
        forced on) and the output is the recorded span tree plus the
        span-derived Table 3 stage breakdown — ``EXPLAIN ANALYZE``.
        """
        if analyze:
            return self._explain_analyze(sql, session)
        statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        right_handle = self._right_handle(statement, session, catalog_name, connector)
        if right_handle is not None:
            query = analyze_statement(
                statement, handle.table_schema,
                right_schema=right_handle.table_schema,
            )
        else:
            query = analyze_statement(statement, handle.table_schema)
        plan: PlanNode = plan_query(query)
        self._attach_handle(plan, handle, right_handle)
        plan = GlobalOptimizer().optimize(plan)
        before = format_plan(plan)

        join = _find_join(plan)
        if join is not None:
            return self._explain_join(sql, connector, plan, before, join)

        optimizer = connector.plan_optimizer()
        metrics = MetricsRegistry()
        if optimizer is not None:
            plan = optimizer.optimize(plan, metrics)
        after = format_plan(plan)

        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)

        lines = [
            f"EXPLAIN {' '.join(sql.split())}",
            "",
            "Logical plan (after global optimization):",
            before,
            "",
            f"After {type(connector).__name__} local optimizer:",
            after,
        ]
        pushed = getattr(scan_handle, "pushed", None)
        if pushed is not None:
            operators = pushed.operator_names() or ["(none)"]
            lines += ["", f"Pushed to storage: {', '.join(operators)}"]
            if getattr(scan_handle, "estimated_selectivity", None) is not None:
                lines.append(
                    f"  estimated filter selectivity: "
                    f"{scan_handle.estimated_selectivity:.4%}"
                )
            if getattr(scan_handle, "estimated_output_rows", None) is not None:
                lines.append(
                    f"  estimated aggregation groups: "
                    f"{scan_handle.estimated_output_rows:,}"
                )
        lines.append("")
        lines.append(f"Splits: {len(splits)}")
        return "\n".join(lines)

    def _explain_join(
        self, sql: str, connector: Connector, plan: PlanNode, before: str,
        join: JoinNode,
    ) -> str:
        """EXPLAIN for a join: per-branch plans + exchange structure."""
        metrics = MetricsRegistry()
        branch_plans: List[PlanNode] = []
        for branch in (join.left, join.right):
            branch_plan: PlanNode = OutputNode(branch, branch.output_schema().names())
            optimizer = connector.plan_optimizer()
            if optimizer is not None:
                branch_plan = optimizer.optimize(branch_plan, metrics)
            branch_plans.append(branch_plan)
        probe_plan, build_plan = branch_plans
        workers = max(1, int(self.cluster.costs.exchange_partition_count))
        distribution = join.distribution
        if distribution == "auto":
            distribution = choose_join_distribution(
                build_rows=_handle_row_count(_find_scan(join.right).connector_handle),
                probe_rows=_handle_row_count(_find_scan(join.left).connector_handle),
                workers=workers,
            )
        probe_physical = fragment_plan(probe_plan)
        build_physical = fragment_plan(build_plan)
        probe_splits = connector.get_splits(probe_physical.scan.connector_handle)
        build_splits = connector.get_splits(build_physical.scan.connector_handle)
        lines = [
            f"EXPLAIN {' '.join(sql.split())}",
            "",
            "Logical plan (after global optimization):",
            before,
            "",
            f"Join distribution: {distribution} ({workers} join tasks)",
            "",
            f"Probe branch after {type(connector).__name__} local optimizer:",
            format_plan(probe_plan),
            "",
            f"Build branch after {type(connector).__name__} local optimizer:",
            format_plan(build_plan),
        ]
        for label, physical in (("probe", probe_physical), ("build", build_physical)):
            pushed = getattr(physical.scan.connector_handle, "pushed", None)
            if pushed is not None:
                operators = pushed.operator_names() or ["(none)"]
                lines += ["", f"Pushed to storage ({label}): {', '.join(operators)}"]
        lines.append("")
        lines.append(f"Splits: {len(probe_splits) + len(build_splits)}")
        return "\n".join(lines)

    def _explain_analyze(self, sql: str, session: Session) -> str:
        """Run the query with tracing forced on; render tree + stages."""
        tracer = self.cluster.tracer
        was_enabled = tracer.enabled
        tracer.enabled = True
        try:
            result = self.execute(sql, session)
        finally:
            tracer.enabled = was_enabled
        lines = [
            f"EXPLAIN ANALYZE {' '.join(sql.split())}",
            "",
            f"wall time: {result.execution_seconds * 1e3:.3f} ms    "
            f"rows: {result.rows:,}    "
            f"data moved: {result.data_moved_bytes:,} B    "
            f"splits: {result.splits}",
            "",
            render_tree(result.trace),
            "",
            "Stage breakdown (derived from spans):",
        ]
        totals = stage_totals(result.trace, elapsed=result.execution_seconds)
        for stage in (
            STAGE_ANALYSIS,
            STAGE_SUBSTRAIT,
            STAGE_TRANSFER,
            STAGE_EXCHANGE,
            STAGE_EXECUTION,
            STAGE_OTHERS,
        ):
            seconds = totals.get(stage, 0.0)
            lines.append(f"  {stage:<24} {seconds * 1e3:10.3f} ms")
        return "\n".join(lines)

    # -- the query process ----------------------------------------------------------

    def _run_query(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
    ):
        cluster = self.cluster
        sim = cluster.sim
        costs = cluster.costs
        # Per-query scoped: consecutive/concurrent queries on one shared
        # cluster must not see each other's counters or stage windows.
        metrics = metrics if metrics is not None else MetricsRegistry()
        tracer = cluster.tracer

        # (0) Coordination overhead ("others" in Table 3).  Every stage
        # window below is mirrored by a stage-tagged span over the same
        # instants, so span-derived totals reproduce ``stage_seconds``.
        query_start = sim.now
        bytes_start = cluster.bytes_to_compute()
        root = tracer.start(
            "query", parent=parent, attributes={"sql": " ".join(sql.split())}
        )
        t0 = sim.now
        startup = tracer.start("startup", parent=root, stage=STAGE_OTHERS)
        yield cluster.compute.execute(costs.coordinator_fixed_cycles, name="coordinate")

        # (1-3) Parse, analyze, logical plan, global optimization.  These
        # run inline (instantaneous in simulated time) — their spans are
        # zero-width markers recording the pipeline's structure.
        with tracer.span("parse", parent=startup):
            statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        right_handle = self._right_handle(statement, session, catalog_name, connector)
        with tracer.span("analyze", parent=startup):
            if right_handle is not None:
                query = analyze_statement(
                    statement, handle.table_schema,
                    right_schema=right_handle.table_schema,
                )
            else:
                query = analyze_statement(statement, handle.table_schema)
        with tracer.span("plan.logical", parent=startup):
            plan: PlanNode = plan_query(query)
            self._attach_handle(plan, handle, right_handle)
        with tracer.span("optimize.global", parent=startup):
            if strict_verify_enabled():
                # Global rewrites must preserve the analyzed plan's output
                # schema; verify both sides under strict verification.
                from repro.analysis.verifier import verify_logical_plan

                pre_schema = verify_logical_plan(plan)
                plan = GlobalOptimizer().optimize(plan)
                post_schema = verify_logical_plan(plan)
                if pre_schema.names() != post_schema.names() or any(
                    a.dtype is not b.dtype for a, b in zip(pre_schema, post_schema)
                ):
                    from repro.errors import VerificationError

                    raise VerificationError(
                        f"global optimization changed the output schema from "
                        f"{pre_schema.names()} to {post_schema.names()}"
                    )
            else:
                plan = GlobalOptimizer().optimize(plan)
        plan_before = format_plan(plan)
        metrics.stages.charge(STAGE_OTHERS, sim.now - t0)
        tracer.end(startup)

        if _find_join(plan) is not None:
            # Multi-stage (exchange) execution takes over from here:
            # per-branch local optimization, build/probe scan stages, the
            # shuffle, parallel join tasks, and the shared merge stage.
            result = yield from self._run_join_query(
                plan, plan_before, connector, metrics, root,
                query_start, bytes_start, query_id,
            )
            return result

        # (4) Connector-specific (local) optimization — the SPI hook.
        t1 = sim.now
        local_opt = tracer.start("optimize.local", parent=root, stage=STAGE_ANALYSIS)
        optimizer = connector.plan_optimizer()
        if optimizer is not None:
            node_count = _count_nodes(plan)
            yield cluster.compute.execute(
                node_count * costs.plan_analysis_cycles_per_node, name="local-opt"
            )
            plan = optimizer.optimize(plan, metrics)
        plan_after = format_plan(plan)
        metrics.stages.charge(STAGE_ANALYSIS, sim.now - t1)
        tracer.end(local_opt)

        # (5) Physical planning + (6) split generation and scheduling.
        t2 = sim.now
        schedule = tracer.start("schedule", parent=root, stage=STAGE_OTHERS)
        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)
        schedule.set("splits", len(splits))
        yield cluster.compute.execute(
            len(splits) * costs.schedule_cycles_per_split, name="schedule"
        )
        metrics.stages.charge(STAGE_OTHERS, sim.now - t2)
        tracer.end(schedule)
        metrics.add("splits", len(splits))

        # Split drivers (scan stage).
        split_processes = [
            sim.process(
                self._run_split(
                    connector, scan_handle, split, physical, metrics, root,
                    owner=query_id,
                ),
                name=f"split-{split.split_id}",
            )
            for split in splits
        ]
        split_outputs = yield AllOf(sim, split_processes)

        # Merge (final) stage.
        t3 = sim.now
        final_span = tracer.start("final-stage", parent=root, stage=STAGE_EXECUTION)
        batches: List[RecordBatch] = [b for out in split_outputs for b in out]
        final_ops = self.backend.compile(physical.final_operators())
        results = run_operators(batches, final_ops)
        final_cycles = presto_pipeline_cycles(final_ops, costs)
        yield cluster.compute.execute_spread(final_cycles, name="final-stage")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t3)
        tracer.end(final_span)

        batch = (
            concat_batches(results)
            if results
            else RecordBatch.empty(plan.output_schema())
        )
        utilization = {
            "compute_cores": cluster.compute.core_utilization(),
            "frontend_cores": cluster.frontend.core_utilization(),
            "link": cluster.link_cf.utilization(),
            "scan_drivers": cluster.scan_drivers.utilization(),
        }
        for i, node in enumerate(cluster.storage):
            utilization[f"storage_cores[{i}]"] = node.core_utilization()
        # Stage attribution must partition the wall time: window union
        # keeps concurrent splits from double charging, but stages that
        # overlap *each other* (e.g. one split transferring while another
        # runs operators) can still push the sum past the elapsed time.
        # Scale the reported copy down so Table 3 always partitions;
        # serial runs are untouched (total <= elapsed there).
        elapsed = sim.now - query_start
        stage_seconds = dict(metrics.stages.items())
        total = sum(stage_seconds.values())
        if total > elapsed > 0:
            scale = elapsed / total
            stage_seconds = {k: v * scale for k, v in stage_seconds.items()}
        tracer.end(root)
        return QueryResult(
            batch=batch,
            execution_seconds=elapsed,
            # Delta over the link ledger: exact for a dedicated cluster;
            # on a shared cluster concurrent queries interleave on the
            # link, so the service reports per-query movement from the
            # per-query ``bytes_received`` counter instead.
            data_moved_bytes=cluster.bytes_to_compute() - bytes_start,
            splits=len(splits),
            plan_before=plan_before,
            plan_after=plan_after,
            metrics=metrics,
            stage_seconds=stage_seconds,
            utilization=utilization,
            trace=tracer.trace(root=root) if tracer.recording else None,
        )

    def _run_split(
        self, connector: Connector, handle, split, physical: PhysicalPlan, metrics,
        parent=None, owner: Optional[str] = None,
    ):
        cluster = self.cluster
        sim = cluster.sim
        stages = metrics.stages
        tracer = cluster.tracer
        split_span = tracer.start(
            f"split-{split.split_id}",
            parent=parent,
            attributes={"split": split.split_id, "node": split.node_index},
        )
        try:
            with cluster.scan_drivers.request(owner=owner) as driver:
                yield driver
                # Data acquisition: storage round trip + page
                # materialization.  Concurrent splits each open a stage
                # *window*; the timer unions overlapping windows so
                # wall-clock is charged once, not once per split
                # (otherwise the per-stage sum could exceed the query's
                # elapsed time).  The OCS page source pauses the transfer
                # window around IR generation so the substrait stage stays
                # separable; its connector-side spans carry the matching
                # stage tags, so only the ingest tail is tagged here.
                stages.begin(STAGE_TRANSFER, sim.now)
                try:
                    source: PageSourceResult = yield sim.process(
                        connector.page_source(handle, split, metrics, trace=split_span),
                        name=f"page-source-{split.split_id}",
                    )
                    ingest_span = tracer.start(
                        "ingest",
                        parent=split_span,
                        stage=STAGE_TRANSFER,
                        attributes={"bytes": source.bytes_received},
                    )
                    try:
                        if source.ingest_cycles:
                            yield cluster.compute.execute(
                                source.ingest_cycles, name="ingest"
                            )
                    finally:
                        tracer.end(ingest_span)
                finally:
                    stages.end(STAGE_TRANSFER, sim.now)
                metrics.add("bytes_received", source.bytes_received)

                # Split-local operators (real work + cost charge).
                stages.begin(STAGE_EXECUTION, sim.now)
                ops_span = tracer.start(
                    "split-operators", parent=split_span, stage=STAGE_EXECUTION
                )
                try:
                    split_ops = self.backend.compile(physical.split_operators())
                    out = run_operators(source.batches, split_ops)
                    cycles = presto_pipeline_cycles(split_ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute(cycles, name="split-ops")
                finally:
                    stages.end(STAGE_EXECUTION, sim.now)
                    tracer.end(ops_span)
                for op in split_ops:
                    metrics.add(f"rows_into_{op.name}", op.rows_in)
        finally:
            tracer.end(split_span)
        return out

    # -- the join (exchange) query process --------------------------------------

    def _run_join_query(
        self,
        plan: PlanNode,
        plan_before: str,
        connector: Connector,
        metrics: MetricsRegistry,
        root,
        query_start: float,
        bytes_start: int,
        query_id: Optional[str],
    ):
        """Multi-stage execution for plans containing one :class:`JoinNode`.

        Stage order mirrors a distributed engine's exchange pipeline:

        1. each join branch is locally optimized as its own linear scan
           plan (so pushdown applies per table),
        2. the build (right) side scans to completion,
        3. its key summary is published as a *dynamic filter* into the
           probe handle's pushed plan (when the connector's policy allows),
        4. the probe side scans — OCS now prunes probe rows at storage,
        5. both sides shuffle through the exchange fabric (broadcast or
           hash-partitioned, cost-chosen from metastore row counts),
        6. parallel join tasks build+probe their partition and run the
           split-local operators of the fragment above the join,
        7. a final merge stage runs the remaining operators.
        """
        cluster = self.cluster
        sim = cluster.sim
        costs = cluster.costs
        tracer = cluster.tracer
        join = _find_join(plan)
        assert join is not None  # dispatch guarantees this

        # (4) Per-branch connector-local optimization.  Each side of the
        # join is a linear scan chain the connector already understands;
        # a fresh optimizer per branch keeps its per-plan state scoped.
        t1 = sim.now
        local_opt = tracer.start("optimize.local", parent=root, stage=STAGE_ANALYSIS)
        branch_plans: List[PlanNode] = []
        for branch in (join.left, join.right):
            branch_plan: PlanNode = OutputNode(branch, branch.output_schema().names())
            optimizer = connector.plan_optimizer()
            if optimizer is not None:
                yield cluster.compute.execute(
                    _count_nodes(branch_plan) * costs.plan_analysis_cycles_per_node,
                    name="local-opt",
                )
                branch_plan = optimizer.optimize(branch_plan, metrics)
            branch_plans.append(branch_plan)
        probe_plan, build_plan = branch_plans
        metrics.stages.charge(STAGE_ANALYSIS, sim.now - t1)
        tracer.end(local_opt)

        # Cost-based distribution: broadcast replicates the build side to
        # every join task; partitioned shuffles both sides by join key.
        workers = max(1, int(costs.exchange_partition_count))
        distribution = join.distribution
        if distribution == "auto":
            distribution = choose_join_distribution(
                build_rows=_handle_row_count(_find_scan(join.right).connector_handle),
                probe_rows=_handle_row_count(_find_scan(join.left).connector_handle),
                workers=workers,
            )
        join.distribution = distribution
        plan_after = format_plan(
            _replace_join(
                plan,
                replace(join, left=probe_plan, right=build_plan,
                        distribution=distribution),
            )
        )

        # (5) Physical planning + split scheduling for all three fragments.
        t2 = sim.now
        schedule = tracer.start("schedule", parent=root, stage=STAGE_OTHERS)
        probe_physical = fragment_plan(probe_plan)
        build_physical = fragment_plan(build_plan)
        probe_handle = probe_physical.scan.connector_handle
        build_handle = build_physical.scan.connector_handle
        probe_splits = connector.get_splits(probe_handle)
        build_splits = connector.get_splits(build_handle)
        total_splits = len(probe_splits) + len(build_splits)
        # The fragment above the join hangs off a synthetic scan standing
        # in for the exchange; it stays handle-free because nothing can be
        # pushed to storage through an exchange boundary.
        join_schema = join.output_schema()
        synthetic = TableScanNode(
            table=TableName(table="$join"),
            table_schema=join_schema,
            columns=join_schema.names(),
        )
        if strict_verify_enabled():
            from repro.analysis.verifier import verify_exchange_boundary

            verify_exchange_boundary(synthetic)
        above_physical = fragment_plan(_replace_join(plan, synthetic))
        schedule.set("splits", total_splits)
        schedule.set("distribution", distribution)
        yield cluster.compute.execute(
            total_splits * costs.schedule_cycles_per_split, name="schedule"
        )
        metrics.stages.charge(STAGE_OTHERS, sim.now - t2)
        tracer.end(schedule)
        metrics.add("splits", total_splits)

        # (6) Build stage: the right side must finish before the dynamic
        # filter can exist, so it runs to completion first.
        build_span = tracer.start(
            "build-stage", parent=root, attributes={"splits": len(build_splits)}
        )
        build_outs = yield AllOf(
            sim,
            [
                sim.process(
                    self._run_split(
                        connector, build_handle, split, build_physical, metrics,
                        build_span, owner=query_id,
                    ),
                    name=f"build-split-{split.split_id}",
                )
                for split in build_splits
            ],
        )
        t3 = sim.now
        build_final_ops = self.backend.compile(build_physical.final_operators())
        build_batches = run_operators(
            [b for out in build_outs for b in out], build_final_ops
        )
        build_cycles = presto_pipeline_cycles(build_final_ops, costs)
        if build_cycles:
            yield cluster.compute.execute_spread(build_cycles, name="build-final")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t3)
        tracer.end(build_span)

        # (7) Publish the dynamic filter before any probe split is
        # scheduled, so every probe scan benefits.  Only an inner join may
        # prune probe rows at storage: an outer join preserves the probe
        # side, so a pushed range/Bloom predicate would drop rows that must
        # surface NULL-extended (including probe rows with NULL keys).
        policy = getattr(connector, "policy", None)
        pushed = getattr(probe_handle, "pushed", None)
        if (
            policy is not None
            and getattr(policy, "dynamic_filters", False)
            and pushed is not None
            and build_batches
            and join.kind == "inner"
        ):
            probe_key = join.left_keys[0]
            dyn = build_dynamic_filter(list(build_batches), join.right_keys[0])
            probe_dtype = probe_handle.table_schema.field(probe_key).dtype
            pushed.dynamic_filter = dyn.to_expression(probe_key, probe_dtype)
            metrics.add("dynamic_filter_build_rows", dyn.build_rows)
            metrics.add("dynamic_filter_distinct_keys", dyn.distinct_keys)
            root.set("dynamic_filter_keys", dyn.distinct_keys)

        # (8) Probe stage.
        probe_span = tracer.start(
            "probe-stage", parent=root, attributes={"splits": len(probe_splits)}
        )
        probe_outs = yield AllOf(
            sim,
            [
                sim.process(
                    self._run_split(
                        connector, probe_handle, split, probe_physical, metrics,
                        probe_span, owner=query_id,
                    ),
                    name=f"probe-split-{split.split_id}",
                )
                for split in probe_splits
            ],
        )
        t4 = sim.now
        probe_final_ops = self.backend.compile(probe_physical.final_operators())
        probe_batches = run_operators(
            [b for out in probe_outs for b in out], probe_final_ops
        )
        probe_cycles = presto_pipeline_cycles(probe_final_ops, costs)
        if probe_cycles:
            yield cluster.compute.execute_spread(probe_cycles, name="probe-final")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t4)
        tracer.end(probe_span)

        # (9) Exchange stage: move pages through the shuffle fabric.
        fabric = cluster.exchange
        client = cluster.exchange_client
        retry = getattr(connector, "retry_policy", None) or RetryPolicy()
        t5 = sim.now
        shuffle_start = cluster.shuffle_bytes()
        pages_start = fabric.pages_received
        retries_start = fabric.retries
        ex_span = tracer.start(
            "exchange", parent=root, stage=STAGE_EXCHANGE,
            attributes={"distribution": distribution, "partitions": workers},
        )
        put_procs = []
        seq = 0
        if distribution == "broadcast":
            # Replicate every build page to every join task; the probe
            # side stays local (tasks read their round-robin share of the
            # probe output without crossing the wire).
            build_ex = fabric.create(workers)
            for partition in range(workers):
                for batch in build_batches:
                    put_procs.append(
                        sim.process(
                            fabric.put(client, build_ex, partition, 0, seq,
                                       [batch], retry, parent=ex_span),
                            name=f"exchange-put-{seq}",
                        )
                    )
                    seq += 1
            if put_procs:
                yield AllOf(sim, put_procs)
            build_parts = [fabric.drain(build_ex, p) for p in range(workers)]
            task_inputs = [
                (list(build_parts[p].batches), probe_batches[p::workers],
                 build_parts[p].nbytes)
                for p in range(workers)
            ]
        else:
            # Hash-partition both sides by join key and shuffle each
            # partition to the task that owns it.
            build_ex = fabric.create(workers)
            probe_ex = fabric.create(workers)
            partition_rows = 0
            for batches, keys, ex_id in (
                (build_batches, join.right_keys, build_ex),
                (probe_batches, join.left_keys, probe_ex),
            ):
                for batch in batches:
                    partition_rows += batch.num_rows
                    for partition, part in enumerate(
                        hash_partition(batch, list(keys), workers)
                    ):
                        if part.num_rows == 0:
                            continue
                        put_procs.append(
                            sim.process(
                                fabric.put(client, ex_id, partition, 0, seq,
                                           [part], retry, parent=ex_span),
                                name=f"exchange-put-{seq}",
                            )
                        )
                        seq += 1
            if partition_rows:
                yield cluster.compute.execute(
                    partition_rows * costs.exchange_partition_cycles_per_row,
                    name="exchange-partition",
                )
            if put_procs:
                yield AllOf(sim, put_procs)
            build_parts = [fabric.drain(build_ex, p) for p in range(workers)]
            probe_parts = [fabric.drain(probe_ex, p) for p in range(workers)]
            task_inputs = [
                (list(build_parts[p].batches), list(probe_parts[p].batches),
                 build_parts[p].nbytes + probe_parts[p].nbytes)
                for p in range(workers)
            ]
        shuffle_delta = cluster.shuffle_bytes() - shuffle_start
        ex_span.set("bytes", shuffle_delta)
        ex_span.set("pages", fabric.pages_received - pages_start)
        metrics.add("exchange_bytes", shuffle_delta)
        metrics.add("exchange_pages", fabric.pages_received - pages_start)
        metrics.add("exchange_retries", fabric.retries - retries_start)
        metrics.stages.charge(STAGE_EXCHANGE, sim.now - t5)
        tracer.end(ex_span)

        # (10) Parallel join tasks: one hash-join per partition, plus the
        # split-local operators of the fragment above the join.
        t6 = sim.now
        join_span = tracer.start(
            "join-stage", parent=root, stage=STAGE_EXECUTION,
            attributes={"kind": join.kind, "tasks": workers},
        )
        build_schema = build_plan.output_schema()
        task_outs = yield AllOf(
            sim,
            [
                sim.process(
                    self._join_task(
                        p, join, build_schema, build_in, probe_in, nbytes,
                        above_physical, metrics, join_span,
                    ),
                    name=f"join-task-{p}",
                )
                for p, (build_in, probe_in, nbytes) in enumerate(task_inputs)
            ],
        )
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t6)
        tracer.end(join_span)

        # (11) Merge (final) stage over the join tasks' outputs.
        t7 = sim.now
        final_span = tracer.start("final-stage", parent=root, stage=STAGE_EXECUTION)
        final_ops = self.backend.compile(above_physical.final_operators())
        results = run_operators([b for out in task_outs for b in out], final_ops)
        final_cycles = presto_pipeline_cycles(final_ops, costs)
        yield cluster.compute.execute_spread(final_cycles, name="final-stage")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t7)
        tracer.end(final_span)

        batch = (
            concat_batches(results)
            if results
            else RecordBatch.empty(plan.output_schema())
        )
        utilization = {
            "compute_cores": cluster.compute.core_utilization(),
            "frontend_cores": cluster.frontend.core_utilization(),
            "link": cluster.link_cf.utilization(),
            "exchange_link": cluster.link_exchange.utilization(),
            "scan_drivers": cluster.scan_drivers.utilization(),
        }
        for i, node in enumerate(cluster.storage):
            utilization[f"storage_cores[{i}]"] = node.core_utilization()
        elapsed = sim.now - query_start
        stage_seconds = dict(metrics.stages.items())
        total = sum(stage_seconds.values())
        if total > elapsed > 0:
            scale = elapsed / total
            stage_seconds = {k: v * scale for k, v in stage_seconds.items()}
        tracer.end(root)
        return QueryResult(
            batch=batch,
            execution_seconds=elapsed,
            data_moved_bytes=cluster.bytes_to_compute() - bytes_start,
            splits=total_splits,
            plan_before=plan_before,
            plan_after=plan_after,
            metrics=metrics,
            stage_seconds=stage_seconds,
            utilization=utilization,
            trace=tracer.trace(root=root) if tracer.recording else None,
        )

    def _join_task(
        self,
        index: int,
        join: JoinNode,
        build_schema,
        build_batches,
        probe_batches,
        deserialize_bytes: int,
        above_physical: PhysicalPlan,
        metrics: MetricsRegistry,
        parent,
    ):
        """One join task: pay exchange deserialization, build, probe."""
        cluster = self.cluster
        costs = cluster.costs
        tracer = cluster.tracer
        span = tracer.start(
            f"join-task-{index}", parent=parent, stage=STAGE_EXECUTION,
            attributes={"partition": index},
        )
        try:
            if deserialize_bytes:
                yield cluster.compute.execute(
                    deserialize_bytes * costs.arrow_deserialize_cycles_per_byte,
                    name="exchange-deserialize",
                )
            op = HashJoinOperator(
                kind=join.kind,
                left_keys=list(join.left_keys),
                right_keys=list(join.right_keys),
                right_schema=build_schema,
                right_renames=dict(join.right_renames),
            )
            for build_batch in build_batches:
                op.add_build(build_batch)
            op.finish_build()
            task_ops: List[Operator] = [op]
            task_ops.extend(self.backend.compile(above_physical.split_operators()))
            out = run_operators(list(probe_batches), task_ops)
            cycles = presto_pipeline_cycles(task_ops, costs)
            if cycles:
                yield cluster.compute.execute(cycles, name=f"join-task-{index}")
            span.set("build_rows", op.build_rows)
            span.set("probe_rows", op.rows_in)
            for task_op in task_ops:
                metrics.add(f"rows_into_{task_op.name}", task_op.rows_in)
        finally:
            tracer.end(span)
        return out

    def _right_handle(
        self, statement, session: Session, catalog_name: str, connector: Connector
    ):
        """Resolve the joined table's handle (None for single-table queries)."""
        if not statement.joins:
            return None
        join_clause = statement.joins[0]
        right_catalog = join_clause.table.catalog or session.catalog
        if right_catalog != catalog_name:
            raise PlanError(
                f"cross-catalog joins are not supported "
                f"({catalog_name} vs {right_catalog})"
            )
        right_schema_name = join_clause.table.schema or session.schema
        return connector.get_table_handle(right_schema_name, join_clause.table.table)

    @staticmethod
    def _attach_handle(plan: PlanNode, handle, right_handle=None) -> None:
        node: Optional[PlanNode] = plan
        while node is not None:
            if isinstance(node, TableScanNode):
                node.connector_handle = handle
                return
            if isinstance(node, JoinNode):
                Coordinator._attach_handle(node.left, handle)
                Coordinator._attach_handle(
                    node.right,
                    right_handle if right_handle is not None else handle,
                )
                return
            children = node.children()
            node = children[0] if children else None
        raise NoSuchCatalogError("plan has no table scan to attach a handle to")


def _count_nodes(plan: PlanNode) -> int:
    count = 1
    for child in plan.children():
        count += _count_nodes(child)
    return count


def _find_join(plan: PlanNode) -> Optional[JoinNode]:
    """The plan's join, if any.  Joins sit below a linear operator chain."""
    node: Optional[PlanNode] = plan
    while node is not None:
        if isinstance(node, JoinNode):
            return node
        children = node.children()
        node = children[0] if children else None
    return None


def _find_scan(plan: PlanNode) -> TableScanNode:
    """The leaf scan of a linear (join-free) chain."""
    node: Optional[PlanNode] = plan
    while node is not None:
        if isinstance(node, TableScanNode):
            return node
        children = node.children()
        node = children[0] if children else None
    raise PlanError("plan branch has no table scan")


def _replace_join(plan: PlanNode, new_node: PlanNode) -> PlanNode:
    """Rebuild ``plan`` with its join substituted by ``new_node``."""
    if isinstance(plan, JoinNode):
        return new_node
    children = plan.children()
    if not children:
        raise PlanError("plan contains no join to replace")
    return plan.with_source(_replace_join(children[0], new_node))


def _handle_row_count(handle) -> int:
    """Metastore row count behind a connector handle (0 when unknown)."""
    descriptor = getattr(handle, "descriptor", None)
    return int(getattr(descriptor, "row_count", 0) or 0)
