"""The coordinator: the paper's Figure 3 pipeline end to end.

``execute`` runs one SQL statement: parse -> analyze -> logical plan ->
global optimize -> connector local optimize -> fragment -> schedule
splits -> drive execution on the simulated cluster -> gather results.
All real computation happens inline; all timing comes from the DES.

Stage attribution matches Table 3's rows: ``logical_plan_analysis``
(connector plan traversal), ``substrait_generation`` (charged by the OCS
connector's page source), ``pushdown_and_transfer`` (storage round trip
+ page materialization), ``presto_execution`` (post-scan operators), and
``others`` (coordination fixed costs + scheduling).

When the cluster's tracer records, the coordinator opens one root span
per query and mirrors every stage window with a ``stage``-tagged child
span, so the Table 3 breakdown is re-derivable from the span tree alone
(:func:`repro.trace.stage_totals`); spans add no simulated cost, so the
timings are bit-identical with tracing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.runtime import strict_verify_enabled
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.engine.cluster import Cluster
from repro.engine.costing import presto_pipeline_cycles
from repro.engine.physical import PhysicalPlan, fragment_plan
from repro.engine.session import Session
from repro.engine.spi import Connector, PageSourceResult
from repro.errors import NoSuchCatalogError
from repro.exec.operators import run_operators
from repro.plan.nodes import PlanNode, TableScanNode, format_plan
from repro.plan.optimizer import GlobalOptimizer
from repro.plan.planner import plan_query
from repro.sim.kernel import AllOf
from repro.sim.metrics import MetricsRegistry
from repro.sql.analyzer import analyze as analyze_statement
from repro.sql.parser import parse
from repro.trace import Trace, render_tree, stage_totals

__all__ = ["Coordinator", "QueryResult"]

STAGE_ANALYSIS = "logical_plan_analysis"
STAGE_SUBSTRAIT = "substrait_generation"
STAGE_TRANSFER = "pushdown_and_transfer"
STAGE_EXECUTION = "presto_execution"
STAGE_OTHERS = "others"


@dataclass
class QueryResult:
    """Everything one query run produced and measured."""

    batch: RecordBatch
    execution_seconds: float
    #: Bytes that crossed from the storage layer into the compute node.
    data_moved_bytes: int
    splits: int
    plan_before: str
    plan_after: str
    metrics: MetricsRegistry
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Mean busy fraction per resource over the query's lifetime, e.g.
    #: {"compute_cores": 0.02, "storage_cores[0]": 0.61, "link": 0.05}.
    utilization: Dict[str, float] = field(default_factory=dict)
    #: The query's span tree when the cluster ran with tracing enabled.
    trace: Optional[Trace] = None

    @property
    def rows(self) -> int:
        return self.batch.num_rows

    def to_pydict(self) -> Dict[str, list]:
        return self.batch.to_pydict()


class Coordinator:
    """Plans and runs queries against registered catalogs on one cluster."""

    def __init__(self, cluster: Cluster, catalogs: Dict[str, Connector]) -> None:
        self.cluster = cluster
        self.catalogs = dict(catalogs)

    def connector_for(self, name: str) -> Connector:
        try:
            return self.catalogs[name]
        except KeyError:
            raise NoSuchCatalogError(
                f"catalog {name!r}; registered: {sorted(self.catalogs)}"
            ) from None

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, session: Session) -> QueryResult:
        """Run one statement to completion; returns results + measurements."""
        cluster = self.cluster
        process = cluster.sim.process(self._run_query(sql, session), name="query")
        result = cluster.sim.run(until=process)
        return result

    def query_process(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
    ):
        """The query as a schedulable DES generator (re-entrant form).

        :meth:`execute` drives one query to completion on an otherwise
        idle cluster; the multi-tenant query service instead spawns many
        of these concurrently on one shared cluster.  Each call gets its
        own metrics registry and span root (parented under ``parent``
        when given, so a service-level trace nests the query), and
        ``query_id`` tags resource claims for per-query accounting.
        """
        return self._run_query(sql, session, metrics=metrics, parent=parent, query_id=query_id)

    def explain(self, sql: str, session: Session, analyze: bool = False) -> str:
        """Plan (without executing) and describe what would happen.

        Shows the optimized logical plan, the plan after the connector's
        local optimizer, the operators merged into the scan handle with
        their selectivity estimates, and the split structure — Presto's
        EXPLAIN, extended with the paper's pushdown vocabulary.

        With ``analyze=True`` the query actually runs (with tracing
        forced on) and the output is the recorded span tree plus the
        span-derived Table 3 stage breakdown — ``EXPLAIN ANALYZE``.
        """
        if analyze:
            return self._explain_analyze(sql, session)
        statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        query = analyze_statement(statement, handle.table_schema)
        plan: PlanNode = plan_query(query)
        self._attach_handle(plan, handle)
        plan = GlobalOptimizer().optimize(plan)
        before = format_plan(plan)

        optimizer = connector.plan_optimizer()
        metrics = MetricsRegistry()
        if optimizer is not None:
            plan = optimizer.optimize(plan, metrics)
        after = format_plan(plan)

        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)

        lines = [
            f"EXPLAIN {' '.join(sql.split())}",
            "",
            "Logical plan (after global optimization):",
            before,
            "",
            f"After {type(connector).__name__} local optimizer:",
            after,
        ]
        pushed = getattr(scan_handle, "pushed", None)
        if pushed is not None:
            operators = pushed.operator_names() or ["(none)"]
            lines += ["", f"Pushed to storage: {', '.join(operators)}"]
            if getattr(scan_handle, "estimated_selectivity", None) is not None:
                lines.append(
                    f"  estimated filter selectivity: "
                    f"{scan_handle.estimated_selectivity:.4%}"
                )
            if getattr(scan_handle, "estimated_output_rows", None) is not None:
                lines.append(
                    f"  estimated aggregation groups: "
                    f"{scan_handle.estimated_output_rows:,}"
                )
        lines.append("")
        lines.append(f"Splits: {len(splits)}")
        return "\n".join(lines)

    def _explain_analyze(self, sql: str, session: Session) -> str:
        """Run the query with tracing forced on; render tree + stages."""
        tracer = self.cluster.tracer
        was_enabled = tracer.enabled
        tracer.enabled = True
        try:
            result = self.execute(sql, session)
        finally:
            tracer.enabled = was_enabled
        lines = [
            f"EXPLAIN ANALYZE {' '.join(sql.split())}",
            "",
            f"wall time: {result.execution_seconds * 1e3:.3f} ms    "
            f"rows: {result.rows:,}    "
            f"data moved: {result.data_moved_bytes:,} B    "
            f"splits: {result.splits}",
            "",
            render_tree(result.trace),
            "",
            "Stage breakdown (derived from spans):",
        ]
        totals = stage_totals(result.trace, elapsed=result.execution_seconds)
        for stage in (
            STAGE_ANALYSIS,
            STAGE_SUBSTRAIT,
            STAGE_TRANSFER,
            STAGE_EXECUTION,
            STAGE_OTHERS,
        ):
            seconds = totals.get(stage, 0.0)
            lines.append(f"  {stage:<24} {seconds * 1e3:10.3f} ms")
        return "\n".join(lines)

    # -- the query process ----------------------------------------------------------

    def _run_query(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
    ):
        cluster = self.cluster
        sim = cluster.sim
        costs = cluster.costs
        # Per-query scoped: consecutive/concurrent queries on one shared
        # cluster must not see each other's counters or stage windows.
        metrics = metrics if metrics is not None else MetricsRegistry()
        tracer = cluster.tracer

        # (0) Coordination overhead ("others" in Table 3).  Every stage
        # window below is mirrored by a stage-tagged span over the same
        # instants, so span-derived totals reproduce ``stage_seconds``.
        query_start = sim.now
        bytes_start = cluster.bytes_to_compute()
        root = tracer.start(
            "query", parent=parent, attributes={"sql": " ".join(sql.split())}
        )
        t0 = sim.now
        startup = tracer.start("startup", parent=root, stage=STAGE_OTHERS)
        yield cluster.compute.execute(costs.coordinator_fixed_cycles, name="coordinate")

        # (1-3) Parse, analyze, logical plan, global optimization.  These
        # run inline (instantaneous in simulated time) — their spans are
        # zero-width markers recording the pipeline's structure.
        with tracer.span("parse", parent=startup):
            statement = parse(sql)
        catalog_name = statement.from_table.catalog or session.catalog
        schema_name = statement.from_table.schema or session.schema
        connector = self.connector_for(catalog_name)
        handle = connector.get_table_handle(schema_name, statement.from_table.table)
        with tracer.span("analyze", parent=startup):
            query = analyze_statement(statement, handle.table_schema)
        with tracer.span("plan.logical", parent=startup):
            plan: PlanNode = plan_query(query)
            self._attach_handle(plan, handle)
        with tracer.span("optimize.global", parent=startup):
            if strict_verify_enabled():
                # Global rewrites must preserve the analyzed plan's output
                # schema; verify both sides under strict verification.
                from repro.analysis.verifier import verify_logical_plan

                pre_schema = verify_logical_plan(plan)
                plan = GlobalOptimizer().optimize(plan)
                post_schema = verify_logical_plan(plan)
                if pre_schema.names() != post_schema.names() or any(
                    a.dtype is not b.dtype for a, b in zip(pre_schema, post_schema)
                ):
                    from repro.errors import VerificationError

                    raise VerificationError(
                        f"global optimization changed the output schema from "
                        f"{pre_schema.names()} to {post_schema.names()}"
                    )
            else:
                plan = GlobalOptimizer().optimize(plan)
        plan_before = format_plan(plan)
        metrics.stages.charge(STAGE_OTHERS, sim.now - t0)
        tracer.end(startup)

        # (4) Connector-specific (local) optimization — the SPI hook.
        t1 = sim.now
        local_opt = tracer.start("optimize.local", parent=root, stage=STAGE_ANALYSIS)
        optimizer = connector.plan_optimizer()
        if optimizer is not None:
            node_count = _count_nodes(plan)
            yield cluster.compute.execute(
                node_count * costs.plan_analysis_cycles_per_node, name="local-opt"
            )
            plan = optimizer.optimize(plan, metrics)
        plan_after = format_plan(plan)
        metrics.stages.charge(STAGE_ANALYSIS, sim.now - t1)
        tracer.end(local_opt)

        # (5) Physical planning + (6) split generation and scheduling.
        t2 = sim.now
        schedule = tracer.start("schedule", parent=root, stage=STAGE_OTHERS)
        physical = fragment_plan(plan)
        scan_handle = physical.scan.connector_handle
        splits = connector.get_splits(scan_handle)
        schedule.set("splits", len(splits))
        yield cluster.compute.execute(
            len(splits) * costs.schedule_cycles_per_split, name="schedule"
        )
        metrics.stages.charge(STAGE_OTHERS, sim.now - t2)
        tracer.end(schedule)
        metrics.add("splits", len(splits))

        # Split drivers (scan stage).
        split_processes = [
            sim.process(
                self._run_split(
                    connector, scan_handle, split, physical, metrics, root,
                    owner=query_id,
                ),
                name=f"split-{split.split_id}",
            )
            for split in splits
        ]
        split_outputs = yield AllOf(sim, split_processes)

        # Merge (final) stage.
        t3 = sim.now
        final_span = tracer.start("final-stage", parent=root, stage=STAGE_EXECUTION)
        batches: List[RecordBatch] = [b for out in split_outputs for b in out]
        final_ops = physical.final_operators()
        results = run_operators(batches, final_ops)
        final_cycles = presto_pipeline_cycles(final_ops, costs)
        yield cluster.compute.execute_spread(final_cycles, name="final-stage")
        metrics.stages.charge(STAGE_EXECUTION, sim.now - t3)
        tracer.end(final_span)

        batch = (
            concat_batches(results)
            if results
            else RecordBatch.empty(plan.output_schema())
        )
        utilization = {
            "compute_cores": cluster.compute.core_utilization(),
            "frontend_cores": cluster.frontend.core_utilization(),
            "link": cluster.link_cf.utilization(),
            "scan_drivers": cluster.scan_drivers.utilization(),
        }
        for i, node in enumerate(cluster.storage):
            utilization[f"storage_cores[{i}]"] = node.core_utilization()
        # Stage attribution must partition the wall time: window union
        # keeps concurrent splits from double charging, but stages that
        # overlap *each other* (e.g. one split transferring while another
        # runs operators) can still push the sum past the elapsed time.
        # Scale the reported copy down so Table 3 always partitions;
        # serial runs are untouched (total <= elapsed there).
        elapsed = sim.now - query_start
        stage_seconds = dict(metrics.stages.items())
        total = sum(stage_seconds.values())
        if total > elapsed > 0:
            scale = elapsed / total
            stage_seconds = {k: v * scale for k, v in stage_seconds.items()}
        tracer.end(root)
        return QueryResult(
            batch=batch,
            execution_seconds=elapsed,
            # Delta over the link ledger: exact for a dedicated cluster;
            # on a shared cluster concurrent queries interleave on the
            # link, so the service reports per-query movement from the
            # per-query ``bytes_received`` counter instead.
            data_moved_bytes=cluster.bytes_to_compute() - bytes_start,
            splits=len(splits),
            plan_before=plan_before,
            plan_after=plan_after,
            metrics=metrics,
            stage_seconds=stage_seconds,
            utilization=utilization,
            trace=tracer.trace(root=root) if tracer.recording else None,
        )

    def _run_split(
        self, connector: Connector, handle, split, physical: PhysicalPlan, metrics,
        parent=None, owner: Optional[str] = None,
    ):
        cluster = self.cluster
        sim = cluster.sim
        stages = metrics.stages
        tracer = cluster.tracer
        split_span = tracer.start(
            f"split-{split.split_id}",
            parent=parent,
            attributes={"split": split.split_id, "node": split.node_index},
        )
        try:
            with cluster.scan_drivers.request(owner=owner) as driver:
                yield driver
                # Data acquisition: storage round trip + page
                # materialization.  Concurrent splits each open a stage
                # *window*; the timer unions overlapping windows so
                # wall-clock is charged once, not once per split
                # (otherwise the per-stage sum could exceed the query's
                # elapsed time).  The OCS page source pauses the transfer
                # window around IR generation so the substrait stage stays
                # separable; its connector-side spans carry the matching
                # stage tags, so only the ingest tail is tagged here.
                stages.begin(STAGE_TRANSFER, sim.now)
                try:
                    source: PageSourceResult = yield sim.process(
                        connector.page_source(handle, split, metrics, trace=split_span),
                        name=f"page-source-{split.split_id}",
                    )
                    ingest_span = tracer.start(
                        "ingest",
                        parent=split_span,
                        stage=STAGE_TRANSFER,
                        attributes={"bytes": source.bytes_received},
                    )
                    try:
                        if source.ingest_cycles:
                            yield cluster.compute.execute(
                                source.ingest_cycles, name="ingest"
                            )
                    finally:
                        tracer.end(ingest_span)
                finally:
                    stages.end(STAGE_TRANSFER, sim.now)
                metrics.add("bytes_received", source.bytes_received)

                # Split-local operators (real work + cost charge).
                stages.begin(STAGE_EXECUTION, sim.now)
                ops_span = tracer.start(
                    "split-operators", parent=split_span, stage=STAGE_EXECUTION
                )
                try:
                    split_ops = physical.split_operators()
                    out = run_operators(source.batches, split_ops)
                    cycles = presto_pipeline_cycles(split_ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute(cycles, name="split-ops")
                finally:
                    stages.end(STAGE_EXECUTION, sim.now)
                    tracer.end(ops_span)
                for op in split_ops:
                    metrics.add(f"rows_into_{op.name}", op.rows_in)
        finally:
            tracer.end(split_span)
        return out

    @staticmethod
    def _attach_handle(plan: PlanNode, handle) -> None:
        node: Optional[PlanNode] = plan
        while node is not None:
            if isinstance(node, TableScanNode):
                node.connector_handle = handle
                return
            children = node.children()
            node = children[0] if children else None
        raise NoSuchCatalogError("plan has no table scan to attach a handle to")


def _count_nodes(plan: PlanNode) -> int:
    count = 1
    for child in plan.children():
        count += _count_nodes(child)
    return count
