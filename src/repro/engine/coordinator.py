"""The coordinator: the paper's Figure 3 pipeline end to end.

``execute`` runs one SQL statement: parse -> analyze -> logical plan ->
global optimize -> connector local optimize -> **lower to a stage
graph** -> hand the graph to the DAG scheduler -> gather results.  All
real computation happens inline; all timing comes from the DES.

Queries no longer run down hard-coded pipelines.  :meth:`Coordinator.
_lower` turns every plan — single-table scans and chains of equi-joins
alike — into a typed :class:`~repro.engine.dag.StageGraph` (scan,
filter, exchange, join, aggregate, merge stages with schema-carrying
edges), and :class:`~repro.engine.scheduler.DagScheduler` runs any
stage the moment its inputs complete.  That one change buys N-way
joins (TPC-H Q3's customer ⋈ orders ⋈ lineitem lowers to two join
levels), concurrent independent scans, speculative re-execution of
straggler splits, and stage-level restart after exchange faults —
without per-shape coordinator code.

Stage attribution matches Table 3's rows: ``logical_plan_analysis``
(connector plan traversal), ``substrait_generation`` (charged by the OCS
connector's page source), ``pushdown_and_transfer`` (storage round trip
+ page materialization), ``presto_execution`` (post-scan operators), and
``others`` (coordination fixed costs + scheduling).

When the cluster's tracer records, the coordinator opens one root span
per query, the scheduler wraps each stage in an (untagged)
``stage:<id>`` span, and every stage window is mirrored by a
``stage``-tagged child span over the same instants, so the Table 3
breakdown is re-derivable from the span tree alone
(:func:`repro.trace.stage_totals`); spans add no simulated cost, so the
timings are bit-identical with tracing on or off.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.analysis.runtime import strict_verify_enabled
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.arrowsim.schema import Schema
from repro.cache.manager import CacheManager, object_version_signature
from repro.engine.cluster import Cluster
from repro.engine.costing import choose_join_distribution, presto_pipeline_cycles
from repro.engine.dag import Stage, StageContext, StageGraph
from repro.engine.physical import PhysicalPlan, fragment_plan
from repro.engine.scheduler import DagScheduler, SchedulerSpec, run_splits
from repro.engine.session import Session
from repro.engine.spi import Connector, ConnectorSplit, PageSourceResult
from repro.errors import AnalysisError, EngineError, NoSuchCatalogError, PlanError
from repro.exchange.filters import build_dynamic_filter
from repro.exchange.partition import hash_partition
from repro.exec.backend import ExecBackend, get_backend
from repro.exec.operators import HashJoinOperator, HashAggregationOperator, Operator, run_operators
from repro.plan.nodes import (
    JoinNode,
    OutputNode,
    PlanNode,
    TableScanNode,
    format_plan,
)
from repro.plan.optimizer import GlobalOptimizer
from repro.plan.planner import plan_query
from repro.rewrite import (
    RewriteContext,
    RuleFiring,
    derived_schema,
    rewrite_statement,
)
from repro.rpc.retry import RetryPolicy
from repro.sim.kernel import AllOf
from repro.sim.metrics import MetricsRegistry, StageAccountant
from repro.sql.analyzer import analyze as analyze_statement
from repro.sql.ast_nodes import (
    CommonTableExpr,
    DateLiteral,
    Expression,
    Literal,
    SelectStatement,
    TableName,
)
from repro.sql.parser import parse
from repro.trace import Trace, render_tree, stage_totals

__all__ = ["Coordinator", "MaterializedHandle", "QueryResult"]

STAGE_ANALYSIS = "logical_plan_analysis"
STAGE_SUBSTRAIT = "substrait_generation"
STAGE_TRANSFER = "pushdown_and_transfer"
STAGE_EXECUTION = "presto_execution"
STAGE_EXCHANGE = "exchange"
STAGE_OTHERS = "others"


@dataclass
class QueryResult:
    """Everything one query run produced and measured."""

    batch: RecordBatch
    execution_seconds: float
    #: Bytes that crossed from the storage layer into the compute node.
    data_moved_bytes: int
    splits: int
    plan_before: str
    plan_after: str
    metrics: MetricsRegistry
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Mean busy fraction per resource over the query's lifetime, e.g.
    #: {"compute_cores": 0.02, "storage_cores[0]": 0.61, "link": 0.05}.
    utilization: Dict[str, float] = field(default_factory=dict)
    #: The query's span tree when the cluster ran with tracing enabled.
    trace: Optional[Trace] = None
    #: The stage graph the query ran through (EXPLAIN renders this).
    stage_graph: Optional[StageGraph] = None

    @property
    def rows(self) -> int:
        return self.batch.num_rows

    def to_pydict(self) -> Dict[str, list]:
        return self.batch.to_pydict()


@dataclass
class _Branch:
    """One scan branch of the lowered graph (base table or join build)."""

    stage_id: str
    table: str
    plan: PlanNode
    physical: PhysicalPlan
    handle: Any
    splits: List[ConnectorSplit]


@dataclass
class _SplitProbe:
    """Split-cache keys for one branch plus the lowering-time hit set.

    Computed by :meth:`Coordinator._split_probe` with pure peeks (no
    recency or stats mutation) so EXPLAIN can lower without executing.
    The *shape* of the graph is fixed here; the cached stage re-checks
    each entry with a real versioned lookup at run time and falls back
    to the pushdown path for anything evicted or invalidated in between.
    """

    keys: List[Hashable]
    hits: List[int]
    misses: List[int]


@dataclass
class _Lowered:
    """Everything :meth:`Coordinator._lower` produced for one query."""

    graph: StageGraph
    plan_after: str
    branches: List[_Branch]
    total_splits: int
    #: Plan-node count driving the local-optimization cycle charge
    #: (0 when the connector has no local optimizer).
    analysis_nodes: int
    output_schema: Schema
    result_stage: str
    has_exchange: bool


@dataclass
class MaterializedHandle:
    """Connector-handle stand-in for a rewriter-materialized CTE.

    The coordinator executes the CTE body once and parks the result
    here; every reference then scans ``batches`` locally instead of
    pushing to storage.  The handle deliberately has no ``descriptor``
    and no ``pushed`` plan, so split/result caching and pushdown both
    disable themselves for materialized branches (there is no object
    version signature to invalidate against).
    """

    name: str
    table_schema: Schema
    batches: List[RecordBatch] = field(default_factory=list)


@dataclass
class _Prepared:
    """parse -> rewrite output for one statement.

    ``statement`` is the rewritten form with the WITH clause stripped
    (every surviving CTE is listed in ``cte_jobs`` for one-shot
    materialization); ``scalar_jobs`` are the uncorrelated scalar
    subqueries the run path must execute before the deterministic
    second rewrite pass substitutes their values.
    """

    original: SelectStatement
    statement: SelectStatement
    firings: List[RuleFiring]
    scalar_jobs: List[SelectStatement]
    cte_jobs: List[CommonTableExpr]
    cte_schemas: Dict[str, Schema]


class Coordinator:
    """Plans and runs queries against registered catalogs on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        catalogs: Dict[str, Connector],
        exec_backend: Union[str, ExecBackend] = "tree",
        scheduler: Optional[SchedulerSpec] = None,
        rewrite: bool = True,
        rewrite_budget: int = 32,
    ) -> None:
        self.cluster = cluster
        self.catalogs = dict(catalogs)
        #: Compiles every compute-side operator pipeline before it runs
        #: (tree-walk reference vs fused vectorized kernels).
        self.backend = get_backend(exec_backend)
        #: Restart/speculation policy handed to every query's scheduler.
        self.scheduler_spec = scheduler if scheduler is not None else SchedulerSpec()
        #: Run the rule-driven logical rewriter between parse and
        #: analysis.  Off, subquery expressions and WITH clauses reach
        #: the analyzer unrewritten and fail with a clear diagnostic.
        self.rewrite = rewrite
        #: Fixpoint budget: max rule applications per statement.
        self.rewrite_budget = rewrite_budget

    def connector_for(self, name: str) -> Connector:
        try:
            return self.catalogs[name]
        except KeyError:
            raise NoSuchCatalogError(
                f"catalog {name!r}; registered: {sorted(self.catalogs)}"
            ) from None

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str, session: Session) -> QueryResult:
        """Run one statement to completion; returns results + measurements."""
        cluster = self.cluster
        process = cluster.sim.process(self._run_query(sql, session), name="query")
        result = cluster.sim.run(until=process)
        return result

    def query_process(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
        tenant: str = "default",
    ):
        """The query as a schedulable DES generator (re-entrant form).

        :meth:`execute` drives one query to completion on an otherwise
        idle cluster; the multi-tenant query service instead spawns many
        of these concurrently on one shared cluster.  Each call gets its
        own metrics registry and span root (parented under ``parent``
        when given, so a service-level trace nests the query),
        ``query_id`` tags resource claims for per-query accounting, and
        ``tenant`` owns the query's cache fills for quota accounting.
        """
        return self._run_query(
            sql, session, metrics=metrics, parent=parent, query_id=query_id,
            tenant=tenant,
        )

    def explain(self, sql: str, session: Session, analyze: bool = False) -> str:
        """Plan (without executing) and describe what would happen.

        Shows the optimized logical plan, the plan after the connector's
        local optimizer, the operators merged into the scan handle with
        their selectivity estimates, the split structure, and the stage
        graph the scheduler would run — Presto's EXPLAIN, extended with
        the paper's pushdown vocabulary.

        With ``analyze=True`` the query actually runs (with tracing
        forced on) and the output is the recorded span tree, the
        span-derived Table 3 stage breakdown, and the stage graph with
        per-stage timings — ``EXPLAIN ANALYZE``.
        """
        if analyze:
            return self._explain_analyze(sql, session)
        plan, plan_before, connector, prepared = self._plan_statement(sql, session)
        lowered = self._lower(plan, connector, MetricsRegistry())

        lines = [f"EXPLAIN {' '.join(sql.split())}", ""]
        if prepared.firings:
            # Omitted entirely when no rule fired: the section only
            # exists to explain a statement that actually changed.
            lines.append("Rewrite (rules fired):")
            for i, firing in enumerate(prepared.firings, start=1):
                lines.append(f"  {i}. {firing.rule}: {firing.detail}")
            lines.append("")
        lines += [
            "Logical plan (after global optimization):",
            plan_before,
        ]
        if len(lowered.branches) == 1:
            # Single-table: the classic EXPLAIN shape.
            branch = lowered.branches[0]
            lines += [
                "",
                f"After {type(connector).__name__} local optimizer:",
                lowered.plan_after,
            ]
            lines += self._pushed_lines(branch.handle)
        else:
            lines += [
                "",
                f"After {type(connector).__name__} local optimizer:",
                lowered.plan_after,
            ]
            for branch in lowered.branches:
                lines += [
                    "",
                    f"Branch {branch.stage_id} after "
                    f"{type(connector).__name__} local optimizer:",
                    format_plan(branch.plan),
                ]
                lines += self._pushed_lines(branch.handle, label=branch.stage_id)
        lines.append("")
        lines.append("Stage graph:")
        lines.append(lowered.graph.render())
        lines.append("")
        lines.append(f"Splits: {lowered.total_splits}")
        return "\n".join(lines)

    @staticmethod
    def _pushed_lines(handle, label: Optional[str] = None) -> List[str]:
        pushed = getattr(handle, "pushed", None)
        if pushed is None:
            return []
        operators = pushed.operator_names() or ["(none)"]
        suffix = f" ({label})" if label else ""
        lines = ["", f"Pushed to storage{suffix}: {', '.join(operators)}"]
        if getattr(handle, "estimated_selectivity", None) is not None:
            lines.append(
                f"  estimated filter selectivity: "
                f"{handle.estimated_selectivity:.4%}"
            )
        if getattr(handle, "estimated_output_rows", None) is not None:
            lines.append(
                f"  estimated aggregation groups: "
                f"{handle.estimated_output_rows:,}"
            )
        return lines

    def _explain_analyze(self, sql: str, session: Session) -> str:
        """Run the query with tracing forced on; render tree + stages."""
        tracer = self.cluster.tracer
        was_enabled = tracer.enabled
        tracer.enabled = True
        try:
            result = self.execute(sql, session)
        finally:
            tracer.enabled = was_enabled
        lines = [
            f"EXPLAIN ANALYZE {' '.join(sql.split())}",
            "",
            f"wall time: {result.execution_seconds * 1e3:.3f} ms    "
            f"rows: {result.rows:,}    "
            f"data moved: {result.data_moved_bytes:,} B    "
            f"splits: {result.splits}",
            "",
            render_tree(result.trace),
            "",
            "Stage breakdown (derived from spans):",
        ]
        totals = stage_totals(result.trace, elapsed=result.execution_seconds)
        for stage in (
            STAGE_ANALYSIS,
            STAGE_SUBSTRAIT,
            STAGE_TRANSFER,
            STAGE_EXCHANGE,
            STAGE_EXECUTION,
            STAGE_OTHERS,
        ):
            seconds = totals.get(stage, 0.0)
            lines.append(f"  {stage:<24} {seconds * 1e3:10.3f} ms")
        if result.stage_graph is not None:
            timings: Dict[str, float] = {}
            for span in result.trace:
                if span.name.startswith("stage:") and span.end is not None:
                    sid = span.name[len("stage:"):]
                    timings[sid] = timings.get(sid, 0.0) + span.duration
            lines.append("")
            lines.append("Stage graph (per-stage wall time):")
            lines.append(result.stage_graph.render(timings=timings))
        return "\n".join(lines)

    # -- planning --------------------------------------------------------------

    def _schema_resolver(self, session: Session) -> Callable[[TableName], Schema]:
        """Catalog schema lookup for rewrite-rule guards."""

        def resolve(name: TableName) -> Schema:
            # Unknown catalogs/tables surface as SqlError so rules decline
            # and the planning path owns the real diagnostic (including
            # the cross-catalog-join rejection).
            try:
                connector = self.connector_for(name.catalog or session.catalog)
                handle = connector.get_table_handle(
                    name.schema or session.schema, name.table
                )
            except EngineError as exc:
                raise AnalysisError(str(exc)) from exc
            return handle.table_schema

        return resolve

    def _prepare_statement(
        self,
        sql: str,
        session: Session,
        tracer,
        startup,
        scalar_results: Optional[Dict[str, Expression]] = None,
    ) -> _Prepared:
        """parse -> rewrite (rule fixpoint).

        ``scalar_results`` maps a scalar subquery's SQL to its computed
        literal; absent entries get a typed placeholder and are recorded
        in ``scalar_jobs`` so the run path can execute them and re-run
        this (deterministic) pass with the real values.
        """
        with tracer.span("parse", parent=startup):
            original = parse(sql)
        if not self.rewrite:
            return _Prepared(original, original, [], [], [], {})

        scalar_jobs: List[SelectStatement] = []

        def scalar_value(sub: SelectStatement) -> Expression:
            key = sub.to_sql()
            if scalar_results is not None and key in scalar_results:
                return scalar_results[key]
            scalar_jobs.append(sub)
            return self._placeholder_literal(sub, ctx)

        ctx = RewriteContext(
            resolve=self._schema_resolver(session), scalar_value=scalar_value
        )
        result = rewrite_statement(
            original, ctx, budget=self.rewrite_budget, tracer=tracer, parent=startup
        )
        statement = result.statement
        cte_jobs = [cte for cte in statement.ctes if cte.materialized]
        if statement.ctes and all(c.materialized for c in statement.ctes):
            # Every binding is pinned for one-shot materialization; the
            # analyzer never sees the WITH clause.  (A residual
            # non-materialized CTE stays put so the analyzer reports it.)
            statement = replace(statement, ctes=())
        cte_schemas = {
            cte.name: derived_schema(cte.query, ctx) for cte in cte_jobs
        }
        return _Prepared(
            original=original,
            statement=statement,
            firings=list(result.firings),
            scalar_jobs=scalar_jobs,
            cte_jobs=cte_jobs,
            cte_schemas=cte_schemas,
        )

    def _placeholder_literal(
        self, sub: SelectStatement, ctx: RewriteContext
    ) -> Expression:
        """Typed stand-in for a scalar subquery on the pure (EXPLAIN) path."""
        dtype = derived_schema(sub, ctx).fields[0].dtype
        name = dtype.name
        if name == "date32":
            return DateLiteral("1970-01-01")
        if name in ("float32", "float64"):
            return Literal(0.0)
        if name == "bool":
            return Literal(False)
        if name == "string":
            return Literal("")
        return Literal(0)

    @staticmethod
    def _scalar_literal(batch: RecordBatch) -> Expression:
        """Literal AST node for an executed scalar subquery's result."""
        if batch.num_rows != 1:
            raise PlanError(
                f"scalar subquery returned {batch.num_rows} rows "
                f"(must return exactly 1)"
            )
        field_ = batch.schema.fields[0]
        value = batch.columns[0].to_pylist()[0]
        if value is None:
            raise PlanError("scalar subquery returned NULL")
        if field_.dtype.name == "date32":
            import datetime

            iso = (
                datetime.date(1970, 1, 1) + datetime.timedelta(days=int(value))
            ).isoformat()
            return DateLiteral(iso)
        return Literal(value)

    def _resolve_handle(
        self,
        table: TableName,
        session: Session,
        materialized: Dict[str, MaterializedHandle],
    ) -> Any:
        """Table handle: rewriter-materialized CTEs first, then the catalog."""
        if (
            table.catalog is None
            and table.schema is None
            and table.table in materialized
        ):
            return materialized[table.table]
        connector = self.connector_for(table.catalog or session.catalog)
        return connector.get_table_handle(
            table.schema or session.schema, table.table
        )

    def _plan_prepared(
        self,
        prepared: _Prepared,
        session: Session,
        tracer,
        startup,
        materialized: Dict[str, MaterializedHandle],
    ):
        """analyze -> logical plan -> global optimize (post-rewrite).

        Returns the optimized plan, its rendering, and the resolved
        connector.  A semi/anti join clause contributes the schema of
        its *subquery's* FROM table (the analyzer plans the derived
        table itself); handles key by scanned-table name, which covers
        both catalog tables and materialized CTE temporaries.
        """
        statement = prepared.statement
        catalog_name = statement.from_table.catalog or session.catalog
        connector = self.connector_for(catalog_name)
        handle = self._resolve_handle(statement.from_table, session, materialized)
        join_handles: List[Any] = []
        join_schemas: List[Schema] = []
        handle_keys: List[str] = []
        for clause in statement.joins:
            source = (
                clause.subquery.from_table
                if clause.subquery is not None
                else clause.table
            )
            is_materialized = (
                source.catalog is None
                and source.schema is None
                and source.table in materialized
            )
            if not is_materialized:
                join_catalog = source.catalog or session.catalog
                if join_catalog != catalog_name:
                    raise PlanError(
                        f"cross-catalog joins are not supported "
                        f"({catalog_name} vs {join_catalog})"
                    )
            join_handle = self._resolve_handle(source, session, materialized)
            join_handles.append(join_handle)
            join_schemas.append(join_handle.table_schema)
            handle_keys.append(source.table)
        with tracer.span("analyze", parent=startup):
            if join_handles:
                query = analyze_statement(
                    statement, handle.table_schema, join_schemas=join_schemas
                )
            else:
                query = analyze_statement(statement, handle.table_schema)
        with tracer.span("plan.logical", parent=startup):
            plan: PlanNode = plan_query(query)
            handles_by_table = {statement.from_table.table: handle}
            for key, join_handle in zip(handle_keys, join_handles):
                handles_by_table[key] = join_handle
            self._attach_handles(plan, handles_by_table)
        with tracer.span("optimize.global", parent=startup):
            if strict_verify_enabled():
                # Global rewrites must preserve the analyzed plan's output
                # schema; verify both sides under strict verification.
                from repro.analysis.verifier import verify_logical_plan

                pre_schema = verify_logical_plan(plan)
                plan = GlobalOptimizer().optimize(plan)
                post_schema = verify_logical_plan(plan)
                if pre_schema.names() != post_schema.names() or any(
                    a.dtype is not b.dtype for a, b in zip(pre_schema, post_schema)
                ):
                    from repro.errors import VerificationError

                    raise VerificationError(
                        f"global optimization changed the output schema from "
                        f"{pre_schema.names()} to {post_schema.names()}"
                    )
            else:
                plan = GlobalOptimizer().optimize(plan)
        if strict_verify_enabled() and prepared.firings:
            # The rewritten plan must still produce the output shape the
            # pre-rewrite statement declared.
            from repro.analysis.verifier import verify_rewrite

            verify_rewrite(prepared.original, plan)
        return plan, format_plan(plan), connector

    def _plan_statement(self, sql: str, session: Session, tracer=None, startup=None):
        """parse -> rewrite -> analyze -> logical plan -> global optimize.

        The pure planning path shared by :meth:`explain` (no tracer) and
        the no-subexecution fast path of the query process.  Scalar
        subqueries keep their typed placeholders and materialized CTEs
        lower against schema-only (batch-less) handles, so no simulated
        time passes.  Returns the plan, its rendering, the connector,
        and the :class:`_Prepared` record (for EXPLAIN's Rewrite
        section).
        """
        from repro.trace.tracer import NOOP_TRACER

        tracer = tracer if tracer is not None else NOOP_TRACER
        prepared = self._prepare_statement(sql, session, tracer, startup)
        materialized = {
            name: MaterializedHandle(name=name, table_schema=schema)
            for name, schema in prepared.cte_schemas.items()
        }
        plan, plan_after, connector = self._plan_prepared(
            prepared, session, tracer, startup, materialized
        )
        return plan, plan_after, connector, prepared

    # -- the query process ----------------------------------------------------------

    def _run_query(
        self,
        sql: str,
        session: Session,
        *,
        metrics: Optional[MetricsRegistry] = None,
        parent=None,
        query_id: Optional[str] = None,
        tenant: str = "default",
    ):
        cluster = self.cluster
        sim = cluster.sim
        costs = cluster.costs
        # Per-query scoped: consecutive/concurrent queries on one shared
        # cluster must not see each other's counters or stage windows.
        metrics = metrics if metrics is not None else MetricsRegistry()
        tracer = cluster.tracer
        accountant = StageAccountant(sim, metrics.stages)

        # (0) Coordination overhead ("others" in Table 3).  Every stage
        # window below is mirrored by a stage-tagged span over the same
        # instants, so span-derived totals reproduce ``stage_seconds``.
        query_start = sim.now
        bytes_start = cluster.bytes_to_compute()
        retries_start = cluster.exchange.retries
        root = tracer.start(
            "query", parent=parent, attributes={"sql": " ".join(sql.split())}
        )
        startup = tracer.start("startup", parent=root, stage=STAGE_OTHERS)
        with accountant.charged(STAGE_OTHERS):
            yield cluster.compute.execute(
                costs.coordinator_fixed_cycles, name="coordinate"
            )

            # (1-3) Parse, rewrite, analyze, logical plan, global
            # optimization.  These run inline (instantaneous in
            # simulated time) — their spans are zero-width markers
            # recording pipeline structure.
            prepared = self._prepare_statement(
                sql, session, tracer=tracer, startup=startup
            )
            if not prepared.scalar_jobs and not prepared.cte_jobs:
                plan, plan_before, connector = self._plan_prepared(
                    prepared, session, tracer, startup, materialized={}
                )
        tracer.end(startup)

        if prepared.scalar_jobs or prepared.cte_jobs:
            # (1b) Rewriter-requested sub-executions.  Uncorrelated
            # scalar subqueries and materialized CTE bodies run as
            # nested queries on this same cluster; their transfers and
            # stage time accrue to this query's wall clock and ledger.
            if prepared.scalar_jobs:
                scalar_results: Dict[str, Expression] = {}
                for sub in prepared.scalar_jobs:
                    sub_result = yield from self._run_query(
                        sub.to_sql(), session, metrics=MetricsRegistry(),
                        parent=root, tenant=tenant,
                    )
                    scalar_results[sub.to_sql()] = self._scalar_literal(
                        sub_result.batch
                    )
                # Deterministic second pass: the same rules fire in the
                # same order, now substituting the computed values.
                from repro.trace.tracer import NOOP_TRACER

                prepared = self._prepare_statement(
                    sql, session, tracer=NOOP_TRACER, startup=None,
                    scalar_results=scalar_results,
                )
            materialized: Dict[str, MaterializedHandle] = {}
            for cte in prepared.cte_jobs:
                sub_result = yield from self._run_query(
                    cte.query.to_sql(), session, metrics=MetricsRegistry(),
                    parent=root, tenant=tenant,
                )
                materialized[cte.name] = MaterializedHandle(
                    name=cte.name,
                    table_schema=prepared.cte_schemas[cte.name],
                    batches=[sub_result.batch],
                )
            planning = tracer.start("planning", parent=root, stage=STAGE_OTHERS)
            with accountant.charged(STAGE_OTHERS):
                plan, plan_before, connector = self._plan_prepared(
                    prepared, session, tracer, planning, materialized=materialized
                )
            tracer.end(planning)

        # (4) Connector-specific (local) optimization + lowering to the
        # stage graph.  The lowering itself is pure (no simulated time);
        # the traversal cost it reports is charged here.
        local_opt = tracer.start("optimize.local", parent=root, stage=STAGE_ANALYSIS)
        with accountant.charged(STAGE_ANALYSIS):
            lowered = self._lower(plan, connector, metrics, tenant=tenant)
            if lowered.analysis_nodes:
                yield cluster.compute.execute(
                    lowered.analysis_nodes * costs.plan_analysis_cycles_per_node,
                    name="local-opt",
                )
        tracer.end(local_opt)

        # (4b) Coordinator-tier result cache.  The key is the canonical
        # fingerprint of every pushed subplan plus the residual logical
        # plan; the version signature covers every object (and catalog
        # descriptor) any branch reads, so a write or stats refresh
        # anywhere in the query's footprint turns the entry stale.
        cache = cluster.cache
        if cache is not None:
            # Per-table lookup ledger for the adaptive controller.  The
            # probe is a pure peek, so recording here (run path only)
            # keeps EXPLAIN side-effect free.
            for branch in lowered.branches:
                probe = self._split_probe(branch)
                if probe is not None:
                    cache.record_table_lookup(
                        branch.table, hits=len(probe.hits), misses=len(probe.misses)
                    )
        result_probe = (
            self._result_probe(lowered)
            if cache is not None and cache.results.budget_bytes > 0
            else None
        )
        if result_probe is not None:
            result_key, result_versions = result_probe
            lookup = tracer.start(
                "cache-lookup", parent=root, stage=STAGE_OTHERS,
                attributes={"tier": "result"},
            )
            resident = cache.results.entry(result_key) is not None
            hit = cache.results.get(
                result_key, tenant=tenant, versions=result_versions
            )
            lookup.set("hit", hit is not None)
            with accountant.charged(STAGE_OTHERS):
                yield cluster.compute.execute(
                    costs.cache_lookup_cycles, name="cache-lookup"
                )
                if hit is not None:
                    yield cluster.compute.execute(
                        hit.nbytes * costs.cache_serve_cycles_per_byte,
                        name="cache-serve",
                    )
            tracer.end(lookup)
            if hit is not None:
                cache.account("hit", tenant, hit.nbytes)
                for branch in lowered.branches:
                    cache.record_table_lookup(branch.table, hits=1, misses=0)
                metrics.add("result_cache_hits", 1)
                elapsed = sim.now - query_start
                utilization = {
                    "compute_cores": cluster.compute.core_utilization(),
                    "frontend_cores": cluster.frontend.core_utilization(),
                    "link": cluster.link_cf.utilization(),
                    "scan_drivers": cluster.scan_drivers.utilization(),
                }
                for i, node in enumerate(cluster.storage):
                    utilization[f"storage_cores[{i}]"] = node.core_utilization()
                stage_seconds = accountant.partitioned(elapsed)
                tracer.end(root)
                return QueryResult(
                    batch=hit,
                    execution_seconds=elapsed,
                    data_moved_bytes=cluster.bytes_to_compute() - bytes_start,
                    splits=0,
                    plan_before=plan_before,
                    plan_after=lowered.plan_after,
                    metrics=metrics,
                    stage_seconds=stage_seconds,
                    utilization=utilization,
                    trace=tracer.trace(root=root) if tracer.recording else None,
                    stage_graph=lowered.graph,
                )
            cache.account("stale" if resident else "miss", tenant, 0)
            for branch in lowered.branches:
                cache.record_table_lookup(branch.table, hits=0, misses=1)

        # (5) Split scheduling cost ("others").
        schedule = tracer.start("schedule", parent=root, stage=STAGE_OTHERS)
        schedule.set("splits", lowered.total_splits)
        schedule.set("stages", len(lowered.graph))
        with accountant.charged(STAGE_OTHERS):
            yield cluster.compute.execute(
                lowered.total_splits * costs.schedule_cycles_per_split,
                name="schedule",
            )
        tracer.end(schedule)
        metrics.add("splits", lowered.total_splits)

        # (6) Run the graph.  Any ready stage launches the instant its
        # inputs complete; stage-level restart and split speculation are
        # the scheduler's business, not the lowering's.
        scheduler = DagScheduler(
            sim,
            lowered.graph,
            self.scheduler_spec,
            tracer=tracer,
            metrics=metrics,
            accountant=accountant,
            parent=root,
            query_id=query_id,
        )
        stage_results = yield from scheduler.run()
        results = stage_results[lowered.result_stage]

        batch = (
            concat_batches(results)
            if results
            else RecordBatch.empty(lowered.output_schema)
        )
        # Retries on the exchange link, attributed to this query's window
        # (exact on a dedicated cluster, like the data-moved ledger).
        retries_delta = cluster.exchange.retries - retries_start
        if retries_delta:
            metrics.add("exchange_retries", retries_delta)
        utilization = {
            "compute_cores": cluster.compute.core_utilization(),
            "frontend_cores": cluster.frontend.core_utilization(),
            "link": cluster.link_cf.utilization(),
            "scan_drivers": cluster.scan_drivers.utilization(),
        }
        if lowered.has_exchange:
            utilization["exchange_link"] = cluster.link_exchange.utilization()
        for i, node in enumerate(cluster.storage):
            utilization[f"storage_cores[{i}]"] = node.core_utilization()
        # Stage attribution must partition the wall time: window union
        # keeps concurrent splits from double charging, but stages that
        # overlap *each other* (e.g. one split transferring while another
        # runs operators) can still push the sum past the elapsed time.
        # The accountant scales the reported copy down so Table 3 always
        # partitions; serial runs are untouched (total <= elapsed there).
        elapsed = sim.now - query_start
        stage_seconds = accountant.partitioned(elapsed)
        if result_probe is not None:
            fill_span = tracer.start(
                "cache-fill", parent=root, attributes={"tier": "result"}
            )
            filled = cache.results.put(
                result_key, batch, nbytes=batch.nbytes, tenant=tenant,
                versions=result_versions, cost=float(elapsed),
            )
            fill_span.set("bytes", batch.nbytes)
            fill_span.set("accepted", filled)
            tracer.end(fill_span)
            cache.account("fill" if filled else "quota", tenant, batch.nbytes)
            if filled:
                metrics.add("result_cache_fills", 1)
        tracer.end(root)
        return QueryResult(
            batch=batch,
            execution_seconds=elapsed,
            # Delta over the link ledger: exact for a dedicated cluster;
            # on a shared cluster concurrent queries interleave on the
            # link, so the service reports per-query movement from the
            # per-query ``bytes_received`` counter instead.
            data_moved_bytes=cluster.bytes_to_compute() - bytes_start,
            splits=lowered.total_splits,
            plan_before=plan_before,
            plan_after=lowered.plan_after,
            metrics=metrics,
            stage_seconds=stage_seconds,
            utilization=utilization,
            trace=tracer.trace(root=root) if tracer.recording else None,
            stage_graph=lowered.graph,
        )

    # -- lowering: logical plan -> stage graph ----------------------------------

    def _lower(
        self,
        plan: PlanNode,
        connector: Connector,
        metrics: MetricsRegistry,
        tenant: str = "default",
    ) -> _Lowered:
        """Lower an optimized logical plan to a typed stage graph.

        Pure — no simulated time passes — so EXPLAIN can lower without
        executing.  The same graph value is then run by the scheduler.

        Single-table plans lower to ``scan -> [aggregate] -> merge``.  A
        chain of N equi-joins lowers to N+1 scan stages (each branch
        locally optimized, so pushdown applies per table), per-join
        exchange stages (two for a partitioned join, one for broadcast —
        the probe side of a broadcast join feeds the join stage
        directly), one join stage per level running the fragment between
        this join and the next, an optional ``dynamic-filter`` stage
        gating the base scan on the first build side, and the shared
        ``aggregate``/``merge`` tail.

        When the cluster carries a split cache and some (or all) of a
        branch's splits are resident, the branch lowers *hybrid*: a
        cached-local stage serving the resident splits and a
        pushed-remote residual stage over the rest, reassembled in
        original split order by a ``cache-union`` stage — the
        FlexPushdownDB separable-operator shape.  A branch gated by a
        dynamic join filter is never split this way: its pushed plan
        mutates after lowering with bits derived from *another* table's
        data, which the branch's own version signature does not cover.
        """
        costs = self.cluster.costs
        graph = StageGraph()
        optimizer_factory = connector.plan_optimizer
        joins = _join_chain(plan)
        analysis_nodes = 0

        if not joins:
            optimizer = optimizer_factory()
            material = isinstance(
                _leftmost_scan(plan).connector_handle, MaterializedHandle
            )
            if optimizer is not None and not material:
                analysis_nodes = _count_nodes(plan)
                plan = optimizer.optimize(plan, metrics)
            plan_after = format_plan(plan)
            physical = fragment_plan(plan)
            handle = physical.scan.connector_handle
            splits = [] if material else connector.get_splits(handle)
            branch = _Branch(
                stage_id=f"scan:0:{physical.scan.table.table}",
                table=physical.scan.table.table,
                plan=plan,
                physical=physical,
                handle=handle,
                splits=splits,
            )
            source_id = self._add_branch_stages(
                graph, connector, branch, finish=False, tenant=tenant
            )
            result_stage = self._add_tail_stages(
                graph, physical, source=source_id,
                output_schema=plan.output_schema(),
            )
            lowered = _Lowered(
                graph=graph,
                plan_after=plan_after,
                branches=[branch],
                total_splits=len(splits),
                analysis_nodes=analysis_nodes,
                output_schema=plan.output_schema(),
                result_stage=result_stage,
                has_exchange=False,
            )
            self._verify_lowered(lowered)
            return lowered

        # --- join chain ----------------------------------------------------
        workers = max(1, int(costs.exchange_partition_count))

        # Scan branches: the base table (probe of join 0) plus one build
        # branch per join level.  Each is wrapped in an OutputNode and
        # locally optimized as its own linear plan, so per-table pushdown
        # (and later the dynamic filter) applies normally.
        branch_sources = [joins[0].left] + [join.right for join in joins]
        branches: List[_Branch] = []
        for index, source in enumerate(branch_sources):
            branch_plan: PlanNode = OutputNode(source, source.output_schema().names())
            optimizer = optimizer_factory()
            material = isinstance(
                _leftmost_scan(branch_plan).connector_handle, MaterializedHandle
            )
            if optimizer is not None and not material:
                analysis_nodes += _count_nodes(branch_plan)
                branch_plan = optimizer.optimize(branch_plan, metrics)
            physical = fragment_plan(branch_plan)
            handle = physical.scan.connector_handle
            branches.append(
                _Branch(
                    stage_id=f"scan:{index}:{physical.scan.table.table}",
                    table=physical.scan.table.table,
                    plan=branch_plan,
                    physical=physical,
                    handle=handle,
                    splits=[] if material else connector.get_splits(handle),
                )
            )

        # Dynamic filter: the first join's finished build side prunes the
        # base scan at storage.  Only for an inner join (an outer join
        # preserves the probe side, so pushed pruning would drop rows
        # that must surface NULL-extended) and only when the base scan
        # has a pushed plan to fold the filter into.
        from repro.analysis.verifier import DYNAMIC_FILTER_JOIN_KINDS

        policy = getattr(connector, "policy", None)
        base, first_build = branches[0], branches[1]
        dynamic_filter_stage: Optional[str] = None
        if (
            policy is not None
            and getattr(policy, "dynamic_filters", False)
            and getattr(base.handle, "pushed", None) is not None
            and joins[0].kind in DYNAMIC_FILTER_JOIN_KINDS
        ):
            dynamic_filter_stage = "dynamic-filter:0"

        # Scan branches.  The dynamic-filter-gated base scan stays a
        # single uncached stage (see docstring); every other branch may
        # lower hybrid, so downstream edges read from ``source_ids``.
        source_ids: Dict[str, str] = {}
        for index, branch in enumerate(branches):
            if index == 0 and dynamic_filter_stage is not None:
                # The handshake edge: the base scan may not start before
                # the filter lands in its pushed plan.  Untyped — the
                # payload is a signal, not a batch stream.
                graph.add(
                    Stage(
                        stage_id=branch.stage_id,
                        kind="scan",
                        run=self._scan_stage(connector, branch, finish=True),
                        inputs=(dynamic_filter_stage,),
                        output_schema=branch.plan.output_schema(),
                        attributes={
                            "table": branch.table, "splits": len(branch.splits),
                        },
                    )
                )
                source_ids[branch.stage_id] = branch.stage_id
            else:
                source_ids[branch.stage_id] = self._add_branch_stages(
                    graph, connector, branch, finish=True, tenant=tenant
                )

        if dynamic_filter_stage is not None:
            build_source = source_ids[first_build.stage_id]
            graph.add(
                Stage(
                    stage_id=dynamic_filter_stage,
                    kind="filter",
                    run=self._dynamic_filter_stage(
                        joins[0], base, build_source
                    ),
                    inputs=(build_source,),
                    input_schemas={
                        build_source: first_build.plan.output_schema()
                    },
                    output_schema=first_build.plan.output_schema(),
                    attributes={
                        "target": base.stage_id,
                        # Verified against DYNAMIC_FILTER_JOIN_KINDS by
                        # verify_stage_graph: anti/left joins must never
                        # publish pushed probe pruning.
                        "join_kind": joins[0].kind,
                    },
                )
            )

        # Per-join exchange + join stages up the left-deep spine.  The
        # fragment each join's tasks run is the chain between this join
        # and the next (residual filters), or — at the top — the
        # split-operator half of the fragment above the whole chain.
        above_physical, segment_physicals = self._fragment_above(plan, joins)
        probe_source = source_ids[branches[0].stage_id]
        probe_schema = branches[0].plan.output_schema()
        retry = getattr(connector, "retry_policy", None) or RetryPolicy()
        for index, join in enumerate(joins):
            build_branch = branches[index + 1]
            build_source_id = source_ids[build_branch.stage_id]
            build_schema = build_branch.plan.output_schema()
            distribution = join.distribution
            if distribution == "auto":
                distribution = choose_join_distribution(
                    build_rows=_subtree_row_count(join.right),
                    probe_rows=_subtree_row_count(join.left),
                    workers=workers,
                )
            join.distribution = distribution

            build_ex = f"exchange:build:{index}"
            graph.add(
                Stage(
                    stage_id=build_ex,
                    kind="exchange",
                    run=self._exchange_stage(
                        source=build_source_id,
                        keys=list(join.right_keys),
                        workers=workers,
                        distribution=distribution,
                        retry=retry,
                        index=index,
                        side="build",
                    ),
                    inputs=(build_source_id,),
                    input_schemas={build_source_id: build_schema},
                    output_schema=build_schema,
                    attributes={"distribution": distribution, "partitions": workers},
                )
            )
            segment = (
                segment_physicals[index]
                if index < len(segment_physicals)
                else above_physical
            )
            join_inputs: List[str] = [build_ex]
            join_input_schemas: Dict[str, Schema] = {build_ex: build_schema}
            if distribution == "broadcast":
                # The probe side stays local: join tasks read their
                # round-robin share of the probe output directly.
                join_inputs.append(probe_source)
                join_input_schemas[probe_source] = probe_schema
            else:
                probe_ex = f"exchange:probe:{index}"
                graph.add(
                    Stage(
                        stage_id=probe_ex,
                        kind="exchange",
                        run=self._exchange_stage(
                            source=probe_source,
                            keys=list(join.left_keys),
                            workers=workers,
                            distribution=distribution,
                            retry=retry,
                            index=index,
                            side="probe",
                        ),
                        inputs=(probe_source,),
                        input_schemas={probe_source: probe_schema},
                        output_schema=probe_schema,
                        attributes={
                            "distribution": distribution,
                            "partitions": workers,
                        },
                    )
                )
                join_inputs.append(probe_ex)
                join_input_schemas[probe_ex] = probe_schema
            join_stage = f"join:{index}"
            graph.add(
                Stage(
                    stage_id=join_stage,
                    kind="join",
                    run=self._join_stage(
                        join=join,
                        index=index,
                        workers=workers,
                        distribution=distribution,
                        build_schema=build_schema,
                        build_source=build_ex,
                        probe_source=(
                            probe_source
                            if distribution == "broadcast"
                            else f"exchange:probe:{index}"
                        ),
                        segment=segment,
                    ),
                    inputs=tuple(join_inputs),
                    input_schemas=join_input_schemas,
                    output_schema=segment.split_schema,
                    attributes={
                        "kind": join.kind,
                        "distribution": distribution,
                        "tasks": workers,
                    },
                )
            )
            probe_source = join_stage
            probe_schema = segment.split_schema

        result_stage = self._add_tail_stages(
            graph, above_physical, source=probe_source,
            output_schema=plan.output_schema(),
        )
        lowered = _Lowered(
            graph=graph,
            plan_after=format_plan(plan),
            branches=branches,
            total_splits=sum(len(b.splits) for b in branches),
            analysis_nodes=analysis_nodes,
            output_schema=plan.output_schema(),
            result_stage=result_stage,
            has_exchange=True,
        )
        self._verify_lowered(lowered)
        return lowered

    @staticmethod
    def _verify_lowered(lowered: _Lowered) -> None:
        if strict_verify_enabled():
            from repro.analysis.verifier import verify_stage_graph

            verify_stage_graph(lowered.graph)

    def _fragment_above(self, plan: PlanNode, joins: List[JoinNode]):
        """Physical fragments for everything above each join level.

        Returns ``(above_physical, segment_physicals)``: the fragment
        above the *top* join (its split half runs in the top join's
        tasks; its final half becomes the aggregate/merge stages) and,
        for each join below the top, the residual chain between it and
        the next join (filters the planner left above that join), each
        hung off a handle-free synthetic scan typed with the join's
        output schema.
        """
        strict = strict_verify_enabled()
        segment_physicals: List[PhysicalPlan] = []
        for index in range(len(joins) - 1):
            lower, upper = joins[index], joins[index + 1]
            synthetic = _synthetic_scan(lower, index)
            if strict:
                from repro.analysis.verifier import verify_exchange_boundary

                verify_exchange_boundary(synthetic)
            node: PlanNode = upper.left
            segment: List[PlanNode] = []
            while node is not lower:
                segment.append(node)
                children = node.children()
                if len(children) != 1:
                    raise PlanError(
                        f"non-linear fragment between join {index} and "
                        f"{index + 1}: {node.name}"
                    )
                node = children[0]
            rebuilt: PlanNode = synthetic
            for seg_node in reversed(segment):
                rebuilt = seg_node.with_source(rebuilt)
            segment_physicals.append(fragment_plan(rebuilt))

        top = joins[-1]
        synthetic = _synthetic_scan(top, len(joins) - 1)
        if strict:
            from repro.analysis.verifier import verify_exchange_boundary

            verify_exchange_boundary(synthetic)
        above_physical = fragment_plan(_replace_join(plan, synthetic))
        return above_physical, segment_physicals

    def _add_tail_stages(
        self,
        graph: StageGraph,
        physical: PhysicalPlan,
        source: str,
        output_schema: Schema,
    ) -> str:
        """Add the aggregate (if any) and merge stages; returns the sink id."""
        merge_input = source
        merge_schema = graph.stage(source).output_schema
        if physical.agg_schema is not None:
            graph.add(
                Stage(
                    stage_id="aggregate",
                    kind="aggregate",
                    run=self._aggregate_stage(physical),
                    inputs=(source,),
                    input_schemas={source: merge_schema},
                    output_schema=physical.agg_schema,
                )
            )
            merge_input = "aggregate"
            merge_schema = physical.agg_schema
        graph.add(
            Stage(
                stage_id="merge",
                kind="merge",
                run=self._merge_stage(physical),
                inputs=(merge_input,),
                input_schemas={merge_input: merge_schema},
                output_schema=output_schema,
            )
        )
        return "merge"

    # -- stage bodies ----------------------------------------------------------

    def _scan_splits(
        self,
        ctx: StageContext,
        connector: Connector,
        branch: _Branch,
        splits: List[ConnectorSplit],
    ):
        """Fan ``splits`` out through scan drivers; returns per-split outs."""
        sim = ctx.sim
        speculative = _has_speculative_source(connector)
        # Stamped by each split when it acquires a scan driver, so
        # the scheduler's straggler clock measures service time, not
        # driver-queue wait.
        service_starts: List[Optional[float]] = [None] * len(splits)

        def launch_primary(i: int):
            split = splits[i]

            def note_start(now: float, index: int = i) -> None:
                service_starts[index] = now

            return sim.process(
                self._run_split(
                    connector, branch.handle, split, branch.physical,
                    ctx.metrics, ctx.span, owner=ctx.query_id,
                    on_service_start=note_start,
                ),
                name=f"split-{split.split_id}",
            )

        def launch_backup(i: int):
            if not speculative:
                return None
            split = splits[i]
            return sim.process(
                self._run_split(
                    connector, branch.handle, split, branch.physical,
                    ctx.metrics, ctx.span, owner=ctx.query_id,
                    source_factory=connector.speculative_page_source,
                    label=f"split-{split.split_id}:speculative",
                    queued=False,
                ),
                name=f"split-{split.split_id}:speculative",
            )

        outs = yield from run_splits(
            ctx, self.scheduler_spec, splits, launch_primary, launch_backup,
            service_starts=service_starts,
        )
        return outs

    def _scan_stage(
        self,
        connector: Connector,
        branch: _Branch,
        finish: bool,
        fill: Optional[_SplitProbe] = None,
        tenant: str = "default",
    ):
        """Build the scan-stage body: split fan-out + branch final ops.

        ``finish`` runs the branch plan's final operators (the
        OutputNode projection of a join branch) inside the stage; the
        single-table scan leaves its final operators to the
        aggregate/merge tail instead.  ``fill`` feeds every split's
        post-operator batches into the coordinator split cache so later
        runs of the same branch can lower hybrid.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            outs = yield from self._scan_splits(ctx, connector, branch, branch.splits)
            if fill is not None:
                self._fill_split_cache(
                    ctx, branch, fill, list(range(len(branch.splits))), outs, tenant
                )
            batches = [b for out in outs for b in out]
            if not finish:
                return batches
            final_ops = self.backend.compile(branch.physical.final_operators())
            if not final_ops:
                return batches
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "scan-final", parent=ctx.span, stage=STAGE_EXECUTION
                )
                try:
                    batches = run_operators(batches, final_ops)
                    cycles = presto_pipeline_cycles(final_ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute_spread(cycles, name="scan-final")
                finally:
                    cluster.tracer.end(span)
            return batches

        return run

    def _materialized_stage(self, branch: _Branch, finish: bool):
        """Scan a rewriter-materialized CTE's stored batches.

        The branch plan's operators (split + final when ``finish``) run
        locally over the handle's batches — there is no storage round
        trip, no splits, and nothing to push down.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            handle: MaterializedHandle = branch.handle
            batches = list(handle.batches)
            operators = branch.physical.split_operators()
            if finish:
                operators += branch.physical.final_operators()
            ops = self.backend.compile(operators)
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "materialized-scan", parent=ctx.span, stage=STAGE_EXECUTION,
                    attributes={"table": branch.table},
                )
                try:
                    batches = run_operators(batches, ops)
                    cycles = presto_pipeline_cycles(ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute_spread(
                            cycles, name="materialized-scan"
                        )
                finally:
                    cluster.tracer.end(span)
            return batches

        return run

    def _cached_splits_stage(
        self, connector: Connector, branch: _Branch, probe: _SplitProbe, tenant: str
    ):
        """Serve the lowering-time-resident splits from the split cache.

        Each hit is re-checked against the objects' *current* version
        counters; an entry evicted or invalidated between lowering and
        launch falls back to the normal pushdown path for that split.
        Returns ``{original split index: batches}``.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            cache = cluster.cache
            costs = cluster.costs
            out: Dict[int, List[RecordBatch]] = {}
            fallback: List[int] = []
            served = 0
            hits = 0
            with ctx.accountant.window(STAGE_TRANSFER):
                span = cluster.tracer.start(
                    "cache-lookup", parent=ctx.span, stage=STAGE_TRANSFER,
                    attributes={"tier": "split", "splits": len(probe.hits)},
                )
                try:
                    for index in probe.hits:
                        key = probe.keys[index]
                        resident = cache.splits.entry(key) is not None
                        value = cache.splits.get(
                            key, tenant=tenant,
                            versions=self._split_versions(branch, branch.splits[index]),
                        )
                        if value is None:
                            cache.account("stale" if resident else "miss", tenant, 0)
                            fallback.append(index)
                            continue
                        nbytes = sum(b.nbytes for b in value)
                        cache.account("hit", tenant, nbytes)
                        out[index] = list(value)
                        served += nbytes
                        hits += 1
                    cycles = (
                        len(probe.hits) * costs.cache_lookup_cycles
                        + served * costs.cache_serve_cycles_per_byte
                    )
                    if cycles:
                        yield cluster.compute.execute(cycles, name="cache-serve")
                    span.set("hits", hits)
                    span.set("bytes", served)
                finally:
                    cluster.tracer.end(span)
            if hits:
                ctx.metrics.add("split_cache_hits", hits)
                ctx.metrics.add("split_cache_bytes_served", served)
            for index in fallback:
                out[index] = yield from self._run_split(
                    connector, branch.handle, branch.splits[index],
                    branch.physical, ctx.metrics, ctx.span, owner=ctx.query_id,
                )
            return out

        return run

    def _residual_scan_stage(
        self, connector: Connector, branch: _Branch, probe: _SplitProbe, tenant: str
    ):
        """Push the non-resident splits to storage and fill the cache.

        Returns ``{original split index: batches}`` so the cache-union
        stage can restore the branch's original split order.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            splits = [branch.splits[i] for i in probe.misses]
            outs = yield from self._scan_splits(ctx, connector, branch, splits)
            self._fill_split_cache(ctx, branch, probe, probe.misses, outs, tenant)
            return {index: outs[slot] for slot, index in enumerate(probe.misses)}

        return run

    def _cache_union_stage(
        self,
        branch: _Branch,
        cached_id: str,
        residual_id: Optional[str],
        finish: bool,
    ):
        """Reassemble a partially cached scan in original split order.

        Both inputs map original split index -> batches; the union
        concatenates over sorted indices, so the stream is byte-identical
        to the unsplit scan's regardless of which fraction was cached.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            merged: Dict[int, List[RecordBatch]] = dict(inputs[cached_id])
            if residual_id is not None:
                merged.update(inputs[residual_id])
            batches = [b for index in sorted(merged) for b in merged[index]]
            if not finish:
                return batches
            final_ops = self.backend.compile(branch.physical.final_operators())
            if not final_ops:
                return batches
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "cache-union-final", parent=ctx.span, stage=STAGE_EXECUTION
                )
                try:
                    batches = run_operators(batches, final_ops)
                    cycles = presto_pipeline_cycles(final_ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute_spread(
                            cycles, name="cache-union-final"
                        )
                finally:
                    cluster.tracer.end(span)
            return batches
            yield  # pragma: no cover - marks this body as a generator

        return run

    # -- cache probes ------------------------------------------------------------

    def _add_branch_stages(
        self,
        graph: StageGraph,
        connector: Connector,
        branch: _Branch,
        finish: bool,
        tenant: str,
    ) -> str:
        """Add the stage(s) realizing one scan branch; returns its source id.

        With no split cache (or no resident splits) this is the classic
        single scan stage — which then *fills* the cache as it runs.
        With resident splits the branch lowers hybrid:
        ``cached + residual -> cache-union``.
        """
        split_schema = branch.physical.split_schema
        out_schema = branch.plan.output_schema() if finish else split_schema
        if isinstance(branch.handle, MaterializedHandle):
            graph.add(
                Stage(
                    stage_id=branch.stage_id,
                    kind="scan",
                    run=self._materialized_stage(branch, finish),
                    output_schema=out_schema,
                    attributes={
                        "table": branch.table,
                        "splits": 0,
                        "source": "materialized",
                    },
                )
            )
            return branch.stage_id
        probe = self._split_probe(branch)
        if probe is None or not probe.hits:
            graph.add(
                Stage(
                    stage_id=branch.stage_id,
                    kind="scan",
                    run=self._scan_stage(
                        connector, branch, finish=finish, fill=probe, tenant=tenant
                    ),
                    output_schema=out_schema,
                    attributes={"table": branch.table, "splits": len(branch.splits)},
                )
            )
            return branch.stage_id
        suffix = branch.stage_id.split(":", 1)[1]  # "{index}:{table}"
        cached_id = f"{branch.stage_id}:cached"
        union_inputs: List[str] = [cached_id]
        union_schemas: Dict[str, Schema] = {cached_id: split_schema}
        graph.add(
            Stage(
                stage_id=cached_id,
                kind="scan",
                run=self._cached_splits_stage(connector, branch, probe, tenant),
                output_schema=split_schema,
                attributes={
                    "table": branch.table,
                    "splits": len(probe.hits),
                    "source": "cache",
                },
            )
        )
        residual_id: Optional[str] = None
        if probe.misses:
            residual_id = f"{branch.stage_id}:residual"
            graph.add(
                Stage(
                    stage_id=residual_id,
                    kind="scan",
                    run=self._residual_scan_stage(connector, branch, probe, tenant),
                    output_schema=split_schema,
                    attributes={
                        "table": branch.table,
                        "splits": len(probe.misses),
                        "source": "pushdown",
                    },
                )
            )
            union_inputs.append(residual_id)
            union_schemas[residual_id] = split_schema
        union_id = f"cache-union:{suffix}"
        graph.add(
            Stage(
                stage_id=union_id,
                kind="cache-union",
                run=self._cache_union_stage(branch, cached_id, residual_id, finish),
                inputs=tuple(union_inputs),
                input_schemas=union_schemas,
                output_schema=out_schema,
                attributes={
                    "table": branch.table,
                    "cached_splits": len(probe.hits),
                    "residual_splits": len(probe.misses),
                },
            )
        )
        return union_id

    def _split_probe(self, branch: _Branch) -> Optional[_SplitProbe]:
        """Split-cache keys + lowering-time hit set for one branch.

        ``None`` (branch not split-cacheable) without a cache, with the
        tier disabled, or when the handle has no catalog descriptor to
        version the splits against.  Uses pure peeks so EXPLAIN stays
        side-effect free.
        """
        cache = self.cluster.cache
        if cache is None or cache.splits.budget_bytes <= 0:
            return None
        descriptor = getattr(branch.handle, "descriptor", None)
        if descriptor is None or not branch.splits:
            return None
        pushed_fp = self._pushed_fingerprint(branch)
        plan_sig = hashlib.sha256(
            format_plan(branch.plan).encode("utf-8")
        ).hexdigest()
        keys = [
            CacheManager.split_key(branch.table, pushed_fp, plan_sig, split.keys)
            for split in branch.splits
        ]
        hits = [i for i, key in enumerate(keys) if cache.splits.entry(key) is not None]
        misses = [i for i, key in enumerate(keys) if cache.splits.entry(key) is None]
        return _SplitProbe(keys=keys, hits=hits, misses=misses)

    @staticmethod
    def _pushed_fingerprint(branch: _Branch) -> str:
        """Canonical fingerprint of the branch's pushed subplan ("-" when
        nothing is pushed — the residual plan signature still keys the
        entry)."""
        pushed = getattr(branch.handle, "pushed", None)
        descriptor = getattr(branch.handle, "descriptor", None)
        if pushed is None or descriptor is None:
            return "-"
        from repro.core.translator import build_pushdown_plan
        from repro.substrait.fingerprint import fingerprint_plan

        return fingerprint_plan(build_pushdown_plan(descriptor, pushed))

    def _split_versions(self, branch: _Branch, split: ConnectorSplit):
        """Version signature of everything one split's value derives from:
        the catalog descriptor (bumped by stats refreshes) plus the write
        counter of every object the split covers."""
        descriptor = branch.handle.descriptor
        meta = (f"meta:{descriptor.qualified_name}", descriptor.version)
        return (meta,) + object_version_signature(
            self.cluster.store, descriptor.bucket, split.keys
        )

    def _result_probe(
        self, lowered: _Lowered
    ) -> Optional[Tuple[Hashable, Tuple[Tuple[str, int], ...]]]:
        """(key, version signature) for the whole-query result cache.

        ``None`` when any branch lacks a catalog descriptor — with no
        way to version what the query read, serving a cached result
        could silently survive a write.
        """
        store = self.cluster.store
        parts: List[str] = []
        versions: List[Tuple[str, int]] = []
        for branch in lowered.branches:
            descriptor = getattr(branch.handle, "descriptor", None)
            if descriptor is None:
                return None
            parts.append(f"{branch.table}={self._pushed_fingerprint(branch)}")
            meta = (f"meta:{descriptor.qualified_name}", descriptor.version)
            versions.append(meta)
            versions.extend(
                object_version_signature(store, descriptor.bucket, descriptor.files)
            )
        body = "\n".join(
            parts + [lowered.plan_after, ",".join(lowered.output_schema.names())]
        )
        key = CacheManager.result_key(
            hashlib.sha256(body.encode("utf-8")).hexdigest()
        )
        seen = set()
        signature: List[Tuple[str, int]] = []
        for item in versions:
            if item not in seen:
                seen.add(item)
                signature.append(item)
        return key, tuple(signature)

    def _fill_split_cache(
        self,
        ctx: StageContext,
        branch: _Branch,
        probe: _SplitProbe,
        indices: List[int],
        outs: List[List[RecordBatch]],
        tenant: str,
    ) -> None:
        """Offer each scanned split's post-operator batches to the cache.

        Fills are best-effort: a refusal (budget or another tenant's
        reservation floor) is accounted, never raised.  Pure bookkeeping
        — no simulated time passes.
        """
        cache = self.cluster.cache
        if cache is None:
            return
        span = self.cluster.tracer.start(
            "cache-fill", parent=ctx.span, attributes={"tier": "split"}
        )
        filled = 0
        filled_bytes = 0
        try:
            for slot, index in enumerate(indices):
                batches = outs[slot]
                nbytes = sum(b.nbytes for b in batches)
                ok = cache.splits.put(
                    probe.keys[index],
                    list(batches),
                    nbytes=nbytes,
                    tenant=tenant,
                    versions=self._split_versions(branch, branch.splits[index]),
                    cost=float(sum(b.num_rows for b in batches)),
                )
                cache.account("fill" if ok else "quota", tenant, nbytes)
                if ok:
                    filled += 1
                    filled_bytes += nbytes
            span.set("splits", filled)
            span.set("bytes", filled_bytes)
        finally:
            self.cluster.tracer.end(span)
        if filled:
            ctx.metrics.add("split_cache_fills", filled)

    def _dynamic_filter_stage(self, join: JoinNode, base: _Branch, build_source: str):
        """Fold the finished build side's key summary into the base scan."""

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            build_batches = inputs[build_source]
            pushed = getattr(base.handle, "pushed", None)
            if pushed is not None and build_batches:
                probe_key = join.left_keys[0]
                dyn = build_dynamic_filter(list(build_batches), join.right_keys[0])
                probe_dtype = base.handle.table_schema.field(probe_key).dtype
                pushed.dynamic_filter = dyn.to_expression(probe_key, probe_dtype)
                ctx.metrics.add("dynamic_filter_build_rows", dyn.build_rows)
                ctx.metrics.add("dynamic_filter_distinct_keys", dyn.distinct_keys)
                if ctx.parent is not None:
                    ctx.parent.set("dynamic_filter_keys", dyn.distinct_keys)
            return build_batches
            yield  # pragma: no cover - marks this body as a generator

        return run

    def _exchange_stage(
        self,
        source: str,
        keys: List[str],
        workers: int,
        distribution: str,
        retry: RetryPolicy,
        index: int,
        side: str,
    ):
        """Shuffle one side of a join through the exchange fabric.

        A fresh exchange id per invocation makes the stage restartable:
        pages from an abandoned attempt sit in a buffer nobody drains.
        Returns the per-partition :class:`DrainResult` list.
        """

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            sim = ctx.sim
            costs = cluster.costs
            fabric = cluster.exchange
            client = cluster.exchange_client
            batches = inputs[source]
            exchange_id = fabric.create(workers)
            with ctx.accountant.window(STAGE_EXCHANGE):
                span = cluster.tracer.start(
                    "exchange", parent=ctx.span, stage=STAGE_EXCHANGE,
                    attributes={
                        "side": side, "distribution": distribution,
                        "partitions": workers,
                    },
                )
                try:
                    put_procs = []
                    seq = 0
                    if distribution == "broadcast":
                        # Replicate every page to every join task.
                        for partition in range(workers):
                            for batch in batches:
                                put_procs.append(
                                    sim.process(
                                        fabric.put(client, exchange_id, partition,
                                                   0, seq, [batch], retry,
                                                   parent=span),
                                        name=f"exchange-put-{seq}",
                                    )
                                )
                                seq += 1
                    else:
                        partition_rows = sum(b.num_rows for b in batches)
                        if partition_rows:
                            yield cluster.compute.execute(
                                partition_rows * costs.exchange_partition_cycles_per_row,
                                name="exchange-partition",
                            )
                        for batch in batches:
                            for partition, part in enumerate(
                                hash_partition(batch, list(keys), workers)
                            ):
                                if part.num_rows == 0:
                                    continue
                                put_procs.append(
                                    sim.process(
                                        fabric.put(client, exchange_id, partition,
                                                   0, seq, [part], retry,
                                                   parent=span),
                                        name=f"exchange-put-{seq}",
                                    )
                                )
                                seq += 1
                    page_bytes = 0
                    if put_procs:
                        framed = yield AllOf(sim, put_procs)
                        page_bytes = sum(framed)
                    parts = [fabric.drain(exchange_id, p) for p in range(workers)]
                    span.set("bytes", page_bytes)
                    span.set("pages", len(put_procs))
                    ctx.metrics.add("exchange_bytes", page_bytes)
                    ctx.metrics.add("exchange_pages", len(put_procs))
                finally:
                    cluster.tracer.end(span)
            return parts

        return run

    def _join_stage(
        self,
        join: JoinNode,
        index: int,
        workers: int,
        distribution: str,
        build_schema: Schema,
        build_source: str,
        probe_source: str,
        segment: PhysicalPlan,
    ):
        """Parallel hash-join tasks for one join level."""

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            sim = ctx.sim
            build_parts = inputs[build_source]
            if distribution == "broadcast":
                probe_batches = inputs[probe_source]
                task_inputs = [
                    (list(build_parts[p].batches), probe_batches[p::workers],
                     build_parts[p].nbytes)
                    for p in range(workers)
                ]
            else:
                probe_parts = inputs[probe_source]
                task_inputs = [
                    (list(build_parts[p].batches), list(probe_parts[p].batches),
                     build_parts[p].nbytes + probe_parts[p].nbytes)
                    for p in range(workers)
                ]
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "join-stage", parent=ctx.span, stage=STAGE_EXECUTION,
                    attributes={
                        "kind": join.kind, "tasks": workers, "level": index,
                    },
                )
                try:
                    task_outs = yield AllOf(
                        sim,
                        [
                            sim.process(
                                self._join_task(
                                    p, join, build_schema, build_in, probe_in,
                                    nbytes, segment.split_operators, ctx.metrics,
                                    span,
                                ),
                                name=f"join-task-{p}",
                            )
                            for p, (build_in, probe_in, nbytes) in enumerate(
                                task_inputs
                            )
                        ],
                    )
                finally:
                    cluster.tracer.end(span)
            return [b for out in task_outs for b in out]

        return run

    def _aggregate_stage(self, physical: PhysicalPlan):
        """Merge-side aggregation: final operators up to the last agg."""

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            (batches,) = inputs.values()
            raw = physical.final_operators()
            agg_ops = self.backend.compile(raw[: _aggregation_cut(raw)])
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "aggregate-stage", parent=ctx.span, stage=STAGE_EXECUTION
                )
                try:
                    results = run_operators(batches, agg_ops)
                    cycles = presto_pipeline_cycles(agg_ops, cluster.costs)
                    if cycles:
                        yield cluster.compute.execute_spread(
                            cycles, name="aggregate-stage"
                        )
                finally:
                    cluster.tracer.end(span)
            return results

        return run

    def _merge_stage(self, physical: PhysicalPlan):
        """The final stage: remaining operators over its input batches."""

        def run(ctx: StageContext, inputs: Dict[str, Any]):
            cluster = self.cluster
            (batches,) = inputs.values()
            raw = physical.final_operators()
            if physical.agg_schema is not None:
                raw = raw[_aggregation_cut(raw):]
            ops = self.backend.compile(raw)
            with ctx.accountant.window(STAGE_EXECUTION):
                span = cluster.tracer.start(
                    "final-stage", parent=ctx.span, stage=STAGE_EXECUTION
                )
                try:
                    results = run_operators(batches, ops)
                    cycles = presto_pipeline_cycles(ops, cluster.costs)
                    yield cluster.compute.execute_spread(cycles, name="final-stage")
                finally:
                    cluster.tracer.end(span)
            return results

        return run

    # -- split + join-task processes --------------------------------------------

    def _run_split(
        self, connector: Connector, handle, split, physical: PhysicalPlan, metrics,
        parent=None, owner: Optional[str] = None,
        source_factory: Optional[Callable] = None, label: Optional[str] = None,
        queued: bool = True,
        on_service_start: Optional[Callable[[float], None]] = None,
    ):
        cluster = self.cluster
        tracer = cluster.tracer
        name = label if label is not None else f"split-{split.split_id}"
        split_span = tracer.start(
            name,
            parent=parent,
            attributes={"split": split.split_id, "node": split.node_index},
        )
        try:
            if queued:
                with cluster.scan_drivers.request(owner=owner) as driver:
                    yield driver
                    if on_service_start is not None:
                        on_service_start(cluster.sim.now)
                    out = yield from self._split_body(
                        connector, handle, split, physical, metrics,
                        split_span, source_factory,
                    )
            else:
                # Speculative backups run on spare driver capacity: the
                # whole point is to route around a stuck primary, so the
                # backup must not queue behind the very driver slot that
                # primary occupies.
                out = yield from self._split_body(
                    connector, handle, split, physical, metrics,
                    split_span, source_factory,
                )
        finally:
            tracer.end(split_span)
        return out

    def _split_body(
        self, connector: Connector, handle, split, physical: PhysicalPlan, metrics,
        split_span, source_factory: Optional[Callable],
    ):
        cluster = self.cluster
        sim = cluster.sim
        stages = StageAccountant(sim, metrics.stages)
        tracer = cluster.tracer
        factory = source_factory if source_factory is not None else connector.page_source
        # Data acquisition: storage round trip + page materialization.
        # Concurrent splits each open a stage *window*; the timer unions
        # overlapping windows so wall-clock is charged once, not once per
        # split (otherwise the per-stage sum could exceed the query's
        # elapsed time).  The OCS page source pauses the transfer window
        # around IR generation so the substrait stage stays separable;
        # its connector-side spans carry the matching stage tags, so only
        # the ingest tail is tagged here.
        with stages.window(STAGE_TRANSFER):
            source: PageSourceResult = yield sim.process(
                factory(handle, split, metrics, trace=split_span),
                name=f"page-source-{split.split_id}",
            )
            ingest_span = tracer.start(
                "ingest",
                parent=split_span,
                stage=STAGE_TRANSFER,
                attributes={"bytes": source.bytes_received},
            )
            try:
                if source.ingest_cycles:
                    yield cluster.compute.execute(
                        source.ingest_cycles, name="ingest"
                    )
            finally:
                tracer.end(ingest_span)
        metrics.add("bytes_received", source.bytes_received)

        # Split-local operators (real work + cost charge).
        stages.begin(STAGE_EXECUTION)
        ops_span = tracer.start(
            "split-operators", parent=split_span, stage=STAGE_EXECUTION
        )
        try:
            split_ops = self.backend.compile(physical.split_operators())
            out = run_operators(source.batches, split_ops)
            cycles = presto_pipeline_cycles(split_ops, cluster.costs)
            if cycles:
                yield cluster.compute.execute(cycles, name="split-ops")
        finally:
            stages.end(STAGE_EXECUTION)
            tracer.end(ops_span)
        for op in split_ops:
            metrics.add(f"rows_into_{op.name}", op.rows_in)
        return out

    def _join_task(
        self,
        index: int,
        join: JoinNode,
        build_schema,
        build_batches,
        probe_batches,
        deserialize_bytes: int,
        above_operators: Callable[[], List[Operator]],
        metrics: MetricsRegistry,
        parent,
    ):
        """One join task: pay exchange deserialization, build, probe."""
        cluster = self.cluster
        costs = cluster.costs
        tracer = cluster.tracer
        span = tracer.start(
            f"join-task-{index}", parent=parent, stage=STAGE_EXECUTION,
            attributes={"partition": index},
        )
        try:
            if deserialize_bytes:
                yield cluster.compute.execute(
                    deserialize_bytes * costs.arrow_deserialize_cycles_per_byte,
                    name="exchange-deserialize",
                )
            op = HashJoinOperator(
                kind=join.kind,
                left_keys=list(join.left_keys),
                right_keys=list(join.right_keys),
                right_schema=build_schema,
                right_renames=dict(join.right_renames),
            )
            for build_batch in build_batches:
                op.add_build(build_batch)
            op.finish_build()
            task_ops: List[Operator] = [op]
            task_ops.extend(self.backend.compile(above_operators()))
            out = run_operators(list(probe_batches), task_ops)
            cycles = presto_pipeline_cycles(task_ops, costs)
            if cycles:
                yield cluster.compute.execute(cycles, name=f"join-task-{index}")
            span.set("build_rows", op.build_rows)
            span.set("probe_rows", op.rows_in)
            for task_op in task_ops:
                metrics.add(f"rows_into_{task_op.name}", task_op.rows_in)
        finally:
            tracer.end(span)
        return out

    # -- handle resolution -------------------------------------------------------

    @staticmethod
    def _attach_handles(plan: PlanNode, handles_by_table: Dict[str, Any]) -> None:
        """Bind each scan to its table's handle (keyed by table name —
        the analyzer rejects duplicate table names, so names are ids)."""
        attached = False

        def visit(node: PlanNode) -> None:
            nonlocal attached
            if isinstance(node, TableScanNode):
                try:
                    node.connector_handle = handles_by_table[node.table.table]
                except KeyError:
                    raise NoSuchCatalogError(
                        f"no handle resolved for scanned table "
                        f"{node.table.table!r}"
                    ) from None
                attached = True
                return
            for child in node.children():
                visit(child)

        visit(plan)
        if not attached:
            raise NoSuchCatalogError("plan has no table scan to attach a handle to")


def _leftmost_scan(plan: PlanNode) -> TableScanNode:
    """The scan at the bottom of a branch's (join-free) operator chain."""
    node: PlanNode = plan
    while not isinstance(node, TableScanNode):
        node = node.children()[0]
    return node


def _count_nodes(plan: PlanNode) -> int:
    count = 1
    for child in plan.children():
        count += _count_nodes(child)
    return count


def _join_chain(plan: PlanNode) -> List[JoinNode]:
    """All joins down the left-deep spine, bottom-up (join 0 first)."""
    joins: List[JoinNode] = []
    node: Optional[PlanNode] = _find_join(plan)
    while node is not None:
        joins.append(node)
        node = _find_join(node.left)
    joins.reverse()
    return joins


def _find_join(plan: PlanNode) -> Optional[JoinNode]:
    """The topmost join below a linear operator chain, if any."""
    node: Optional[PlanNode] = plan
    while node is not None:
        if isinstance(node, JoinNode):
            return node
        children = node.children()
        node = children[0] if children else None
    return None


def _replace_join(plan: PlanNode, new_node: PlanNode) -> PlanNode:
    """Rebuild ``plan`` with its topmost join substituted by ``new_node``."""
    if isinstance(plan, JoinNode):
        return new_node
    children = plan.children()
    if not children:
        raise PlanError("plan contains no join to replace")
    return plan.with_source(_replace_join(children[0], new_node))


def _synthetic_scan(join: JoinNode, index: int) -> TableScanNode:
    """A handle-free scan standing in for ``join``'s exchanged output.

    The fragment above a join hangs off this synthetic scan; it stays
    handle-free because nothing can be pushed to storage through an
    exchange boundary (the exchange carries engine pages, not objects).
    """
    join_schema = join.output_schema()
    return TableScanNode(
        table=TableName(table=f"$join:{index}"),
        table_schema=join_schema,
        columns=join_schema.names(),
    )


def _subtree_row_count(plan: PlanNode) -> int:
    """Metastore row-count estimate for a join input: the sum over every
    scan in the subtree (a joined subtree can only shrink below that —
    a usable upper bound for the broadcast-vs-partitioned choice)."""
    if isinstance(plan, TableScanNode):
        return _handle_row_count(plan.connector_handle)
    return sum(_subtree_row_count(child) for child in plan.children())


def _handle_row_count(handle) -> int:
    """Metastore row count behind a connector handle (0 when unknown)."""
    descriptor = getattr(handle, "descriptor", None)
    return int(getattr(descriptor, "row_count", 0) or 0)


def _aggregation_cut(ops: List[Operator]) -> int:
    """Index just past the last aggregation operator in a compiled
    final pipeline — the aggregate/merge stage boundary.  Operator
    fusion never crosses an aggregation, so the position is stable
    across backends."""
    cut = 0
    for i, op in enumerate(ops):
        if isinstance(op, HashAggregationOperator):
            cut = i + 1
    return cut


def _has_speculative_source(connector: Connector) -> bool:
    """True when the connector overrides the speculative-source hook."""
    return (
        type(connector).speculative_page_source
        is not Connector.speculative_page_source
    )
