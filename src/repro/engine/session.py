"""Query session: default catalog/schema for name resolution."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Session"]


@dataclass(frozen=True)
class Session:
    """Per-query context (Presto's Session, radically slimmed)."""

    catalog: str
    schema: str
    user: str = "repro"
