"""Presto-class distributed SQL engine.

Coordinator/worker architecture over the simulated testbed, following the
paper's Figure 3 pipeline: SQL parsing -> analysis -> logical planning ->
global optimization -> **connector-specific optimization** (the SPI hook
the Presto-OCS connector plugs into) -> physical fragmentation -> split
generation/scheduling -> execution.

Connectors implement :class:`~repro.engine.spi.Connector`: metadata
(schemas + statistics from the metastore), split generation, a
PageSourceProvider that materializes pages from storage (as a DES process
so transfers and remote work happen on the simulated testbed), and an
optional :class:`~repro.engine.spi.ConnectorPlanOptimizer`.
"""

from repro.engine.cluster import Cluster
from repro.engine.coordinator import Coordinator, QueryResult
from repro.engine.dag import Stage, StageContext, StageGraph
from repro.engine.scheduler import DagScheduler, SchedulerSpec
from repro.engine.session import Session
from repro.engine.spi import (
    Connector,
    ConnectorPlanOptimizer,
    ConnectorSplit,
    ConnectorTableHandle,
    PageSourceResult,
)

__all__ = [
    "Cluster",
    "Connector",
    "ConnectorPlanOptimizer",
    "ConnectorSplit",
    "ConnectorTableHandle",
    "Coordinator",
    "DagScheduler",
    "PageSourceResult",
    "QueryResult",
    "SchedulerSpec",
    "Session",
    "Stage",
    "StageContext",
    "StageGraph",
]
