"""Cluster wiring: simulated nodes, links, OCS services, S3 gateway.

One :class:`Cluster` is built per query run so the clock, ledgers, and
utilization counters are per-query.  Topology follows Table 1 / Figure 4:

    compute (Presto) <--10GbE--> OCS frontend <--10GbE--> storage node(s)

All storage traffic — raw GETs, S3-Select results, OCS Arrow results —
crosses the compute<->frontend link, whose ledger is the paper's
"data movement from OCS to Presto" metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import FaultSpec, TestbedSpec
from repro.exchange.shuffle import ExchangeFabric
from repro.objectstore.store import ObjectStore
from repro.ocs.frontend import OcsFrontend
from repro.ocs.storage_node import OcsStorageNode
from repro.rpc.channel import RpcClient
from repro.sim.costmodel import CostParams
from repro.sim.faults import FaultInjector
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Link
from repro.sim.node import SimNode
from repro.sim.resources import Resource
from repro.trace import Tracer
from repro.engine.gateway import S3Gateway

__all__ = ["Cluster"]


class Cluster:
    """A fully wired simulated testbed for one query execution."""

    def __init__(
        self,
        store: ObjectStore,
        testbed: TestbedSpec,
        costs: CostParams,
        strict_s3_types: bool = True,
        faults: Optional[FaultSpec] = None,
        tracing: bool = False,
        tie_break: str = "fifo",
        sim_observer=None,
        cache=None,
    ) -> None:
        self.testbed = testbed
        self.costs = costs
        self.store = store
        #: Optional :class:`~repro.cache.manager.CacheManager`.  The manager
        #: outlives the cluster (clusters are per-query); each storage node
        #: borrows its per-node page-cache tier from it, and the
        #: coordinator reads the result/split tiers off this handle.
        self.cache = cache
        #: tie_break/sim_observer feed the determinism harness
        #: (repro.analysis.determinism); production runs use the defaults.
        self.sim = Simulator(tie_break=tie_break, observer=sim_observer)
        self.metrics = MetricsRegistry()
        #: One tracer shared by every component on the cluster, bound to
        #: the simulated clock.  Disabled by default: the no-op path makes
        #: traced and untraced runs bit-identical in simulated time.
        self.tracer = Tracer(clock=lambda: self.sim.now, enabled=tracing)
        #: Per-run fault state (None when the run is healthy).
        self.faults = FaultInjector(faults) if faults is not None else None

        self.compute = SimNode(self.sim, testbed.compute)
        self.frontend = SimNode(self.sim, testbed.frontend)
        self.storage: List[SimNode] = []
        net = testbed.network
        self.link_cf = Link(
            self.sim, net.bandwidth_bps, net.latency_s,
            name="compute-frontend", faults=self.faults,
        )
        self.links_fs: List[Link] = []
        self.storage_nodes: List[OcsStorageNode] = []
        for i in range(testbed.storage_node_count):
            # Distinct node names keep per-node ledgers separable.
            spec = testbed.storage
            if testbed.storage_node_count > 1:
                spec = type(spec)(**{**spec.__dict__, "name": f"{spec.name}-{i}"})
            node = SimNode(self.sim, spec)
            self.storage.append(node)
            self.links_fs.append(
                Link(
                    self.sim, net.bandwidth_bps, net.latency_s,
                    name=f"frontend-storage-{i}", faults=self.faults,
                )
            )
            self.storage_nodes.append(
                OcsStorageNode(
                    self.sim, node, store, costs, i, tracer=self.tracer,
                    page_cache=cache.storage_tier(i) if cache is not None else None,
                )
            )

        self.ocs_frontend = OcsFrontend(
            self.sim, self.frontend, self.storage_nodes, self.links_fs, costs,
            faults=self.faults, tracer=self.tracer,
        )
        self.s3_gateway = S3Gateway(
            self.sim,
            self.frontend,
            self.storage,
            self.links_fs,
            store,
            costs,
            strict_types=strict_s3_types,
            tracer=self.tracer,
        )
        # Both services live on the frontend; the compute node reaches them
        # over the same physical link.
        self.ocs_client = RpcClient(
            self.sim, self.compute, self.link_cf, self.ocs_frontend.service, costs,
            tracer=self.tracer,
        )
        self.s3_client = RpcClient(
            self.sim, self.compute, self.link_cf, self.s3_gateway.service, costs,
            tracer=self.tracer,
        )
        #: Presto processes each split through a single-threaded driver;
        #: this pool is the worker's scan concurrency (cost model doc).
        self.scan_drivers = Resource(self.sim, costs.scan_stream_concurrency)

        #: Worker-to-worker shuffle path.  The exchange fabric lives on
        #: the compute node; pages cross a dedicated link (same class of
        #: 10GbE as the storage path) so shuffle traffic is ledgered
        #: separately from storage->compute movement and the fault
        #: injector can drop shuffle frames independently.
        self.link_exchange = Link(
            self.sim, net.bandwidth_bps, net.latency_s,
            name="exchange", faults=self.faults,
        )
        self.exchange = ExchangeFabric(
            self.sim, self.compute, costs, tracer=self.tracer
        )
        self.exchange_client = RpcClient(
            self.sim, self.compute, self.link_exchange, self.exchange.service,
            costs, tracer=self.tracer,
        )

    # -- placement -------------------------------------------------------------

    def node_for_key(self, index: int) -> int:
        """Round-robin object placement across storage nodes."""
        return index % len(self.storage_nodes)

    # -- load signals ----------------------------------------------------------

    def storage_queue_depth(self) -> int:
        """Deepest storage-node core queue right now (backpressure signal).

        The query service defers dispatching new queries while this
        exceeds its configured threshold — the OASIS observation that
        contention on storage-side compute is what breaks offloading
        under concurrency.
        """
        return max((node.cores.queue_length for node in self.storage), default=0)

    # -- reporting ----------------------------------------------------------------

    def bytes_to_compute(self) -> int:
        """Data movement from the storage layer into Presto (paper metric)."""
        return self.link_cf.ledger.total_bytes(dst=self.compute.name)

    def bytes_from_compute(self) -> int:
        return self.link_cf.ledger.total_bytes(src=self.compute.name)

    def shuffle_bytes(self) -> int:
        """Bytes moved worker-to-worker over the exchange link."""
        return self.link_exchange.ledger.total_bytes(dst=self.compute.name)
