"""Testbed configuration mirroring the paper's Table 1.

The paper evaluates on three physical machines:

* a **compute node** running a single-node Presto deployment
  (Xeon Gold 6226R, 64 cores @ 2.9 GHz, 384 GB RAM, 1 TB NVMe),
* an **OCS frontend node** (Xeon Silver 4410Y, 48 cores @ 3.9 GHz,
  64 GB RAM, 1 TB NVMe), and
* an **OCS storage node** deliberately restricted to 16 cores @ 2.0 GHz
  to emulate resource-constrained production storage hardware
  (64 GB RAM, 1 TB NVMe + 512 GB SATA SSD),

all on a 10 GbE network.  :class:`TestbedSpec` captures those numbers and
is the single source the simulator's resource model reads, so experiments
can dial a different testbed without touching cost-model code.

Every public spec here is a frozen, keyword-only dataclass whose
``validate()`` runs at construction: a zero-core node, an out-of-range
probability, or a negative bandwidth fails with a typed
:class:`~repro.errors.ConfigError` where the value was written, not deep
inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping

from repro.errors import ConfigError

GIB = 1024**3
GB = 10**9
MB = 10**6
KB = 10**3


@dataclass(frozen=True, kw_only=True)
class NodeSpec:
    """Hardware description of one machine in the testbed."""

    name: str
    cores: int
    clock_ghz: float
    memory_gb: int
    disk_bandwidth_bps: float
    #: Fraction of theoretical core throughput realistically achieved by a
    #: query engine (branchy, memory-bound code does not retire 1 useful
    #: row-op per cycle).
    ipc_efficiency: float = 1.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"node {self.name!r} needs at least one core, got {self.cores}")
        if self.clock_ghz <= 0:
            raise ConfigError(f"node {self.name!r} clock must be positive, got {self.clock_ghz}")
        if self.memory_gb <= 0:
            raise ConfigError(f"node {self.name!r} memory must be positive, got {self.memory_gb}")
        if self.disk_bandwidth_bps <= 0:
            raise ConfigError(
                f"node {self.name!r} disk bandwidth must be positive, "
                f"got {self.disk_bandwidth_bps}"
            )
        if not 0.0 < self.ipc_efficiency <= 1.0:
            raise ConfigError(
                f"node {self.name!r} ipc_efficiency must be in (0, 1], "
                f"got {self.ipc_efficiency}"
            )

    @property
    def effective_hz(self) -> float:
        """Aggregate useful cycles per second across all cores."""
        return self.cores * self.clock_ghz * 1e9 * self.ipc_efficiency


@dataclass(frozen=True, kw_only=True)
class NetworkSpec:
    """Interconnect description (paper: 10 GbE switch)."""

    bandwidth_bps: float = 10e9 / 8  # 10 GbE -> 1.25 GB/s
    latency_s: float = 100e-6
    #: Per-message framing/syscall overhead charged in addition to latency.
    per_message_cpu_cycles: float = 20_000.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError(f"network bandwidth must be positive, got {self.bandwidth_bps}")
        if self.latency_s < 0:
            raise ConfigError(f"network latency cannot be negative, got {self.latency_s}")
        if self.per_message_cpu_cycles < 0:
            raise ConfigError(
                f"per-message CPU cycles cannot be negative, got {self.per_message_cpu_cycles}"
            )


@dataclass(frozen=True, kw_only=True)
class FaultSpec:
    """Fault-injection knobs for resilience experiments (all off by default).

    The faults model degraded-but-alive infrastructure, mirroring how real
    NDP deployments fail: frames drop on the wire, a storage node's
    *pushdown engine* goes away (transiently or permanently) while its
    plain object-GET path keeps serving, or a node simply runs slow.  A
    :class:`~repro.sim.faults.FaultInjector` built from this spec holds the
    per-run mutable state (deterministic RNG, remaining transient budgets).
    """

    #: Probability that any single link transfer is lost in flight.
    link_drop_probability: float = 0.0
    #: node index -> number of initial pushdown requests that fail with
    #: UNAVAILABLE before the node's embedded engine recovers.
    transient_storage_failures: Mapping[int, int] = field(default_factory=dict)
    #: Node indices whose embedded engine never answers (raw GETs still work).
    permanent_storage_failures: FrozenSet[int] = frozenset()
    #: node index -> wall-time multiplier for pushdown service on that node.
    storage_latency_multipliers: Mapping[int, float] = field(default_factory=dict)
    #: Seed for the injector's deterministic RNG (same seed -> same trace).
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not 0.0 <= self.link_drop_probability < 1.0:
            raise ConfigError(
                f"link_drop_probability must be in [0, 1), got {self.link_drop_probability}"
            )
        for node, count in self.transient_storage_failures.items():
            if node < 0:
                raise ConfigError(f"negative storage node index {node}")
            if count < 0:
                raise ConfigError(f"negative transient failure count for node {node}")
        for node in self.permanent_storage_failures:
            if node < 0:
                raise ConfigError(f"negative storage node index {node}")
        for node, mult in self.storage_latency_multipliers.items():
            if mult < 1.0:
                raise ConfigError(f"latency multiplier for node {node} must be >= 1.0")


@dataclass(frozen=True, kw_only=True)
class ServiceSpec:
    """Knobs of the multi-tenant query service (:mod:`repro.service`).

    The service layers admission control and concurrent scheduling over
    one shared simulated cluster: at most ``max_active_queries`` queries
    execute at once, at most ``max_queue_depth`` more wait in the run
    queue, and per-tenant in-flight / memory limits bound what any one
    tenant can have admitted.  Every limit violation surfaces as a typed
    :class:`~repro.errors.AdmissionError` subclass.
    """

    #: Queries executing concurrently on the shared cluster.
    max_active_queries: int = 4
    #: Bounded run queue; submissions beyond it are rejected with
    #: ``ADMISSION_QUEUE_FULL``.
    max_queue_depth: int = 32
    #: Simulated seconds a query may wait in the queue before failing
    #: with ``ADMISSION_QUEUE_TIMEOUT``; ``None`` waits forever.
    queue_timeout_s: float | None = None
    #: Max queued+running queries per tenant (``ADMISSION_TENANT_LIMIT``);
    #: ``None`` leaves tenants unbounded.
    per_tenant_max_inflight: int | None = None
    #: Per-tenant budget over the memory estimates of admitted queries
    #: (``ADMISSION_MEMORY_BUDGET``); ``None`` disables the budget.
    per_tenant_memory_bytes: int | None = None
    #: Memory estimate charged to a query that does not declare one.
    default_query_memory_bytes: int = 64 * MB
    #: Dispatch policy: "fifo" (arrival order) or "fair" (fair-share
    #: across tenants: least-loaded, then least-served tenant first).
    policy: str = "fifo"
    #: Defer dispatch while any storage node's core queue is at least
    #: this deep (backpressure); ``None`` disables the check.
    backpressure_queue_depth: int | None = None
    #: Re-check interval (simulated seconds) while backpressure holds.
    backpressure_poll_s: float = 0.002
    #: Record spans for every query; the SLO reporter derives latency,
    #: queue-wait, and per-tenant throughput from them.
    tracing: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.max_active_queries < 1:
            raise ConfigError(
                f"max_active_queries must be >= 1, got {self.max_active_queries}"
            )
        if self.max_queue_depth < 0:
            raise ConfigError(
                f"max_queue_depth cannot be negative, got {self.max_queue_depth}"
            )
        if self.queue_timeout_s is not None and self.queue_timeout_s <= 0:
            raise ConfigError(
                f"queue_timeout_s must be positive, got {self.queue_timeout_s}"
            )
        if self.per_tenant_max_inflight is not None and self.per_tenant_max_inflight < 1:
            raise ConfigError(
                f"per_tenant_max_inflight must be >= 1, "
                f"got {self.per_tenant_max_inflight}"
            )
        if self.per_tenant_memory_bytes is not None and self.per_tenant_memory_bytes <= 0:
            raise ConfigError(
                f"per_tenant_memory_bytes must be positive, "
                f"got {self.per_tenant_memory_bytes}"
            )
        if self.default_query_memory_bytes <= 0:
            raise ConfigError(
                f"default_query_memory_bytes must be positive, "
                f"got {self.default_query_memory_bytes}"
            )
        if self.policy not in ("fifo", "fair"):
            raise ConfigError(
                f"policy must be 'fifo' or 'fair', got {self.policy!r}"
            )
        if self.backpressure_queue_depth is not None and self.backpressure_queue_depth < 1:
            raise ConfigError(
                f"backpressure_queue_depth must be >= 1, "
                f"got {self.backpressure_queue_depth}"
            )
        if self.backpressure_poll_s <= 0:
            raise ConfigError(
                f"backpressure_poll_s must be positive, got {self.backpressure_poll_s}"
            )


@dataclass(frozen=True, kw_only=True)
class CacheSpec:
    """Knobs of the hybrid result/page cache (:mod:`repro.cache`).

    Two tiers share this one spec: the coordinator-tier result cache
    (whole-query results plus per-split pushed-subplan pages, keyed by
    canonical Substrait fingerprint + object versions) and the
    storage-tier page cache on each OCS node (pushed-subplan Arrow
    result pages keyed by object/row-group/fingerprint).  Budgets are
    byte ceilings enforced by deterministic eviction; per-tenant
    reservations are eviction *floors* — no tenant's resident bytes can
    be evicted below its reservation by another tenant's fills.
    """

    #: Coordinator-tier budget over whole-query result entries.
    result_budget_bytes: int = 64 * MB
    #: Coordinator-tier budget over per-split page entries.
    split_budget_bytes: int = 128 * MB
    #: Per-OCS-node budget over storage-tier page entries.
    storage_budget_bytes: int = 64 * MB
    #: Eviction policy: "lru" (least-recently-used first) or "cost"
    #: (cheapest-to-recompute first: lowest cost density, then LRU).
    policy: str = "lru"
    #: tenant name -> bytes of coordinator-tier residency that other
    #: tenants' fills may never evict.
    tenant_reservations: Mapping[str, int] = field(default_factory=dict)
    #: Serve whole-query results from the coordinator tier.
    enable_results: bool = True
    #: Serve/fill per-split pages at the coordinator tier (the tier
    #: behind partial-hit hybrid plans).
    enable_splits: bool = True
    #: Serve/fill pushed-subplan pages at the OCS storage tier.
    enable_storage: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for label, value in (
            ("result_budget_bytes", self.result_budget_bytes),
            ("split_budget_bytes", self.split_budget_bytes),
            ("storage_budget_bytes", self.storage_budget_bytes),
        ):
            if value < 0:
                raise ConfigError(f"{label} cannot be negative, got {value}")
        if self.policy not in ("lru", "cost"):
            raise ConfigError(f"cache policy must be 'lru' or 'cost', got {self.policy!r}")
        for tenant, reserved in self.tenant_reservations.items():
            if reserved < 0:
                raise ConfigError(
                    f"tenant {tenant!r} reservation cannot be negative, got {reserved}"
                )

    def key(self) -> tuple:
        """Hashable identity (used to memoize shared cache managers)."""
        return (
            self.result_budget_bytes,
            self.split_budget_bytes,
            self.storage_budget_bytes,
            self.policy,
            tuple(sorted(self.tenant_reservations.items())),
            self.enable_results,
            self.enable_splits,
            self.enable_storage,
        )


@dataclass(frozen=True, kw_only=True)
class TestbedSpec:
    """The full three-node testbed of Table 1."""

    # Not a test class, despite the name (keeps pytest collection quiet).
    __test__ = False

    compute: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="compute",
            cores=64,
            clock_ghz=2.9,
            memory_gb=384,
            disk_bandwidth_bps=2.5 * GB,
            ipc_efficiency=0.35,
        )
    )
    frontend: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="ocs-frontend",
            cores=48,
            clock_ghz=3.9,
            memory_gb=64,
            disk_bandwidth_bps=2.5 * GB,
            ipc_efficiency=0.35,
        )
    )
    storage: NodeSpec = field(
        default_factory=lambda: NodeSpec(
            name="ocs-storage",
            cores=16,
            clock_ghz=2.0,
            memory_gb=64,
            disk_bandwidth_bps=1.8 * GB,
            ipc_efficiency=0.35,
        )
    )
    network: NetworkSpec = field(default_factory=NetworkSpec)
    storage_node_count: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.storage_node_count < 1:
            raise ConfigError(
                f"testbed needs at least one storage node, got {self.storage_node_count}"
            )
        # Node/network specs validate themselves at construction; re-check
        # here so hand-built instances passed in cannot skip validation.
        for spec in (self.compute, self.frontend, self.storage):
            spec.validate()
        self.network.validate()

    def node(self, name: str) -> NodeSpec:
        """Look up a node spec by role name."""
        for spec in (self.compute, self.frontend, self.storage):
            if spec.name == name:
                return spec
        raise KeyError(f"no node named {name!r} in testbed")


#: Default testbed used by examples, benches, and integration tests.
DEFAULT_TESTBED = TestbedSpec()
