"""Fused vectorized kernels: Filter/Project chains compiled to one pass.

The tree-walk reference path runs each :class:`FilterOperator` /
:class:`ProjectOperator` separately: every filter evaluates its whole
predicate over every input row and then copies *every* column of the
page through ``batch.filter``, and every project re-evaluates shared
subexpressions from scratch.  The fused path compiles a maximal run of
filter/project operators into a single :class:`FusedFilterProjectOperator`
that makes one pass per page with three optimizations:

* **Short-circuit selection** — the conjuncts of each predicate (and the
  predicates of successive filters, including join Bloom probes, which
  are ordinary boolean expressions here) are applied one at a time; each
  conjunct only ever sees the rows that survived the previous ones.
  This is semantics-preserving under SQL 3VL: ``AND`` is definitely TRUE
  exactly when every conjunct is definitely TRUE, so sequential
  definitely-TRUE masks select the same rows as one combined mask.
* **Late materialization** — input columns are gathered (copied to the
  current selection) only when an expression first references them;
  columns that are never referenced before the final projection are
  never copied at all, and columns referenced only after a selective
  predicate are gathered at the surviving-row count.
* **Common-subexpression elimination** — identical subtrees appearing
  more than once across the fused predicates and projections (expression
  nodes are frozen dataclasses, hashable and structurally comparable)
  are evaluated once into a synthetic ``$cse<i>`` column and referenced
  thereafter, so e.g. a quantity computed in the WHERE clause and
  re-projected in SELECT is computed a single time.

Numeric results are bit-identical to the tree-walk path by construction:
the fused operator evaluates the *same* :mod:`repro.exec.expressions`
nodes (the single source of truth for the numeric-semantics contract —
see ``docs/KERNELS.md``) on row subsets, and every node is row-wise.
The compiler is conservative: any expression shape it cannot rewrite
makes it fall back to the original unfused operators.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.record_batch import RecordBatch
from repro.arrowsim.schema import Field, Schema
from repro.errors import ExecutionError
from repro.exec.expressions import AndExpr, ColumnExpr, Expr
from repro.exec.operators import FilterOperator, Operator, ProjectOperator

__all__ = [
    "FusedFilterProjectOperator",
    "FusionStats",
    "fuse_operators",
]


# --------------------------------------------------------------------------
# Expression rewriting
# --------------------------------------------------------------------------


def _with_children(expr: Expr, children: Tuple[Expr, ...]) -> Expr:
    """Rebuild ``expr`` with new children (same order as ``children()``)."""
    remaining = list(children)
    updates: Dict[str, object] = {}
    for field in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, field.name)
        if isinstance(value, Expr):
            updates[field.name] = remaining.pop(0)
        elif (
            isinstance(value, tuple)
            and value
            and all(isinstance(v, Expr) for v in value)
        ):
            updates[field.name] = tuple(remaining[: len(value)])
            del remaining[: len(value)]
    if remaining:
        raise ExecutionError(
            f"cannot rebuild expression node {type(expr).__name__}"
        )
    return dataclasses.replace(expr, **updates)  # type: ignore[type-var]


def _rewrite_columns(expr: Expr, env: Dict[str, Expr]) -> Expr:
    """Substitute every column reference through a projection namespace."""
    if isinstance(expr, ColumnExpr):
        try:
            return env[expr.name]
        except KeyError:
            raise ExecutionError(
                f"fused chain references unknown column {expr.name!r}"
            ) from None
    children = expr.children()
    if not children:
        return expr
    rebuilt = tuple(_rewrite_columns(c, env) for c in children)
    if all(a is b for a, b in zip(rebuilt, children)):
        return expr
    return _with_children(expr, rebuilt)


def _substitute(expr: Expr, table: Dict[Expr, Expr]) -> Expr:
    """Replace whole subtrees by table lookup, largest (outermost) first."""
    hit = table.get(expr)
    if hit is not None:
        return hit
    children = expr.children()
    if not children:
        return expr
    rebuilt = tuple(_substitute(c, table) for c in children)
    if all(a is b for a, b in zip(rebuilt, children)):
        return expr
    return _with_children(expr, rebuilt)


def _split_conjuncts(pred: Expr) -> List[Expr]:
    """Flatten nested ANDs into an ordered conjunct list (3VL-equivalent
    for filtering: AND is definitely TRUE iff every conjunct is)."""
    if isinstance(pred, AndExpr):
        out: List[Expr] = []
        for operand in pred.operands:
            out.extend(_split_conjuncts(operand))
        return out
    return [pred]


def _count_subtrees(exprs: Sequence[Expr], counts: Dict[Expr, int]) -> None:
    for expr in exprs:
        for node in expr.walk():
            if node.node_count() < 2:
                continue  # leaves are free; caching them only adds traffic
            counts[node] = counts.get(node, 0) + 1


def _count_refs(exprs: Sequence[Expr], name: str) -> int:
    return sum(
        1
        for expr in exprs
        for node in expr.walk()
        if isinstance(node, ColumnExpr) and node.name == name
    )


def _inline_single_use(
    cse_defs: List[Tuple[str, Expr]],
    predicates: List[Expr],
    projections: Optional[List[Tuple[str, Expr]]],
) -> Tuple[List[Tuple[str, Expr]], List[Expr], Optional[List[Tuple[str, Expr]]]]:
    """Inline CSE definitions referenced at most once; drop dead ones."""
    # Defs only reference earlier defs, so walking from the innermost
    # (last) def backwards resolves chains in one pass.
    defs = list(cse_defs)
    for index in range(len(defs) - 1, -1, -1):
        name, body = defs[index]
        users: List[Expr] = [d[1] for d in defs if d[0] != name]
        users += predicates + [e for _, e in (projections or [])]
        if _count_refs(users, name) > 1:
            continue
        table = {ColumnExpr(name, body.dtype): body}
        defs = [
            (n, b if n == name else _substitute(b, table)) for n, b in defs
        ]
        del defs[index]
        predicates = [_substitute(p, table) for p in predicates]
        if projections is not None:
            projections = [(n, _substitute(e, table)) for n, e in projections]
    return defs, predicates, projections


# --------------------------------------------------------------------------
# Compilation
# --------------------------------------------------------------------------


@dataclass
class FusionStats:
    """Cumulative compiler statistics (one instance per FusedBackend)."""

    chains_fused: int = 0
    operators_fused: int = 0
    predicates: int = 0
    cse_definitions: int = 0
    cse_references_saved: int = 0
    fallbacks: int = 0


def _compile_run(
    ops: Sequence[Operator], stats: Optional[FusionStats]
) -> "FusedFilterProjectOperator":
    env: Optional[Dict[str, Expr]] = None
    predicates: List[Expr] = []
    projections: Optional[List[Tuple[str, Expr]]] = None
    output_schema: Optional[Schema] = None
    for op in ops:
        if isinstance(op, FilterOperator):
            pred = op.predicate if env is None else _rewrite_columns(op.predicate, env)
            predicates.extend(_split_conjuncts(pred))
        elif isinstance(op, ProjectOperator):
            rewritten = [
                (name, expr if env is None else _rewrite_columns(expr, env))
                for name, expr in op.projections
            ]
            env = dict(rewritten)
            projections = rewritten
            output_schema = op.output_schema()
        else:  # pragma: no cover - guarded by fuse_operators
            raise ExecutionError(f"cannot fuse operator {op.name!r}")

    tops = predicates + [expr for _, expr in (projections or [])]
    counts: Dict[Expr, int] = {}
    _count_subtrees(tops, counts)
    first_seen = {expr: i for i, expr in enumerate(counts)}
    shared = sorted(
        (expr for expr, n in counts.items() if n >= 2),
        key=lambda e: (e.node_count(), first_seen[e]),
    )
    table: Dict[Expr, Expr] = {}
    cse_defs: List[Tuple[str, Expr]] = []
    for expr in shared:
        name = f"$cse{len(cse_defs)}"
        cse_defs.append((name, _substitute(expr, table)))
        table[expr] = ColumnExpr(name, expr.dtype)
    if table:
        predicates = [_substitute(p, table) for p in predicates]
        if projections is not None:
            projections = [(n, _substitute(e, table)) for n, e in projections]
        # Occurrence counting over the *original* trees over-shares: a
        # subtree occurring only inside a larger shared subtree ends up as
        # a definition with a single reference — pure overhead (an extra
        # materialized column to narrow).  Inline those back, innermost
        # defs last so a chain collapses fully.
        cse_defs, predicates, projections = _inline_single_use(
            cse_defs, predicates, projections
        )

    fused = FusedFilterProjectOperator(
        predicates=predicates,
        projections=projections,
        cse_defs=cse_defs,
        output_schema=output_schema,
    )
    if stats is not None:
        stats.chains_fused += 1
        stats.operators_fused += len(ops)
        stats.predicates += len(predicates)
        stats.cse_definitions += len(cse_defs)
        users = [b for _, b in cse_defs] + predicates
        users += [e for _, e in (projections or [])]
        stats.cse_references_saved += sum(
            _count_refs(users, name) - 1 for name, _ in cse_defs
        )
    return fused


def fuse_operators(
    operators: Sequence[Operator], stats: Optional[FusionStats] = None
) -> List[Operator]:
    """Compile maximal Filter/Project runs into fused single-pass kernels.

    Non-fusible operators (aggregation, join, sort, limit, ...) pass
    through unchanged and delimit the fused runs.  Compilation failures
    fall back to the original operators for that run.
    """
    out: List[Operator] = []
    run: List[Operator] = []

    def flush() -> None:
        if not run:
            return
        try:
            out.append(_compile_run(run, stats))
        except (ExecutionError, TypeError):
            # Conservative fallback: run the chain unfused.
            if stats is not None:
                stats.fallbacks += 1
            out.extend(run)
        run.clear()

    for op in operators:
        if isinstance(op, (FilterOperator, ProjectOperator)):
            run.append(op)
        else:
            flush()
            out.append(op)
    flush()
    return out


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _ExprMeta:
    """Compile-time metadata for one evaluated expression."""

    expr: Expr
    #: Referenced column names, deterministic order (empty = pure literal).
    refs: Tuple[str, ...]
    node_count: int


def _meta(expr: Expr) -> _ExprMeta:
    return _ExprMeta(
        expr=expr,
        refs=tuple(sorted(expr.column_refs())),
        node_count=expr.node_count(),
    )


class _PageRun:
    """Per-page evaluation state: current selection + materialized columns."""

    def __init__(self, op: "FusedFilterProjectOperator", batch: RecordBatch) -> None:
        self.op = op
        self.batch = batch
        #: Row indices into ``batch`` still selected; None = all rows.
        self.sel: Optional[np.ndarray] = None
        self.num_rows = batch.num_rows
        #: Columns (input gathers and $cse results) aligned to ``sel``.
        self.columns: Dict[str, ColumnArray] = {}

    def materialize(self, name: str) -> ColumnArray:
        col = self.columns.get(name)
        if col is not None:
            return col
        definition = self.op.cse_meta.get(name)
        if definition is not None:
            col = self.evaluate(definition)
        else:
            col = self.batch.column(name)
            if self.sel is not None:
                col = col.take(self.sel)
            self.op.columns_gathered += 1
        self.columns[name] = col
        return col

    def evaluate(self, meta: _ExprMeta) -> ColumnArray:
        names = meta.refs
        if not names:
            # Pure-literal expression: gather an anchor column so the
            # sub-batch carries the current selection's row count.
            names = (self.batch.schema.names()[0],)
        columns = [self.materialize(name) for name in names]
        sub = RecordBatch(
            Schema([Field(n, c.dtype) for n, c in zip(names, columns)]),
            columns,
        )
        self.op.eval_cell_ops += self.num_rows * meta.node_count
        return meta.expr.evaluate(sub)

    def narrow(self, mask: np.ndarray, live: frozenset) -> None:
        """Apply a selection mask; drop dead columns instead of copying.

        ``live`` holds the names still referenced by later predicates or
        the final projections.  A live but unmaterialized $cse keeps its
        own references alive transitively (resolved here at runtime,
        since materialization state is per page).
        """
        if mask.all():
            return
        needed: set = set()
        stack = list(live)
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            definition = self.op.cse_meta.get(name)
            if definition is not None and name not in self.columns:
                stack.extend(definition.refs)
        for name in list(self.columns):
            if name in needed:
                self.columns[name] = self.columns[name].filter(mask)
            else:
                del self.columns[name]
        indices = np.flatnonzero(mask)
        self.sel = indices if self.sel is None else self.sel[mask]
        self.op.rows_skipped += self.num_rows - len(indices)
        self.num_rows = len(indices)


class FusedFilterProjectOperator(Operator):
    """Single-pass fused filter+project kernel (see module docstring)."""

    name = "fused"

    def __init__(
        self,
        predicates: Sequence[Expr],
        projections: Optional[Sequence[Tuple[str, Expr]]],
        cse_defs: Sequence[Tuple[str, Expr]],
        output_schema: Optional[Schema],
    ) -> None:
        super().__init__()
        self.predicates = list(predicates)
        self.projections = list(projections) if projections is not None else None
        self.cse_defs = dict(cse_defs)
        self._output_schema = output_schema
        if (self.projections is None) != (output_schema is None):
            raise ExecutionError("fused projections and output schema must pair up")
        #: rows x expression-nodes actually evaluated (drives simulated cost).
        self.eval_cell_ops = 0
        #: rows eliminated before at least one later predicate/projection.
        self.rows_skipped = 0
        #: input-column gathers performed (late-materialization visibility).
        self.columns_gathered = 0
        # Compile-time metadata: refs + node counts per evaluated
        # expression, and per-predicate liveness (names any later stage
        # still references) so narrowing can drop dead columns.
        self.cse_meta: Dict[str, _ExprMeta] = {
            name: _meta(expr) for name, expr in cse_defs
        }
        self.predicate_meta: List[_ExprMeta] = [_meta(p) for p in self.predicates]
        self.projection_meta: Optional[List[_ExprMeta]] = (
            [_meta(e) for _, e in self.projections]
            if self.projections is not None
            else None
        )
        # (The passthrough-filter output is re-gathered from the input
        # page via ``take``, so materialized columns only ever feed later
        # predicates / projections — dead ones can always be dropped.)
        self.live_after: List[frozenset] = []
        for index in range(len(self.predicates)):
            later = self.predicate_meta[index + 1 :]
            if self.projection_meta is not None:
                later = later + self.projection_meta
            self.live_after.append(frozenset(n for m in later for n in m.refs))

    @property
    def expression_node_count(self) -> int:
        """Total fused expression size (parallel to ProjectOperator's)."""
        exprs = self.predicates + [e for _, e in (self.projections or [])]
        exprs += list(self.cse_defs.values())
        return sum(e.node_count() for e in exprs)

    def output_schema(self) -> Optional[Schema]:
        return self._output_schema

    def _process(self, batch: RecordBatch) -> RecordBatch:
        run = _PageRun(self, batch)
        for meta, live in zip(self.predicate_meta, self.live_after):
            result = run.evaluate(meta)
            mask = result.values.astype(bool) & result.is_valid()
            run.narrow(mask, live)
        if self.projection_meta is not None:
            assert self._output_schema is not None
            columns = [run.evaluate(meta) for meta in self.projection_meta]
            return RecordBatch(self._output_schema, columns)
        if run.sel is None:
            return batch
        return batch.take(run.sel)
