"""Page-at-a-time vectorized operators.

Each operator consumes :class:`RecordBatch` pages via ``process`` and
emits any buffered remainder from ``finish`` — the classic push-based
pipeline.  Operators count rows in/out; the engines read those counters
to charge simulated CPU and the connector's EventListener reads them for
pushdown monitoring.

Sorting uses rank codes per key (strings by lexicographic rank, floats by
IEEE-754 total order) so multi-key ASC/DESC sorts are a single stable
``np.lexsort``.  NULLs sort last in both directions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.arrowsim.schema import Field, Schema
from repro.errors import ExecutionError
from repro.exec.aggregates import AggregateSpec, grouped_aggregate
from repro.exec.expressions import Expr

__all__ = [
    "Operator",
    "ProjectOperator",
    "FilterOperator",
    "HashAggregationOperator",
    "SortOperator",
    "TopNOperator",
    "LimitOperator",
    "sort_indices",
    "run_operators",
]

SortKey = Tuple[str, bool]  # (column name, descending)


def _sortable_bits(values: np.ndarray) -> np.ndarray:
    """Map floats to uint64 whose unsigned order is IEEE total order."""
    if values.dtype == np.float32:
        bits = np.ascontiguousarray(values).view(np.uint32).astype(np.uint64)
        sign = np.uint64(1) << np.uint64(31)
        full = np.uint64(0xFFFFFFFF)
    else:
        bits = np.ascontiguousarray(values.astype(np.float64)).view(np.uint64)
        sign = np.uint64(1) << np.uint64(63)
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
    negative = (bits & sign) != 0
    return np.where(negative, full - bits, bits | sign)


def _rank_codes(col: ColumnArray) -> np.ndarray:
    """Dense int64 ranks whose order matches the column's sort order."""
    values = col.values
    if col.dtype.name == "string":
        values = values.astype(str)
    elif col.dtype.is_floating:
        values = _sortable_bits(values)
    _, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64).reshape(-1)


def sort_indices(batch: RecordBatch, sort_keys: Sequence[SortKey]) -> np.ndarray:
    """Stable argsort by multiple keys; NULLs last regardless of direction."""
    if not sort_keys:
        raise ExecutionError("sort requires at least one key")
    arrays = []
    big = np.iinfo(np.int64).max
    for name, descending in sort_keys:
        col = batch.column(name)
        codes = _rank_codes(col)
        if descending:
            codes = -codes
        null_mask = ~col.is_valid()
        if null_mask.any():
            codes = np.where(null_mask, big, codes)
        arrays.append(codes)
    # np.lexsort treats the LAST key as primary.
    return np.lexsort(list(reversed(arrays)))


class Operator:
    """Base push-based operator with row accounting."""

    name = "operator"

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0

    def process(self, batch: RecordBatch) -> Optional[RecordBatch]:
        """Consume one page; return an output page or None (buffered)."""
        self.rows_in += batch.num_rows
        out = self._process(batch)
        if out is not None:
            self.rows_out += out.num_rows
        return out

    def finish(self) -> Optional[RecordBatch]:
        """Flush any buffered output at end of stream."""
        out = self._finish()
        if out is not None:
            self.rows_out += out.num_rows
        return out

    def _process(self, batch: RecordBatch) -> Optional[RecordBatch]:  # pragma: no cover
        raise NotImplementedError

    def _finish(self) -> Optional[RecordBatch]:
        return None


class ProjectOperator(Operator):
    """Evaluate named expressions into a new page (column & expression project)."""

    name = "project"

    def __init__(self, projections: Sequence[Tuple[str, Expr]]) -> None:
        super().__init__()
        if not projections:
            raise ExecutionError("projection needs at least one expression")
        self.projections = list(projections)

    @property
    def expression_node_count(self) -> int:
        """Total expression-tree size (drives per-row CPU cost)."""
        return sum(expr.node_count() for _, expr in self.projections)

    def output_schema(self) -> Schema:
        return Schema([Field(name, expr.dtype) for name, expr in self.projections])

    def _process(self, batch: RecordBatch) -> RecordBatch:
        columns = [expr.evaluate(batch) for _, expr in self.projections]
        return RecordBatch(self.output_schema(), columns)


class FilterOperator(Operator):
    """Keep rows whose predicate is definitely TRUE (SQL 3VL at WHERE)."""

    name = "filter"

    def __init__(self, predicate: Expr) -> None:
        super().__init__()
        if predicate.dtype.name != "bool":
            raise ExecutionError(
                f"filter predicate must be boolean, got {predicate.dtype}"
            )
        self.predicate = predicate

    def _process(self, batch: RecordBatch) -> RecordBatch:
        result = self.predicate.evaluate(batch)
        mask = result.values.astype(bool) & result.is_valid()
        return batch.filter(mask)


class HashAggregationOperator(Operator):
    """GROUP BY aggregation (single / partial / final phase)."""

    name = "aggregate"

    def __init__(
        self,
        key_names: Sequence[str],
        specs: Sequence[AggregateSpec],
        phase: str = "single",
    ) -> None:
        super().__init__()
        self.key_names = list(key_names)
        self.specs = list(specs)
        self.phase = phase
        self._pages: List[RecordBatch] = []

    def _process(self, batch: RecordBatch) -> None:
        self._pages.append(batch)
        return None

    def _finish(self) -> Optional[RecordBatch]:
        if not self._pages:
            return None
        merged = concat_batches(self._pages)
        self._pages.clear()
        return grouped_aggregate(merged, self.key_names, self.specs, phase=self.phase)


class SortOperator(Operator):
    """Full sort; buffers the entire input."""

    name = "sort"

    def __init__(self, sort_keys: Sequence[SortKey]) -> None:
        super().__init__()
        self.sort_keys = list(sort_keys)
        self._pages: List[RecordBatch] = []

    def _process(self, batch: RecordBatch) -> None:
        self._pages.append(batch)
        return None

    def _finish(self) -> Optional[RecordBatch]:
        if not self._pages:
            return None
        merged = concat_batches(self._pages)
        self._pages.clear()
        if merged.num_rows == 0:
            return merged
        return merged.take(sort_indices(merged, self.sort_keys))


class TopNOperator(Operator):
    """ORDER BY + LIMIT fused: keeps only the current best N rows."""

    name = "topn"

    def __init__(self, n: int, sort_keys: Sequence[SortKey]) -> None:
        super().__init__()
        if n < 0:
            raise ExecutionError(f"top-N bound must be >= 0, got {n}")
        self.n = n
        self.sort_keys = list(sort_keys)
        self._best: Optional[RecordBatch] = None

    def _process(self, batch: RecordBatch) -> None:
        if self.n == 0:
            return None
        merged = batch if self._best is None else concat_batches([self._best, batch])
        if merged.num_rows > 0:
            order = sort_indices(merged, self.sort_keys)[: self.n]
            merged = merged.take(order)
        self._best = merged
        return None

    def _finish(self) -> Optional[RecordBatch]:
        best, self._best = self._best, None
        return best


class LimitOperator(Operator):
    """Pass through the first N rows."""

    name = "limit"

    def __init__(self, n: int) -> None:
        super().__init__()
        if n < 0:
            raise ExecutionError(f"limit must be >= 0, got {n}")
        self.n = n
        self._remaining = n

    def _process(self, batch: RecordBatch) -> Optional[RecordBatch]:
        if self._remaining <= 0:
            return None
        if batch.num_rows <= self._remaining:
            self._remaining -= batch.num_rows
            return batch
        out = batch.slice(0, self._remaining)
        self._remaining = 0
        return out


def run_operators(
    batches: Sequence[RecordBatch], operators: Sequence[Operator]
) -> List[RecordBatch]:
    """Push every page through the chain, then flush finishes in order."""
    streams: List[List[RecordBatch]] = [list(batches)]
    for op in operators:
        out: List[RecordBatch] = []
        for page in streams[-1]:
            result = op.process(page)
            if result is not None:
                out.append(result)
        tail = op.finish()
        if tail is not None:
            out.append(tail)
        streams.append(out)
    return streams[-1]
