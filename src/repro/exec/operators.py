"""Page-at-a-time vectorized operators.

Each operator consumes :class:`RecordBatch` pages via ``process`` and
emits any buffered remainder from ``finish`` — the classic push-based
pipeline.  Operators count rows in/out; the engines read those counters
to charge simulated CPU and the connector's EventListener reads them for
pushdown monitoring.

Sorting uses rank codes per key (strings by lexicographic rank, floats by
IEEE-754 total order) so multi-key ASC/DESC sorts are a single stable
``np.lexsort``.  NULLs sort last in both directions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.arrowsim.schema import Field, Schema
from repro.errors import ExecutionError
from repro.exec.aggregates import AggregateSpec, grouped_aggregate
from repro.exec.expressions import Expr

__all__ = [
    "Operator",
    "ProjectOperator",
    "FilterOperator",
    "HashAggregationOperator",
    "HashJoinOperator",
    "SortOperator",
    "TopNOperator",
    "LimitOperator",
    "sort_indices",
    "run_operators",
]

SortKey = Tuple[str, bool]  # (column name, descending)


def _sortable_bits(values: np.ndarray) -> np.ndarray:
    """Map floats to uint64 whose unsigned order is IEEE total order."""
    if values.dtype == np.float32:
        bits = np.ascontiguousarray(values).view(np.uint32).astype(np.uint64)
        sign = np.uint64(1) << np.uint64(31)
        full = np.uint64(0xFFFFFFFF)
    else:
        bits = np.ascontiguousarray(values.astype(np.float64)).view(np.uint64)
        sign = np.uint64(1) << np.uint64(63)
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
    negative = (bits & sign) != 0
    return np.where(negative, full - bits, bits | sign)


def _rank_codes(col: ColumnArray) -> np.ndarray:
    """Dense int64 ranks whose order matches the column's sort order."""
    values = col.values
    if col.dtype.name == "string":
        values = values.astype(str)
    elif col.dtype.is_floating:
        values = _sortable_bits(values)
    _, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64).reshape(-1)


def sort_indices(batch: RecordBatch, sort_keys: Sequence[SortKey]) -> np.ndarray:
    """Stable argsort by multiple keys; NULLs last regardless of direction."""
    if not sort_keys:
        raise ExecutionError("sort requires at least one key")
    arrays = []
    big = np.iinfo(np.int64).max
    for name, descending in sort_keys:
        col = batch.column(name)
        codes = _rank_codes(col)
        if descending:
            codes = -codes
        null_mask = ~col.is_valid()
        if null_mask.any():
            codes = np.where(null_mask, big, codes)
        arrays.append(codes)
    # np.lexsort treats the LAST key as primary.
    return np.lexsort(list(reversed(arrays)))


class Operator:
    """Base push-based operator with row accounting."""

    name = "operator"

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0

    def process(self, batch: RecordBatch) -> Optional[RecordBatch]:
        """Consume one page; return an output page or None (buffered)."""
        self.rows_in += batch.num_rows
        out = self._process(batch)
        if out is not None:
            self.rows_out += out.num_rows
        return out

    def finish(self) -> Optional[RecordBatch]:
        """Flush any buffered output at end of stream."""
        out = self._finish()
        if out is not None:
            self.rows_out += out.num_rows
        return out

    def _process(self, batch: RecordBatch) -> Optional[RecordBatch]:  # pragma: no cover
        raise NotImplementedError

    def _finish(self) -> Optional[RecordBatch]:
        return None


class ProjectOperator(Operator):
    """Evaluate named expressions into a new page (column & expression project)."""

    name = "project"

    def __init__(self, projections: Sequence[Tuple[str, Expr]]) -> None:
        super().__init__()
        if not projections:
            raise ExecutionError("projection needs at least one expression")
        self.projections = list(projections)

    @property
    def expression_node_count(self) -> int:
        """Total expression-tree size (drives per-row CPU cost)."""
        return sum(expr.node_count() for _, expr in self.projections)

    def output_schema(self) -> Schema:
        return Schema([Field(name, expr.dtype) for name, expr in self.projections])

    def _process(self, batch: RecordBatch) -> RecordBatch:
        columns = [expr.evaluate(batch) for _, expr in self.projections]
        return RecordBatch(self.output_schema(), columns)


class FilterOperator(Operator):
    """Keep rows whose predicate is definitely TRUE (SQL 3VL at WHERE)."""

    name = "filter"

    def __init__(self, predicate: Expr) -> None:
        super().__init__()
        if predicate.dtype.name != "bool":
            raise ExecutionError(
                f"filter predicate must be boolean, got {predicate.dtype}"
            )
        self.predicate = predicate

    def _process(self, batch: RecordBatch) -> RecordBatch:
        result = self.predicate.evaluate(batch)
        mask = result.values.astype(bool) & result.is_valid()
        return batch.filter(mask)


class HashAggregationOperator(Operator):
    """GROUP BY aggregation (single / partial / final phase)."""

    name = "aggregate"

    def __init__(
        self,
        key_names: Sequence[str],
        specs: Sequence[AggregateSpec],
        phase: str = "single",
    ) -> None:
        super().__init__()
        self.key_names = list(key_names)
        self.specs = list(specs)
        self.phase = phase
        self._pages: List[RecordBatch] = []

    def _process(self, batch: RecordBatch) -> None:
        self._pages.append(batch)
        return None

    def _finish(self) -> Optional[RecordBatch]:
        if not self._pages:
            return None
        merged = concat_batches(self._pages)
        self._pages.clear()
        return grouped_aggregate(merged, self.key_names, self.specs, phase=self.phase)


class HashJoinOperator(Operator):
    """Vectorized equi-join: build on the right input, probe with the left.

    ``add_build`` accepts the (smaller / broadcast / co-partitioned) right
    side; ``process`` then streams left pages through.  Matching is exact:
    per probe page the build and probe key columns are dictionary-encoded
    together (``np.unique`` over their concatenation) and matched with a
    sorted-codes ``searchsorted``, so there are no hash-collision false
    positives.  Rows whose key is NULL never match (SQL equi-join
    semantics); a LEFT join emits unmatched probe rows with NULL-extended
    build columns.  Output rows stay in probe order (build duplicates in
    build order), which keeps multi-stage replays byte-identical.

    ``"semi"`` emits each probe row at most once when a build match
    exists; ``"anti"`` emits exactly the probe rows with *no* build match
    (NOT EXISTS semantics: a NULL probe key never matches, so it *is*
    emitted by anti).  Both publish the probe schema unchanged — no
    build column is materialized.
    """

    name = "hashjoin"

    def __init__(
        self,
        kind: str,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        right_schema: Schema,
        right_renames: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__()
        if kind not in ("inner", "left", "semi", "anti"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        if not left_keys or len(left_keys) != len(right_keys):
            raise ExecutionError("join needs positionally paired key columns")
        self.kind = kind
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.right_schema = right_schema
        self.right_renames = dict(right_renames or {})
        self.build_rows = 0
        self._build_pages: List[RecordBatch] = []
        self._build: Optional[RecordBatch] = None

    # -- build side ----------------------------------------------------------

    def add_build(self, batch: RecordBatch) -> None:
        if self._build is not None:
            raise ExecutionError("build side already finished")
        self.build_rows += batch.num_rows
        self._build_pages.append(batch)

    def finish_build(self) -> None:
        if self._build is not None:
            return
        if self._build_pages:
            self._build = concat_batches(self._build_pages)
        else:
            self._build = RecordBatch.empty(self.right_schema)
        self._build_pages.clear()

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _comparable(col: ColumnArray) -> np.ndarray:
        values = col.values
        if col.dtype.name == "string":
            return values.astype(str)
        if col.dtype.is_floating:
            # Normalize -0.0 so it equals +0.0, matching SQL equality and
            # the exchange/Bloom hashing (hash_column does the same).
            normalized = np.asarray(values, dtype=np.float64).copy()
            normalized[normalized == 0.0] = 0.0  # simlint: ignore[float-eq]
            return _sortable_bits(normalized)
        return values

    def _key_codes(
        self, probe: RecordBatch
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Joint dictionary codes for build/probe keys; NULL keys -> -1."""
        assert self._build is not None
        build = self._build
        nb, npr = build.num_rows, probe.num_rows
        build_codes = np.zeros(nb, dtype=np.int64)
        probe_codes = np.zeros(npr, dtype=np.int64)
        build_null = np.zeros(nb, dtype=bool)
        probe_null = np.zeros(npr, dtype=bool)
        bound = 1
        int64_max = np.iinfo(np.int64).max
        for left_name, right_name in zip(self.left_keys, self.right_keys):
            bcol = build.column(right_name)
            pcol = probe.column(left_name)
            combined = np.concatenate(
                [self._comparable(bcol), self._comparable(pcol)]
            )
            uniq, inverse = np.unique(combined, return_inverse=True)
            inverse = inverse.reshape(-1).astype(np.int64)
            radix = int(len(uniq)) + 1
            if bound > int64_max // radix:
                # The mixed-radix combine would wrap int64 (several
                # high-cardinality keys): wrapped codes go negative (rows
                # silently treated as NULL keys) or collide (false matches).
                # Re-encode build+probe codes *jointly* to dense codes —
                # joint encoding preserves cross-array equality, density
                # bounds the radix by total row count.
                codes = np.concatenate([build_codes, probe_codes])
                _, dense = np.unique(codes, return_inverse=True)
                dense = dense.astype(np.int64).reshape(-1)
                build_codes, probe_codes = dense[:nb], dense[nb:]
                bound = int(dense.max()) + 1 if len(dense) else 1
            build_codes = build_codes * radix + inverse[:nb]
            probe_codes = probe_codes * radix + inverse[nb:]
            bound *= radix
            build_null |= ~bcol.is_valid()
            probe_null |= ~pcol.is_valid()
        build_codes[build_null] = -1
        probe_codes[probe_null] = -1
        return build_codes, probe_codes

    def output_schema(self, probe_schema: Schema) -> Schema:
        if self.kind in ("semi", "anti"):
            return probe_schema
        fields = list(probe_schema.fields)
        force_nullable = self.kind == "left"
        for f in self.right_schema.fields:
            fields.append(
                Field(
                    self.right_renames.get(f.name, f.name),
                    f.dtype,
                    nullable=f.nullable or force_nullable,
                )
            )
        return Schema(fields)

    # -- probe side ----------------------------------------------------------

    def _process(self, batch: RecordBatch) -> Optional[RecordBatch]:
        if self._build is None:
            self.finish_build()
        assert self._build is not None
        build = self._build
        build_codes, probe_codes = self._key_codes(batch)
        keep = build_codes >= 0
        order = np.argsort(build_codes[keep], kind="stable")
        build_index = np.flatnonzero(keep)[order]
        sorted_codes = build_codes[keep][order]
        lo = np.searchsorted(sorted_codes, probe_codes, side="left")
        hi = np.searchsorted(sorted_codes, probe_codes, side="right")
        counts = (hi - lo).astype(np.int64)
        counts[probe_codes < 0] = 0
        if self.kind in ("semi", "anti"):
            mask = counts > 0 if self.kind == "semi" else counts == 0
            return batch.take(np.flatnonzero(mask))
        if self.kind == "left":
            emit = np.maximum(counts, 1)
        else:
            emit = counts
        total = int(emit.sum())
        if total == 0:
            return RecordBatch.empty(self.output_schema(batch.schema))
        probe_idx = np.repeat(np.arange(batch.num_rows, dtype=np.int64), emit)
        starts = np.cumsum(emit) - emit
        pos_in_group = np.arange(total, dtype=np.int64) - np.repeat(starts, emit)
        matched = np.repeat(counts > 0, emit)
        build_pos = np.repeat(lo, emit) + pos_in_group
        if build_index.size:
            safe_pos = np.where(matched, build_pos, 0)
            build_idx = build_index[np.minimum(safe_pos, build_index.size - 1)]
        else:
            build_idx = np.zeros(total, dtype=np.int64)
        columns: List[ColumnArray] = list(batch.take(probe_idx).columns)
        for f in build.schema.fields:
            col = build.column(f.name)
            if build.num_rows:
                values = col.values[np.where(matched, build_idx, 0)]
                validity = col.is_valid()[np.where(matched, build_idx, 0)]
            else:
                values = f.dtype.empty_array(total)
                validity = np.zeros(total, dtype=bool)
            validity = validity & matched
            columns.append(ColumnArray(f.dtype, values, validity))
        return RecordBatch(self.output_schema(batch.schema), columns)


class SortOperator(Operator):
    """Full sort; buffers the entire input."""

    name = "sort"

    def __init__(self, sort_keys: Sequence[SortKey]) -> None:
        super().__init__()
        self.sort_keys = list(sort_keys)
        self._pages: List[RecordBatch] = []

    def _process(self, batch: RecordBatch) -> None:
        self._pages.append(batch)
        return None

    def _finish(self) -> Optional[RecordBatch]:
        if not self._pages:
            return None
        merged = concat_batches(self._pages)
        self._pages.clear()
        if merged.num_rows == 0:
            return merged
        return merged.take(sort_indices(merged, self.sort_keys))


class TopNOperator(Operator):
    """ORDER BY + LIMIT fused: keeps only the current best N rows."""

    name = "topn"

    def __init__(self, n: int, sort_keys: Sequence[SortKey]) -> None:
        super().__init__()
        if n < 0:
            raise ExecutionError(f"top-N bound must be >= 0, got {n}")
        self.n = n
        self.sort_keys = list(sort_keys)
        self._best: Optional[RecordBatch] = None

    def _process(self, batch: RecordBatch) -> None:
        if self.n == 0:
            return None
        merged = batch if self._best is None else concat_batches([self._best, batch])
        if merged.num_rows > 0:
            order = sort_indices(merged, self.sort_keys)[: self.n]
            merged = merged.take(order)
        self._best = merged
        return None

    def _finish(self) -> Optional[RecordBatch]:
        best, self._best = self._best, None
        return best


class LimitOperator(Operator):
    """Pass through the first N rows."""

    name = "limit"

    def __init__(self, n: int) -> None:
        super().__init__()
        if n < 0:
            raise ExecutionError(f"limit must be >= 0, got {n}")
        self.n = n
        self._remaining = n

    def _process(self, batch: RecordBatch) -> Optional[RecordBatch]:
        if self._remaining <= 0:
            return None
        if batch.num_rows <= self._remaining:
            self._remaining -= batch.num_rows
            return batch
        out = batch.slice(0, self._remaining)
        self._remaining = 0
        return out


def run_operators(
    batches: Sequence[RecordBatch], operators: Sequence[Operator]
) -> List[RecordBatch]:
    """Push every page through the chain, then flush finishes in order."""
    streams: List[List[RecordBatch]] = [list(batches)]
    for op in operators:
        out: List[RecordBatch] = []
        for page in streams[-1]:
            result = op.process(page)
            if result is not None:
                out.append(result)
        tail = op.finish()
        if tail is not None:
            out.append(tail)
        streams.append(out)
    return streams[-1]
