"""Pluggable execution backends for compute-side operator pipelines.

The coordinator routes every operator pipeline (split operators, final
stages, the operators stacked above a hash join) through a backend's
``compile`` hook before running it.  The tree-walk backend is the
identity — one operator per plan node, expressions re-evaluated
per reference — and is the reference for correctness.  The fused backend
compiles Filter/Project runs into single-pass vectorized kernels
(:mod:`repro.exec.kernels`); it must be digest-identical to tree-walk on
every query, which the parity harness (:mod:`repro.analysis.parity`)
asserts.

The OCS embedded engine intentionally stays on the tree-walk path:
storage-side execution models the paper's OCS runtime, and keeping it on
the reference path means pushed-vs-local comparisons always pit the
fused compute path against an independent evaluation.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ConfigError
from repro.exec.kernels import FusionStats, fuse_operators
from repro.exec.operators import Operator

__all__ = [
    "EXEC_BACKENDS",
    "ExecBackend",
    "FusedBackend",
    "TreeWalkBackend",
    "get_backend",
]

#: Valid ``RunConfig.exec_backend`` / ``Coordinator`` backend names.
EXEC_BACKENDS = ("tree", "fused")


class ExecBackend:
    """Compiles operator pipelines before the coordinator runs them."""

    name = "base"

    def compile(self, operators: Sequence[Operator]) -> List[Operator]:
        raise NotImplementedError  # pragma: no cover


class TreeWalkBackend(ExecBackend):
    """Reference backend: runs plans exactly as fragmented (identity)."""

    name = "tree"

    def compile(self, operators: Sequence[Operator]) -> List[Operator]:
        return list(operators)


class FusedBackend(ExecBackend):
    """Fuses Filter/Project chains into single-pass vectorized kernels."""

    name = "fused"

    def __init__(self) -> None:
        self.stats = FusionStats()

    def compile(self, operators: Sequence[Operator]) -> List[Operator]:
        return fuse_operators(operators, self.stats)


def get_backend(backend: Union[str, ExecBackend]) -> ExecBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecBackend):
        return backend
    if backend == "tree":
        return TreeWalkBackend()
    if backend == "fused":
        return FusedBackend()
    raise ConfigError(
        f"unknown exec backend {backend!r}; expected one of {EXEC_BACKENDS}"
    )
