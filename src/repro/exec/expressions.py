"""Typed scalar expressions with vectorized numpy evaluation.

This IR sits between the SQL analyzer and everything downstream: the
logical plan embeds these nodes, both engines evaluate them page-at-a-time,
and the Presto-OCS connector translates them into Substrait expressions.

NULL semantics: evaluation returns a :class:`ColumnArray` whose validity
mask is the AND of operand validities (SQL's null-propagation); filter
operators then treat NULL predicates as not-passing, matching SQL's
three-valued logic at the WHERE boundary.  Integer division by zero
yields NULL rather than raising, so adversarial inputs cannot crash a
storage node mid-plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.dtypes import BOOL, DATE32, DataType, FLOAT64, INT64, STRING
from repro.arrowsim.record_batch import RecordBatch
from repro.errors import ExpressionError

__all__ = [
    "Expr",
    "SCALAR_FUNCTION_NAMES",
    "ScalarFuncExpr",
    "scalar_function_dtype",
    "ColumnExpr",
    "LiteralExpr",
    "ArithExpr",
    "NegExpr",
    "CompareExpr",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "InExpr",
    "IsNullExpr",
    "CastExpr",
    "arithmetic_result_type",
]

_NUMERIC_RANK = {"int32": 0, "int64": 1, "float32": 2, "float64": 3}


def arithmetic_result_type(op: str, left: DataType, right: DataType) -> DataType:
    """Result type of ``left op right`` following Presto-style promotion."""
    if left is DATE32 and right.name in ("int32", "int64") and op in ("+", "-"):
        return DATE32
    if left.name not in _NUMERIC_RANK or right.name not in _NUMERIC_RANK:
        raise ExpressionError(
            f"arithmetic {op!r} not defined for {left} and {right}"
        )
    from repro.arrowsim.dtypes import FLOAT32, INT32

    winner = max(left.name, right.name, key=lambda n: _NUMERIC_RANK[n])
    return {"int32": INT32, "int64": INT64, "float32": FLOAT32, "float64": FLOAT64}[winner]


class Expr:
    """Base class: typed, hashable, vectorized-evaluable."""

    dtype: DataType

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def evaluate(self, batch: RecordBatch) -> ColumnArray:  # pragma: no cover
        raise NotImplementedError

    # -- analysis helpers ----------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes in this subtree (drives per-row CPU cost)."""
        return 1 + sum(c.node_count() for c in self.children())

    def column_refs(self) -> set[str]:
        refs: set[str] = set()
        for node in self.walk():
            if isinstance(node, ColumnExpr):
                refs.add(node.name)
        return refs

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return repr(self)


def _combine_validity(columns: Sequence[ColumnArray]) -> Optional[np.ndarray]:
    masks = [c.validity for c in columns if c.validity is not None]
    if not masks:
        return None
    out = masks[0].copy()
    for mask in masks[1:]:
        out &= mask
    return out


@dataclass(frozen=True)
class ColumnExpr(Expr):
    """Reference to an input column by name."""

    name: str
    dtype: DataType

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        return batch.column(self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LiteralExpr(Expr):
    """A constant broadcast to the page length."""

    value: object
    dtype: DataType

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        n = batch.num_rows
        if self.value is None:
            return ColumnArray(
                self.dtype, self.dtype.empty_array(n), np.zeros(n, dtype=bool)
            )
        if self.dtype is STRING:
            values = np.full(n, str(self.value), dtype=object)
        else:
            values = np.full(n, self.value, dtype=self.dtype.numpy_dtype)
        return ColumnArray(self.dtype, values)

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ArithExpr(Expr):
    """Binary arithmetic: + - * / %."""

    op: str
    left: Expr
    right: Expr
    dtype: DataType

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        lcol = self.left.evaluate(batch)
        rcol = self.right.evaluate(batch)
        validity = _combine_validity([lcol, rcol])
        lv, rv = lcol.values, rcol.values
        target = self.dtype.numpy_dtype
        integral = self.dtype.is_integer
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if self.op == "+":
                values = lv.astype(target) + rv.astype(target)
            elif self.op == "-":
                values = lv.astype(target) - rv.astype(target)
            elif self.op == "*":
                values = lv.astype(target) * rv.astype(target)
            elif self.op == "/":
                if integral:
                    zero = rv == 0
                    safe = np.where(zero, 1, rv).astype(target)
                    # Presto truncates integer division toward zero.  Stay in
                    # integer arithmetic: routing through float64 (lv / safe)
                    # loses precision for |values| > 2**53.
                    lt = lv.astype(target)
                    quot = np.floor_divide(lt, safe)
                    rem = lt - quot * safe
                    values = quot + ((rem != 0) & ((lt < 0) != (safe < 0)))
                    if zero.any():
                        extra = ~zero
                        validity = extra if validity is None else (validity & extra)
                else:
                    values = lv.astype(target) / rv.astype(target)
            elif self.op == "%":
                zero = rv == 0
                safe = np.where(zero, 1, rv)
                # SQL/Presto mod takes the dividend's sign (mod(-7, 3) = -1);
                # np.remainder takes the divisor's — np.fmod matches SQL.
                values = np.fmod(lv.astype(target), safe.astype(target))
                if zero.any():
                    extra = ~zero
                    validity = extra if validity is None else (validity & extra)
            else:
                raise ExpressionError(f"unknown arithmetic operator {self.op!r}")
        return ColumnArray(self.dtype, values, validity)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class NegExpr(Expr):
    """Unary minus."""

    operand: Expr
    dtype: DataType

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        col = self.operand.evaluate(batch)
        return ColumnArray(self.dtype, -col.values, col.validity)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


@dataclass(frozen=True)
class CompareExpr(Expr):
    """Comparison producing BOOL: = <> < <= > >=."""

    op: str
    left: Expr
    right: Expr
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        lcol = self.left.evaluate(batch)
        rcol = self.right.evaluate(batch)
        validity = _combine_validity([lcol, rcol])
        lv, rv = lcol.values, rcol.values
        if lcol.dtype is STRING or rcol.dtype is STRING:
            lv = lv.astype(object)
            rv = rv.astype(object)
        if self.op == "=":
            values = lv == rv
        elif self.op == "<>":
            values = lv != rv
        elif self.op == "<":
            values = lv < rv
        elif self.op == "<=":
            values = lv <= rv
        elif self.op == ">":
            values = lv > rv
        elif self.op == ">=":
            values = lv >= rv
        else:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")
        return ColumnArray(BOOL, np.asarray(values, dtype=bool), validity)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class AndExpr(Expr):
    """N-ary conjunction with SQL 3VL (false dominates null)."""

    operands: Tuple[Expr, ...]
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        # 3VL: FALSE if any operand is definitely false; NULL if no false
        # but some null; else TRUE.
        any_false = np.zeros(batch.num_rows, dtype=bool)
        any_null = np.zeros(batch.num_rows, dtype=bool)
        for op in self.operands:
            col = op.evaluate(batch)
            valid = col.is_valid()
            any_false |= valid & ~col.values.astype(bool)
            any_null |= ~valid
        validity = any_false | ~any_null
        values = ~any_false & ~any_null
        return ColumnArray(BOOL, values, validity)

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class OrExpr(Expr):
    """N-ary disjunction with SQL 3VL (true dominates null)."""

    operands: Tuple[Expr, ...]
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return self.operands

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        # 3VL: TRUE if any operand is definitely true; NULL if no true but
        # some null; else FALSE.
        any_true = np.zeros(batch.num_rows, dtype=bool)
        any_null = np.zeros(batch.num_rows, dtype=bool)
        for op in self.operands:
            col = op.evaluate(batch)
            valid = col.is_valid()
            any_true |= valid & col.values.astype(bool)
            any_null |= ~valid
        validity = any_true | ~any_null
        return ColumnArray(BOOL, any_true, validity)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class NotExpr(Expr):
    operand: Expr
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        col = self.operand.evaluate(batch)
        return ColumnArray(BOOL, ~col.values.astype(bool), col.validity)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(frozen=True)
class InExpr(Expr):
    """Membership against a literal list (vectorized np.isin)."""

    operand: Expr
    values: Tuple[object, ...]
    negated: bool = False
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        col = self.operand.evaluate(batch)
        if col.dtype is STRING:
            member = np.isin(col.values.astype(str), [str(v) for v in self.values])
        else:
            member = np.isin(col.values, np.asarray(self.values))
        if self.negated:
            member = ~member
        return ColumnArray(BOOL, member, col.validity)

    def __repr__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand!r} {neg}IN {list(self.values)!r})"


@dataclass(frozen=True)
class IsNullExpr(Expr):
    """NULL test — never returns NULL itself."""

    operand: Expr
    negated: bool = False
    dtype: DataType = BOOL

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        col = self.operand.evaluate(batch)
        is_null = ~col.is_valid()
        return ColumnArray(BOOL, ~is_null if self.negated else is_null)

    def __repr__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand!r} {suffix})"


def _round_half_away_from_zero(values: np.ndarray) -> np.ndarray:
    """Presto ``round``: halves round away from zero (round(2.5) = 3).

    ``np.round`` is half-to-even (banker's rounding), which disagrees on
    every .5 input.  Integer inputs pass through untouched so they never
    take a lossy trip through float64.
    """
    if values.dtype.kind in "iub":
        return values
    v = np.asarray(values, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        rounded = np.copysign(np.floor(np.abs(v) + 0.5), v)
        # Floats >= 2**52 are already integral, and adding 0.5 there can
        # round *up* in float arithmetic — leave them (and inf/NaN) alone.
        return np.where(np.abs(v) >= 2.0**52, v, rounded)


#: Scalar math functions: name -> (numpy ufunc, preserves-input-dtype).
#: Functions that don't preserve the input dtype return float64.
_SCALAR_FUNCS = {
    "abs": (np.abs, True),
    "sqrt": (np.sqrt, False),
    "floor": (np.floor, False),
    "ceil": (np.ceil, False),
    "round": (_round_half_away_from_zero, True),
    "ln": (np.log, False),
    "exp": (np.exp, False),
}

SCALAR_FUNCTION_NAMES = frozenset(_SCALAR_FUNCS)


def scalar_function_dtype(name: str, operand: DataType) -> DataType:
    """Result type of ``name(operand)``."""
    if name not in _SCALAR_FUNCS:
        raise ExpressionError(f"unknown scalar function {name!r}")
    _, preserves = _SCALAR_FUNCS[name]
    return operand if preserves else FLOAT64


@dataclass(frozen=True)
class ScalarFuncExpr(Expr):
    """Single-argument numeric scalar function (abs, sqrt, floor, ...)."""

    name: str
    operand: Expr
    dtype: DataType

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        func, _ = _SCALAR_FUNCS[self.name]
        col = self.operand.evaluate(batch)
        with np.errstate(invalid="ignore", divide="ignore"):
            values = func(col.values).astype(self.dtype.numpy_dtype)
        return ColumnArray(self.dtype, values, col.validity)

    def __repr__(self) -> str:
        return f"{self.name}({self.operand!r})"


@dataclass(frozen=True)
class CastExpr(Expr):
    operand: Expr
    dtype: DataType

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: RecordBatch) -> ColumnArray:
        col = self.operand.evaluate(batch)
        if self.dtype is col.dtype:
            return col
        if self.dtype is STRING:
            values = np.array([str(v) for v in col.values], dtype=object)
        elif col.dtype is STRING:
            try:
                values = col.values.astype(self.dtype.numpy_dtype)
            except ValueError as exc:
                raise ExpressionError(f"cannot cast strings: {exc}") from exc
        else:
            values = col.values.astype(self.dtype.numpy_dtype)
        return ColumnArray(self.dtype, values, col.validity)

    def __repr__(self) -> str:
        return f"CAST({self.operand!r} AS {self.dtype})"
