"""Vectorized query execution: typed expressions, operators, pipelines.

The same operator kernels execute in both engines — the Presto-class
compute engine (:mod:`repro.engine`) and the OCS embedded engine
(:mod:`repro.ocs`).  What differs between them is the *cost* each side is
charged by the simulator, not the answers: results are bit-identical by
construction, which is the pushdown-transparency invariant the test suite
hammers on.

Data flows as :class:`repro.arrowsim.RecordBatch` pages.
"""

from repro.exec.expressions import (
    AndExpr,
    ArithExpr,
    CastExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    InExpr,
    IsNullExpr,
    LiteralExpr,
    NegExpr,
    NotExpr,
    OrExpr,
)
from repro.exec.aggregates import AggregateSpec, grouped_aggregate, global_aggregate
from repro.exec.backend import (
    EXEC_BACKENDS,
    ExecBackend,
    FusedBackend,
    TreeWalkBackend,
    get_backend,
)
from repro.exec.kernels import FusedFilterProjectOperator, FusionStats, fuse_operators
from repro.exec.operators import (
    FilterOperator,
    HashAggregationOperator,
    LimitOperator,
    Operator,
    ProjectOperator,
    SortOperator,
    TopNOperator,
    run_operators,
)

__all__ = [
    "AggregateSpec",
    "AndExpr",
    "ArithExpr",
    "CastExpr",
    "ColumnExpr",
    "CompareExpr",
    "EXEC_BACKENDS",
    "ExecBackend",
    "Expr",
    "FilterOperator",
    "FusedBackend",
    "FusedFilterProjectOperator",
    "FusionStats",
    "HashAggregationOperator",
    "InExpr",
    "IsNullExpr",
    "LimitOperator",
    "LiteralExpr",
    "NegExpr",
    "NotExpr",
    "Operator",
    "OrExpr",
    "ProjectOperator",
    "SortOperator",
    "TopNOperator",
    "TreeWalkBackend",
    "fuse_operators",
    "get_backend",
    "global_aggregate",
    "grouped_aggregate",
    "run_operators",
]
