"""Vectorized hash aggregation with two-phase (partial/final) support.

Distributed execution needs aggregation split in two: each split (or each
OCS storage-node plan) produces *partial* states, and the downstream
worker merges them into *final* results — that merge is exactly the
"residual operator" the paper leaves on the compute node when aggregation
is pushed down.

Group ids are built by factorizing each key column (NULL is its own
group; float keys group by bit pattern so NaN == NaN) and fusing the
per-column codes with a mixed-radix combine.  Per-group reduction uses
``np.bincount`` / ``ufunc.at`` — no Python-level per-row loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.dtypes import DataType, FLOAT64, INT64, STRING
from repro.arrowsim.record_batch import RecordBatch
from repro.arrowsim.schema import Field, Schema
from repro.errors import ExecutionError

__all__ = ["AggregateSpec", "grouped_aggregate", "global_aggregate"]

_AGG_FUNCS = ("count", "sum", "avg", "min", "max", "variance", "stddev")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate call: ``func(arg)`` emitted as column ``output``."""

    func: str
    #: Input column name holding the (pre-projected) argument; None = COUNT(*).
    arg: Optional[str]
    output: str
    input_dtype: Optional[DataType] = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ExecutionError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.arg is None:
            raise ExecutionError(f"{self.func}(*) is not defined")

    @property
    def output_dtype(self) -> DataType:
        if self.func == "count":
            return INT64
        if self.func in ("avg", "variance", "stddev"):
            return FLOAT64
        if self.func == "sum":
            assert self.input_dtype is not None
            return FLOAT64 if self.input_dtype.is_floating else INT64
        assert self.input_dtype is not None
        return self.input_dtype

    def partial_fields(self) -> List[Field]:
        """Schema of this aggregate's partial state columns."""
        if self.func == "avg":
            return [
                Field(f"{self.output}$sum", FLOAT64),
                Field(f"{self.output}$count", INT64, nullable=False),
            ]
        if self.func in ("variance", "stddev"):
            return [
                Field(f"{self.output}$sum", FLOAT64),
                Field(f"{self.output}$sumsq", FLOAT64),
                Field(f"{self.output}$count", INT64, nullable=False),
            ]
        if self.func == "count":
            return [Field(self.output, INT64, nullable=False)]
        return [Field(self.output, self.output_dtype)]


# --------------------------------------------------------------------------
# Group-id construction
# --------------------------------------------------------------------------


def _factorize(col: ColumnArray) -> Tuple[np.ndarray, int]:
    """Dense codes per row; NULL gets its own code. Returns (codes, size)."""
    values = col.values
    if col.dtype is STRING:
        values = values.astype(str)
    elif col.dtype.is_floating:
        # Bit-pattern identity: NaNs with equal bits share a group.
        values = np.ascontiguousarray(values).view(np.uint64 if values.dtype == np.float64 else np.uint32)
    _, codes = np.unique(values, return_inverse=True)
    codes = codes.astype(np.int64).reshape(-1)
    size = int(codes.max()) + 1 if len(codes) else 0
    if col.validity is not None:
        codes = codes.copy()
        codes[~col.validity] = size
        size += 1
    return codes, max(size, 1)


_INT64_MAX = np.iinfo(np.int64).max


def _combine_codes(
    combined: np.ndarray, bound: int, codes: np.ndarray, size: int
) -> Tuple[np.ndarray, int]:
    """Mixed-radix fuse of one more key column, with overflow protection.

    ``combined`` holds codes in ``[0, bound)``.  ``combined * size + codes``
    silently wraps int64 once the running radix product exceeds 2**63 —
    several high-cardinality keys can then merge distinct groups (or go
    negative).  When the next step would overflow, re-factorize ``combined``
    to dense codes first; density bounds the new radix by the row count, so
    the product stays representable.
    """
    size = max(size, 1)
    if bound > _INT64_MAX // size:
        _, combined = np.unique(combined, return_inverse=True)
        combined = combined.astype(np.int64).reshape(-1)
        bound = int(combined.max()) + 1 if len(combined) else 1
        if bound > _INT64_MAX // size:  # pragma: no cover - needs >3e9 rows
            raise ExecutionError("group-key cardinality overflows int64 radix")
    return combined * size + codes, bound * size


def _group_rows(
    batch: RecordBatch, key_names: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, int]:
    """(group id per row, representative row per group, group count)."""
    combined = np.zeros(batch.num_rows, dtype=np.int64)
    bound = 1
    for name in key_names:
        codes, size = _factorize(batch.column(name))
        combined, bound = _combine_codes(combined, bound, codes, size)
    _, first_idx, inverse = np.unique(combined, return_index=True, return_inverse=True)
    return inverse.reshape(-1), first_idx, len(first_idx)


# --------------------------------------------------------------------------
# Per-aggregate reduction kernels
# --------------------------------------------------------------------------


def _dedup_for_distinct(
    gids: np.ndarray, col: ColumnArray
) -> Tuple[np.ndarray, ColumnArray]:
    """Keep one row per (group, value) pair, dropping NULLs."""
    valid = col.is_valid()
    codes, size = _factorize(col)
    bound = int(gids.max()) + 1 if len(gids) else 1
    pair, _ = _combine_codes(gids, bound, codes, size)
    _, keep = np.unique(pair, return_index=True)
    keep = keep[valid[keep]]
    return gids[keep], col.take(keep)


def _reduce_count(gids: np.ndarray, ngroups: int, col: Optional[ColumnArray]) -> Tuple[np.ndarray, None]:
    if col is None:
        counts = np.bincount(gids, minlength=ngroups)
    else:
        valid = col.is_valid()
        counts = np.bincount(gids[valid], minlength=ngroups)
    return counts.astype(np.int64), None


def _reduce_sum(
    gids: np.ndarray, ngroups: int, col: ColumnArray, out_dtype: DataType
) -> Tuple[np.ndarray, np.ndarray]:
    valid = col.is_valid()
    acc = np.zeros(ngroups, dtype=out_dtype.numpy_dtype)
    np.add.at(acc, gids[valid], col.values[valid].astype(out_dtype.numpy_dtype))
    seen = np.bincount(gids[valid], minlength=ngroups) > 0
    return acc, seen


def _reduce_minmax(
    gids: np.ndarray, ngroups: int, col: ColumnArray, func: str
) -> Tuple[np.ndarray, np.ndarray]:
    valid = col.is_valid()
    seen = np.bincount(gids[valid], minlength=ngroups) > 0
    if col.dtype is STRING:
        idx = np.flatnonzero(valid)
        out = np.empty(ngroups, dtype=object)
        out[:] = ""
        if len(idx):
            order = np.lexsort((col.values[idx].astype(str), gids[idx]))
            sorted_gids = gids[idx][order]
            uniq, first = np.unique(sorted_gids, return_index=True)
            if func == "min":
                chosen = first
            else:
                # Last occurrence per group = next group's first - 1.
                boundaries = np.append(first[1:], len(sorted_gids))
                chosen = boundaries - 1
            out[uniq] = col.values[idx][order][chosen]
        return out, seen
    np_dtype = col.dtype.numpy_dtype
    if col.dtype.is_floating:
        init = np.inf if func == "min" else -np.inf
    elif np_dtype == np.bool_:
        init = True if func == "min" else False
    else:
        info = np.iinfo(np_dtype)
        init = info.max if func == "min" else info.min
    acc = np.full(ngroups, init, dtype=np_dtype)
    ufunc = np.minimum if func == "min" else np.maximum
    values = col.values[valid]
    if col.dtype.is_floating:
        # NaN poisons ufunc.at reductions; SQL min/max ignore NaN order
        # issues by treating NaN as largest — drop NaNs like NULLs here.
        keep = ~np.isnan(values)
        ufunc.at(acc, gids[valid][keep], values[keep])
        seen = np.zeros(ngroups, dtype=bool)
        counted = np.bincount(gids[valid][keep], minlength=ngroups)
        seen = counted > 0
    else:
        ufunc.at(acc, gids[valid], values)
    return acc, seen


# --------------------------------------------------------------------------
# Phase drivers
# --------------------------------------------------------------------------


def _aggregate_states(
    batch: RecordBatch,
    gids: np.ndarray,
    ngroups: int,
    specs: Sequence[AggregateSpec],
    phase: str,
) -> Tuple[List[Field], List[ColumnArray]]:
    fields: List[Field] = []
    columns: List[ColumnArray] = []
    for spec in specs:
        col = (
            batch.column(spec.arg)
            if spec.arg is not None and phase != "final"
            else None
        )
        g = gids
        if spec.distinct and col is not None and phase in ("single", "partial"):
            g, col = _dedup_for_distinct(gids, col)

        if spec.func == "count":
            if phase == "final":
                # Partial counts are summed, not re-counted.
                acc, _ = _reduce_sum(g, ngroups, batch.column(spec.output), INT64)
                values, seen = acc, None
            else:
                values, seen = _reduce_count(g, ngroups, col)
            emit_dtype = INT64
        elif spec.func == "sum":
            source = col if phase != "final" else batch.column(spec.output)
            assert source is not None
            values, seen = _reduce_sum(g, ngroups, source, spec.output_dtype)
            emit_dtype = spec.output_dtype
        elif spec.func in ("min", "max"):
            source = col if phase != "final" else batch.column(spec.output)
            assert source is not None
            values, seen = _reduce_minmax(g, ngroups, source, spec.func)
            emit_dtype = spec.output_dtype
        elif spec.func == "avg":
            if phase == "final":
                sums, seen_s = _reduce_sum(
                    g, ngroups, batch.column(f"{spec.output}$sum"), FLOAT64
                )
                counts, _ = _reduce_sum(
                    g, ngroups, batch.column(f"{spec.output}$count"), INT64
                )
            else:
                assert col is not None
                sums, seen_s = _reduce_sum(g, ngroups, col, FLOAT64)
                counts, _ = _reduce_count(g, ngroups, col)
            if phase in ("single", "final"):
                with np.errstate(invalid="ignore", divide="ignore"):
                    values = sums / np.maximum(counts, 1)
                seen = counts > 0
                emit_dtype = FLOAT64
            else:  # partial: emit the two state columns
                fields.append(Field(f"{spec.output}$sum", FLOAT64))
                columns.append(ColumnArray(FLOAT64, sums, seen_s))
                fields.append(Field(f"{spec.output}$count", INT64, nullable=False))
                columns.append(ColumnArray(INT64, counts))
                continue
        else:  # variance / stddev: (sum, sum of squares, count) state
            if phase == "final":
                sums, seen_s = _reduce_sum(
                    g, ngroups, batch.column(f"{spec.output}$sum"), FLOAT64
                )
                sumsqs, _ = _reduce_sum(
                    g, ngroups, batch.column(f"{spec.output}$sumsq"), FLOAT64
                )
                counts, _ = _reduce_sum(
                    g, ngroups, batch.column(f"{spec.output}$count"), INT64
                )
            else:
                assert col is not None
                sums, seen_s = _reduce_sum(g, ngroups, col, FLOAT64)
                valid = col.is_valid()
                squared = ColumnArray(
                    FLOAT64, col.values.astype(np.float64) ** 2, col.validity
                )
                sumsqs, _ = _reduce_sum(g, ngroups, squared, FLOAT64)
                counts, _ = _reduce_count(g, ngroups, col)
            if phase in ("single", "final"):
                # Sample variance (Presto semantics): needs count >= 2.
                with np.errstate(invalid="ignore", divide="ignore"):
                    n = np.maximum(counts, 1).astype(np.float64)
                    mean = sums / n
                    values = (sumsqs - n * mean * mean) / np.maximum(n - 1, 1)
                    values = np.maximum(values, 0.0)  # clamp float cancellation
                    if spec.func == "stddev":
                        values = np.sqrt(values)
                seen = counts > 1
                emit_dtype = FLOAT64
            else:  # partial: emit the three state columns
                fields.append(Field(f"{spec.output}$sum", FLOAT64))
                columns.append(ColumnArray(FLOAT64, sums, seen_s))
                fields.append(Field(f"{spec.output}$sumsq", FLOAT64))
                columns.append(ColumnArray(FLOAT64, sumsqs, seen_s))
                fields.append(Field(f"{spec.output}$count", INT64, nullable=False))
                columns.append(ColumnArray(INT64, counts))
                continue

        validity = seen if seen is not None and not bool(np.all(seen)) else None
        # Nullability must not depend on the data seen in this batch, or
        # partial states from different splits would disagree on schema.
        fields.append(Field(spec.output, emit_dtype, nullable=spec.func != "count"))
        columns.append(ColumnArray(emit_dtype, values, validity))
    return fields, columns


def grouped_aggregate(
    batch: RecordBatch,
    key_names: Sequence[str],
    specs: Sequence[AggregateSpec],
    phase: str = "single",
) -> RecordBatch:
    """GROUP BY aggregation over one batch.

    ``phase``: "single" (complete), "partial" (emit mergeable states), or
    "final" (merge partial states — ``batch`` holds state columns).
    """
    if phase not in ("single", "partial", "final"):
        raise ExecutionError(f"unknown aggregation phase {phase!r}")
    if not key_names:
        return global_aggregate(batch, specs, phase=phase)
    gids, first_idx, ngroups = _group_rows(batch, key_names)
    key_fields = [batch.schema.field(n) for n in key_names]
    key_columns = [batch.column(n).take(first_idx) for n in key_names]
    agg_fields, agg_columns = _aggregate_states(batch, gids, ngroups, specs, phase)
    return RecordBatch(
        Schema(key_fields + agg_fields), key_columns + agg_columns
    )


def global_aggregate(
    batch: RecordBatch, specs: Sequence[AggregateSpec], phase: str = "single"
) -> RecordBatch:
    """Aggregation without GROUP BY: always exactly one output row."""
    gids = np.zeros(batch.num_rows, dtype=np.int64)
    fields, columns = _aggregate_states(batch, gids, 1, specs, phase)
    return RecordBatch(Schema(fields), columns)
