"""Hybrid result/page caching for the pushdown engine.

Two tiers — a coordinator-tier result/split cache and a per-OCS-node
storage page cache — keyed by canonical Substrait plan fingerprints
(:mod:`repro.substrait.fingerprint`) plus object/metastore version
counters, with deterministic byte-budgeted eviction and per-tenant
reservation floors.  See ``docs/CACHE.md``.
"""

from repro.cache.budget import ByteBudgetCache, CacheEntry, CacheStats
from repro.cache.manager import (
    CacheManager,
    object_version_signature,
    table_version_signature,
)

__all__ = [
    "ByteBudgetCache",
    "CacheEntry",
    "CacheStats",
    "CacheManager",
    "object_version_signature",
    "table_version_signature",
]
