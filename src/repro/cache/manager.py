"""The cache manager: one object owning every tier plus version plumbing.

A :class:`CacheManager` is built from a :class:`~repro.config.CacheSpec`
and *outlives individual queries and clusters* — the bench environment
and the query service hold one manager across runs so reuse is possible
at all.  It owns three tiers of :class:`~repro.cache.budget.ByteBudgetCache`:

* ``results`` — coordinator tier, whole-query result batches keyed by a
  composite of every branch's canonical Substrait fingerprint, the
  residual (post-pushdown) logical plan, and the output schema.
* ``splits`` — coordinator tier, per-split post-operator Arrow pages
  keyed by ``(table, pushed-plan fingerprint, residual-plan signature,
  split keys)``.  This is the tier behind partial-hit hybrid plans: the
  cached fraction of a scan is served locally from here while only the
  residual splits are pushed to storage.
* per-node ``storage`` tiers — on each OCS node, serialized pushed-
  subplan result pages keyed by ``(bucket, object keys, fingerprint of
  the deserialized plan)``; a hit skips the disk read and the engine
  CPU, paying only a serve charge.

Invalidation is lazy and version-driven: every entry records a
*version signature* — the metastore descriptor version plus the object
store's per-object write counters for everything the value derives
from — and a lookup whose recomputed signature differs drops the entry
(both tiers see the same bumped counters, so one PUT or one stats
refresh invalidates everywhere).

Accounting is a callback seam: the query service points ``accountant``
at its admission controller so per-tenant hit/miss/fill/refusal
counters land in the same ledgers the SLO report reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.config import CacheSpec
from repro.cache.budget import ByteBudgetCache, VersionSignature
from repro.metastore.catalog import TableDescriptor
from repro.objectstore.store import ObjectStore

__all__ = [
    "CacheManager",
    "object_version_signature",
    "table_version_signature",
]

#: accountant(event, tenant, nbytes) with event in
#: {"hit", "miss", "fill", "stale", "quota"}.
Accountant = Callable[[str, str, int], None]


def object_version_signature(
    store: ObjectStore, bucket: str, keys: Sequence[str]
) -> VersionSignature:
    """Write-counter signature of a set of objects (order preserved)."""
    return tuple((key, store.object_version(bucket, key)) for key in keys)


def table_version_signature(store: ObjectStore, descriptor: TableDescriptor) -> VersionSignature:
    """Descriptor version + every data file's write counter."""
    meta = (f"meta:{descriptor.qualified_name}", descriptor.version)
    return (meta,) + object_version_signature(store, descriptor.bucket, descriptor.files)


class CacheManager:
    """Owns every cache tier built from one :class:`CacheSpec`."""

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self.results = ByteBudgetCache(
            spec.result_budget_bytes if spec.enable_results else 0,
            policy=spec.policy,
            reservations=spec.tenant_reservations,
            name="result",
        )
        self.splits = ByteBudgetCache(
            spec.split_budget_bytes if spec.enable_splits else 0,
            policy=spec.policy,
            reservations=spec.tenant_reservations,
            name="split",
        )
        self._storage: Dict[int, ByteBudgetCache] = {}
        self.accountant: Optional[Accountant] = None
        #: Per-table lookup ledger (table -> [lookups, hits]), fed by the
        #: coordinator's run path only (EXPLAIN probes are pure peeks).
        #: The adaptive controller reads it to bias pushdown decisions
        #: for hot-cached tables — see repro.core.adaptive.
        self._tables: Dict[str, list] = {}

    # -- tiers -------------------------------------------------------------

    def storage_tier(self, node_index: int) -> ByteBudgetCache:
        """The page cache of one OCS node (created on first use)."""
        tier = self._storage.get(node_index)
        if tier is None:
            tier = ByteBudgetCache(
                self.spec.storage_budget_bytes if self.spec.enable_storage else 0,
                policy=self.spec.policy,
                reservations=self.spec.tenant_reservations,
                name=f"storage:{node_index}",
            )
            self._storage[node_index] = tier
        return tier

    # -- keys --------------------------------------------------------------

    @staticmethod
    def result_key(fingerprint: str) -> Hashable:
        return ("result", fingerprint)

    @staticmethod
    def split_key(
        table: str, pushed_fingerprint: str, plan_signature: str, keys: Tuple[str, ...]
    ) -> Hashable:
        return ("split", table, pushed_fingerprint, plan_signature, keys)

    @staticmethod
    def storage_key(bucket: str, keys: Tuple[str, ...], fingerprint: str) -> Hashable:
        return ("page", bucket, keys, fingerprint)

    # -- accounting --------------------------------------------------------

    def account(self, event: str, tenant: str, nbytes: int) -> None:
        if self.accountant is not None:
            self.accountant(event, tenant, nbytes)

    def record_table_lookup(self, table: str, *, hits: int, misses: int) -> None:
        """Fold one run's cache outcomes for ``table`` into the ledger."""
        entry = self._tables.setdefault(table, [0, 0])
        entry[0] += hits + misses
        entry[1] += hits

    # -- reporting ---------------------------------------------------------

    def table_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-table lookup counters with derived hit rates."""
        return {
            table: {
                "lookups": lookups,
                "hits": hits,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
            for table, (lookups, hits) in sorted(self._tables.items())
        }

    def stats(self) -> Dict[str, Dict]:
        """Deterministic per-tier counters (storage tiers merged) plus
        the per-table lookup ledger under ``"tables"``."""
        storage = {
            "hits": 0,
            "misses": 0,
            "fills": 0,
            "evictions": 0,
            "stale_drops": 0,
            "quota_refusals": 0,
            "bytes_served": 0,
            "bytes_filled": 0,
            "bytes_evicted": 0,
        }
        for index in sorted(self._storage):
            for name, value in self._storage[index].stats.as_dict().items():
                storage[name] += value
        return {
            "result": self.results.stats.as_dict(),
            "split": self.splits.stats.as_dict(),
            "storage": storage,
            "tables": self.table_stats(),
        }

    def clear(self) -> None:
        self.results.clear()
        self.splits.clear()
        for tier in self._storage.values():
            tier.clear()
        self._tables.clear()
