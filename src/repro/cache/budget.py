"""Deterministic byte-budgeted cache with tenant reservation floors.

:class:`ByteBudgetCache` is the storage engine behind every cache tier
(coordinator results, coordinator split pages, per-OCS-node storage
pages).  It is a pure data structure — simulated *cost* of serving or
filling is charged by the caller — but its *state* is shared across
concurrently simulated queries, so every transition polls
:mod:`repro.sim.santrack` exactly like the admission ledgers do.

Determinism: recency is a logical sequence counter bumped per access
(never wall clock, never simulated time — two accesses at the same
simulated instant still order by arrival), and eviction scans are full
sorts with the sequence number as the final tie-break, so a given access
sequence always evicts the same victims.

Eviction policies:

* ``lru`` — oldest recency first.
* ``cost`` — cheapest to recompute first: lowest ``cost / nbytes``
  density, then oldest recency.

Tenant reservations are eviction *floors*: a fill by tenant A skips any
victim whose owner B ≠ A would drop below B's reserved resident bytes.
A fill that cannot clear enough space against the floors (or is larger
than the whole budget) is refused and counted — fills are best-effort,
never query failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.sim import santrack

__all__ = ["CacheEntry", "CacheStats", "ByteBudgetCache"]

#: version signature: ((label, counter), ...) in a fixed caller-chosen order.
VersionSignature = Tuple[Tuple[str, int], ...]


@dataclass
class CacheEntry:
    """One resident value plus the bookkeeping eviction needs."""

    key: Hashable
    value: object
    nbytes: int
    tenant: str
    #: Recorded version signature of everything the value derives from.
    versions: VersionSignature
    #: Estimated recompute cost (simulated cycles) for the "cost" policy.
    cost: float
    #: Logical recency (bumped on every hit).
    seq: int
    hits: int = 0


@dataclass
class CacheStats:
    """Deterministic counters surfaced by benches and the SLO report."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    stale_drops: int = 0
    quota_refusals: int = 0
    bytes_served: int = 0
    bytes_filled: int = 0
    bytes_evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "quota_refusals": self.quota_refusals,
            "bytes_served": self.bytes_served,
            "bytes_filled": self.bytes_filled,
            "bytes_evicted": self.bytes_evicted,
        }


class ByteBudgetCache:
    """Keyed byte-budgeted cache; see module docstring for semantics."""

    def __init__(
        self,
        budget_bytes: int,
        *,
        policy: str = "lru",
        reservations: Optional[Mapping[str, int]] = None,
        name: str = "cache",
    ) -> None:
        self.budget_bytes = budget_bytes
        self.policy = policy
        self.reservations = dict(reservations or {})
        self.name = name
        self.stats = CacheStats()
        self._entries: Dict[Hashable, CacheEntry] = {}
        self._tenant_bytes: Dict[str, int] = {}
        self._seq = 0

    # -- SimTSan -----------------------------------------------------------

    def _track(self, kind: str, site: str) -> None:
        """One shared surface per tier.  Every transition (including a
        lookup, which bumps recency) mutates eviction order, so all are
        recorded as updates; pure size probes record reads."""
        sanitizer = santrack.active()
        if sanitizer is None:
            return
        key = ("cache", id(self), self.name)
        if kind == "u":
            sanitizer.record_update(key, site, depth=2)
        else:
            sanitizer.record_read(key, site, depth=2)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def resident_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def tenant_bytes(self, tenant: str) -> int:
        return self._tenant_bytes.get(tenant, 0)

    def entry(self, key: Hashable) -> Optional[CacheEntry]:
        """Peek without touching recency or stats (tests, EXPLAIN)."""
        return self._entries.get(key)

    # -- the cache protocol ------------------------------------------------

    def get(
        self,
        key: Hashable,
        *,
        tenant: str = "default",
        versions: Optional[VersionSignature] = None,
    ) -> Optional[object]:
        """The cached value, or None on miss.

        When ``versions`` is given, an entry whose recorded signature
        differs is *stale*: it is dropped (both the entry and its bytes)
        and the lookup counts as a miss — soft invalidation, no error.
        """
        self._track("u", f"cache.get:{self.name}")
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if versions is not None and entry.versions != versions:
            self._drop(entry)
            self.stats.stale_drops += 1
            self.stats.misses += 1
            return None
        self._seq += 1
        entry.seq = self._seq
        entry.hits += 1
        self.stats.hits += 1
        self.stats.bytes_served += entry.nbytes
        return entry.value

    def put(
        self,
        key: Hashable,
        value: object,
        *,
        nbytes: int,
        tenant: str = "default",
        versions: VersionSignature = (),
        cost: float = 0.0,
    ) -> bool:
        """Insert (replacing any same-key entry); True when resident.

        Returns False — and counts a quota refusal — when the entry
        exceeds the whole budget or eviction cannot clear space without
        violating another tenant's reservation floor.
        """
        self._track("u", f"cache.put:{self.name}")
        existing = self._entries.get(key)
        if existing is not None:
            self._drop(existing)
        if nbytes > self.budget_bytes:
            self.stats.quota_refusals += 1
            return False
        if not self._make_room(nbytes, tenant):
            self.stats.quota_refusals += 1
            return False
        self._seq += 1
        self._entries[key] = CacheEntry(
            key=key,
            value=value,
            nbytes=nbytes,
            tenant=tenant,
            versions=versions,
            cost=cost,
            seq=self._seq,
        )
        self._tenant_bytes[tenant] = self._tenant_bytes.get(tenant, 0) + nbytes
        self.stats.fills += 1
        self.stats.bytes_filled += nbytes
        return True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True when it was resident."""
        self._track("u", f"cache.invalidate:{self.name}")
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._drop(entry)
        self.stats.stale_drops += 1
        return True

    def clear(self) -> None:
        self._track("u", f"cache.clear:{self.name}")
        self._entries.clear()
        self._tenant_bytes.clear()

    # -- eviction ----------------------------------------------------------

    def _drop(self, entry: CacheEntry) -> None:
        del self._entries[entry.key]
        remaining = self._tenant_bytes.get(entry.tenant, 0) - entry.nbytes
        if remaining > 0:
            self._tenant_bytes[entry.tenant] = remaining
        else:
            self._tenant_bytes.pop(entry.tenant, None)

    def _victim_order(self, entry: CacheEntry) -> Tuple[float, int]:
        if self.policy == "cost":
            density = entry.cost / entry.nbytes if entry.nbytes else 0.0
            return (density, entry.seq)
        return (0.0, entry.seq)

    def _make_room(self, nbytes: int, requester: str) -> bool:
        """Evict until ``nbytes`` fit; False if the floors make that
        impossible (no state is mutated on refusal — candidate victims
        are only dropped once the plan is known to clear enough)."""
        need = self.resident_bytes + nbytes - self.budget_bytes
        if need <= 0:
            return True
        candidates: List[CacheEntry] = sorted(
            self._entries.values(), key=self._victim_order
        )
        planned: List[CacheEntry] = []
        planned_by_tenant: Dict[str, int] = {}
        freed = 0
        for victim in candidates:
            if freed >= need:
                break
            if victim.tenant != requester:
                floor = self.reservations.get(victim.tenant, 0)
                already = planned_by_tenant.get(victim.tenant, 0)
                after = self._tenant_bytes.get(victim.tenant, 0) - already - victim.nbytes
                if after < floor:
                    continue
            planned.append(victim)
            planned_by_tenant[victim.tenant] = (
                planned_by_tenant.get(victim.tenant, 0) + victim.nbytes
            )
            freed += victim.nbytes
        if freed < need:
            return False
        for victim in planned:
            self._drop(victim)
            self.stats.evictions += 1
            self.stats.bytes_evicted += victim.nbytes
        return True
