"""gRPC-class RPC substrate over simulated network links.

The Presto-OCS connector ships Substrait plans to the OCS frontend via
gRPC (paper Section 3.4).  This package reproduces the cost structure of
that hop: per-message CPU at both endpoints, framed payloads over a
bandwidth/latency link, and status propagation for failures.  Handlers
are DES generator processes, so a server can perform (simulated) disk and
CPU work while serving a call.
"""

from repro.rpc.channel import RpcClient, RpcService
from repro.rpc.retry import RETRYABLE_CODES, RetryPolicy, retrying_call

__all__ = ["RETRYABLE_CODES", "RetryPolicy", "RpcClient", "RpcService", "retrying_call"]
