"""Retry policy for storage RPCs: bounded attempts, backoff, typed codes.

Mirrors gRPC client-side retry semantics: only *retryable* status codes
(``UNAVAILABLE``, ``DEADLINE_EXCEEDED`` by default) are retried; semantic
failures (``INVALID_ARGUMENT``, ``INTERNAL``, ``UNIMPLEMENTED``) fail
fast because re-sending the same bad request cannot succeed.  Backoff is
exponential with **deterministic jitter**: the jitter unit is a hash of
the simulated clock and attempt number, so a faulted simulation replays
identically while concurrent retries still decorrelate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from repro.errors import ConfigError, RpcStatusError, StatusCode
from repro.rpc.channel import RpcClient
from repro.trace import Span, SpanContext

__all__ = ["RetryPolicy", "retrying_call", "RETRYABLE_CODES"]

#: Status codes that indicate a transient condition worth retrying.
RETRYABLE_CODES: FrozenSet[str] = frozenset(
    {StatusCode.UNAVAILABLE, StatusCode.DEADLINE_EXCEEDED}
)

#: Callback invoked before each backoff sleep: (attempt, error, delay_s).
OnRetry = Callable[[int, RpcStatusError, float], None]


def _unit_jitter(salt: float, attempt: int) -> float:
    """Deterministic pseudo-random unit value in [0, 1)."""
    token = f"{salt:.9f}:{attempt}".encode("ascii")
    return (zlib.crc32(token) % 2**20) / 2**20


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """How a caller retries transient storage failures."""

    #: Total attempts including the first (1 = no retries).
    max_attempts: int = 3
    #: Backoff before the second attempt; doubles (by default) per retry.
    initial_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    #: Fraction of the base backoff added as deterministic jitter.
    jitter_fraction: float = 0.25
    #: Per-attempt RPC deadline; ``None`` disables the deadline timer.
    deadline_s: Optional[float] = None
    retryable_codes: FrozenSet[str] = RETRYABLE_CODES

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.initial_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff durations cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1.0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigError("jitter_fraction must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be positive, got {self.deadline_s}")

    def is_retryable(self, code: str) -> bool:
        return code in self.retryable_codes

    def backoff_s(self, attempt: int, salt: float = 0.0) -> float:
        """Backoff before attempt ``attempt + 1`` (attempt counts from 1).

        ``salt`` should be the simulated clock: deterministic across runs,
        different across concurrent callers.
        """
        if attempt < 1:
            raise ConfigError(f"attempt counts from 1, got {attempt}")
        base = self.initial_backoff_s * self.backoff_multiplier ** (attempt - 1)
        base = min(base, self.max_backoff_s)
        return base * (1.0 + self.jitter_fraction * _unit_jitter(salt, attempt))


def retrying_call(
    client: RpcClient,
    method: str,
    payload: bytes,
    policy: RetryPolicy,
    on_retry: Optional[OnRetry] = None,
    parent: "Span | SpanContext | None" = None,
):
    """DES generator (use via ``yield from``): call with retry under ``policy``.

    Returns the response bytes.  On a terminal failure the raised
    :class:`RpcStatusError` carries an ``attempts`` attribute recording
    how many attempts were made.  Each attempt gets its own client span
    (parented under ``parent``) tagged with the attempt ordinal and, on
    failure, the status code.
    """
    attempt = 1
    while True:
        try:
            response = yield client.call(
                method,
                payload,
                deadline_s=policy.deadline_s,
                parent=parent,
                attributes={"attempt": attempt},
            )
        except RpcStatusError as exc:
            if not policy.is_retryable(exc.code) or attempt >= policy.max_attempts:
                exc.attempts = attempt
                raise
            delay = policy.backoff_s(attempt, salt=client.sim.now)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            yield client.sim.timeout(delay)
            attempt += 1
        else:
            return response
