"""Request/response channels: client node <-> service node over one link.

A call is a DES process: the client pays per-message CPU, the request
frame crosses the link, the server pays per-message CPU and runs the
handler (itself a generator process that may read disks and burn CPU),
and the response frame crosses back.  Handler exceptions become
:class:`RpcStatusError` at the caller, like gRPC status codes.

Callers may set a per-call **deadline**: a :class:`Timeout` event raced
against the round trip.  When the timer wins, the caller gets
``RpcStatusError("DEADLINE_EXCEEDED")`` and the client-side process is
interrupted (the server may keep working into the void, exactly like a
real gRPC server after the client hangs up).  Injected link faults
(:class:`~repro.errors.LinkDropError`) surface as ``UNAVAILABLE`` — the
retryable status class.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.errors import LinkDropError, RpcError, RpcStatusError
from repro.sim.costmodel import CostParams
from repro.sim.kernel import AnyOf, Process, Simulator
from repro.sim.network import Link
from repro.sim.node import SimNode

__all__ = ["RpcService", "RpcClient", "FRAME_OVERHEAD_BYTES"]

#: Fixed per-message framing bytes (headers, HTTP/2-ish envelope).
FRAME_OVERHEAD_BYTES = 64

#: A handler receives the request payload and returns response bytes.
Handler = Callable[[bytes], Generator]


class RpcService:
    """A named service bound to a node; methods registered by name."""

    def __init__(self, sim: Simulator, node: SimNode, name: str, costs: CostParams) -> None:
        self.sim = sim
        self.node = node
        self.name = name
        self.costs = costs
        self._handlers: Dict[str, Handler] = {}
        self.calls_served = 0

    def register(self, method: str, handler: Handler) -> None:
        if method in self._handlers:
            raise RpcError(f"method {method!r} already registered on {self.name}")
        self._handlers[method] = handler

    def dispatch(self, method: str, payload: bytes):
        """Server-side processing generator: overhead + handler."""
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcStatusError("UNIMPLEMENTED", f"{self.name} has no method {method!r}")
        yield self.node.execute(self.costs.rpc_cycles_per_message, name=f"rpc:{method}")
        response = yield self.sim.process(handler(payload), name=f"{self.name}:{method}")
        if not isinstance(response, (bytes, bytearray)):
            raise RpcStatusError(
                "INTERNAL", f"handler for {method!r} returned {type(response).__name__}"
            )
        self.calls_served += 1
        return bytes(response)


class RpcClient:
    """Client stub: calls one service across one link."""

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        link: Link,
        service: RpcService,
        costs: CostParams,
    ) -> None:
        self.sim = sim
        self.node = node
        self.link = link
        self.service = service
        self.costs = costs
        self.deadlines_exceeded = 0

    def call(
        self, method: str, payload: bytes, deadline_s: Optional[float] = None
    ) -> Process:
        """Invoke ``method``; the returned process resolves to response bytes.

        With ``deadline_s`` set, the round trip races a timer; losing the
        race raises ``RpcStatusError("DEADLINE_EXCEEDED")`` at the caller.
        """
        if deadline_s is None:
            return self.sim.process(
                self._call(method, payload), name=f"rpc-call:{method}"
            )
        return self.sim.process(
            self._call_with_deadline(method, payload, deadline_s),
            name=f"rpc-call:{method}",
        )

    def _call_with_deadline(self, method: str, payload: bytes, deadline_s: float):
        if deadline_s <= 0:
            self.deadlines_exceeded += 1
            raise RpcStatusError(
                "DEADLINE_EXCEEDED", f"{method!r} deadline {deadline_s!r}s already expired"
            )
        work = self.sim.process(self._call(method, payload), name=f"rpc-body:{method}")
        timer = self.sim.timeout(deadline_s)
        winner, _ = yield AnyOf(self.sim, [timer, work])
        if winner is timer and work.is_alive:
            # Abandon the client side; any in-flight server work continues
            # unobserved, as after a real client hang-up.
            work.interrupt("deadline")
            self.deadlines_exceeded += 1
            raise RpcStatusError(
                "DEADLINE_EXCEEDED", f"{method!r} exceeded {deadline_s:g}s deadline"
            )
        return work.value

    def _call(self, method: str, payload: bytes):
        try:
            yield self.node.execute(
                self.costs.rpc_cycles_per_message, name=f"rpc:{method}"
            )
            yield self.link.transfer(
                self.node.name,
                self.service.node.name,
                len(payload) + FRAME_OVERHEAD_BYTES,
                label=f"rpc:{method}:request",
            )
            try:
                response = yield self.sim.process(
                    self.service.dispatch(method, payload), name=f"dispatch:{method}"
                )
            except (RpcStatusError, LinkDropError):
                raise
            except Exception as exc:  # noqa: BLE001 - map to status like gRPC
                raise RpcStatusError("INTERNAL", str(exc)) from exc
            yield self.link.transfer(
                self.service.node.name,
                self.node.name,
                len(response) + FRAME_OVERHEAD_BYTES,
                label=f"rpc:{method}:response",
            )
        except LinkDropError as exc:
            raise RpcStatusError("UNAVAILABLE", str(exc)) from exc
        return response
