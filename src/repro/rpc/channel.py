"""Request/response channels: client node <-> service node over one link.

A call is a DES process: the client pays per-message CPU, the request
frame crosses the link, the server pays per-message CPU and runs the
handler (itself a generator process that may read disks and burn CPU),
and the response frame crosses back.  Handler exceptions become
:class:`RpcStatusError` at the caller, like gRPC status codes.

Callers may set a per-call **deadline**: a :class:`Timeout` event raced
against the round trip.  When the timer wins, the caller gets
``RpcStatusError(StatusCode.DEADLINE_EXCEEDED)`` and the client-side
process is interrupted (the server may keep working into the void,
exactly like a real gRPC server after the client hangs up).  Injected
link faults (:class:`~repro.errors.LinkDropError`) surface as
``UNAVAILABLE`` — the retryable status class.

**Tracing.**  Both ends accept a :class:`~repro.trace.Tracer`.  The
client opens one span per *attempt* (``rpc:<method>``), tagged with the
status code on failure; the server opens a child span under the caller's
:class:`~repro.trace.SpanContext`, which propagates as an extra dispatch
argument — the simulated analogue of gRPC metadata headers, already
budgeted inside :data:`FRAME_OVERHEAD_BYTES` so propagation moves no
extra simulated bytes.  Handlers that want the context declare a second
parameter ``(payload, trace)``; single-argument handlers keep working.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.errors import LinkDropError, RpcError, RpcStatusError, StatusCode
from repro.sim import santrack
from repro.sim.costmodel import CostParams
from repro.sim.kernel import AnyOf, Process, Simulator
from repro.sim.network import Link
from repro.sim.node import SimNode
from repro.trace import NOOP_SPAN, NOOP_TRACER, Span, SpanContext, Tracer

__all__ = ["RpcService", "RpcClient", "FRAME_OVERHEAD_BYTES"]

#: Fixed per-message framing bytes (headers + trace context, an
#: HTTP/2-ish envelope).
FRAME_OVERHEAD_BYTES = 64

#: A handler receives the request payload (and optionally the caller's
#: span context) and returns response bytes.
Handler = Callable[..., Generator]


def _wants_trace(handler: Handler) -> bool:
    """True when ``handler`` accepts a second (trace-context) argument."""
    try:
        params = inspect.signature(handler).parameters.values()
    except (TypeError, ValueError):
        return False
    positional = [
        p
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(positional) >= 2:
        return True
    return any(p.kind is p.VAR_POSITIONAL for p in params)


class RpcService:
    """A named service bound to a node; methods registered by name."""

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        name: str,
        costs: CostParams,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self.sim = sim
        self.node = node
        self.name = name
        self.costs = costs
        self.tracer = tracer
        self._handlers: Dict[str, Tuple[Handler, bool]] = {}
        self.calls_served = 0

    def register(self, method: str, handler: Handler) -> None:
        if method in self._handlers:
            raise RpcError(f"method {method!r} already registered on {self.name}")
        # Arity is inspected once here, not per call: legacy single-arg
        # handlers stay valid, two-arg handlers receive the span context.
        self._handlers[method] = (handler, _wants_trace(handler))

    def dispatch(self, method: str, payload: bytes, trace: Optional[SpanContext] = None):
        """Server-side processing generator: overhead + handler.

        ``trace`` is the caller's span context as carried by the frame;
        the server-side span is parented under it so one query's spans
        form a single tree across node boundaries.
        """
        entry = self._handlers.get(method)
        if entry is None:
            raise RpcStatusError(
                StatusCode.UNIMPLEMENTED, f"{self.name} has no method {method!r}"
            )
        handler, wants_trace = entry
        span = self.tracer.start(
            f"{self.name}.server:{method}",
            parent=trace,
            attributes={"node": self.node.name},
        )
        try:
            yield self.node.execute(self.costs.rpc_cycles_per_message, name=f"rpc:{method}")
            work = handler(payload, span.context) if wants_trace else handler(payload)
            response = yield self.sim.process(work, name=f"{self.name}:{method}")
            if not isinstance(response, (bytes, bytearray)):
                raise RpcStatusError(
                    StatusCode.INTERNAL,
                    f"handler for {method!r} returned {type(response).__name__}",
                )
        except RpcStatusError as exc:
            span.record_error(exc.code)
            raise
        except Exception:
            span.record_error(StatusCode.INTERNAL)
            raise
        finally:
            self.tracer.end(span)
        self.calls_served += 1
        return bytes(response)


class RpcClient:
    """Client stub: calls one service across one link."""

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        link: Link,
        service: RpcService,
        costs: CostParams,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self.sim = sim
        self.node = node
        self.link = link
        self.service = service
        self.costs = costs
        self.tracer = tracer
        self.deadlines_exceeded = 0

    def call(
        self,
        method: str,
        payload: bytes,
        deadline_s: Optional[float] = None,
        parent: "Span | SpanContext | None" = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Process:
        """Invoke ``method``; the returned process resolves to response bytes.

        With ``deadline_s`` set, the round trip races a timer; losing the
        race raises ``RpcStatusError(StatusCode.DEADLINE_EXCEEDED)`` at
        the caller.  One span covers this single attempt, including any
        backoffless deadline race; retries are separate ``call``s and so
        get separate spans.
        """
        # The span closes in _traced()'s finally, not here: the attempt
        # body is a generator and must carry its span across resumptions.
        span = self.tracer.start(  # simlint: ignore[span-pair]
            f"rpc:{method}", parent=parent, attributes=attributes
        )
        span.set("peer", self.service.node.name)
        if deadline_s is None:
            body = self._call(method, payload, span)
        else:
            body = self._call_with_deadline(method, payload, deadline_s, span)
        return self.sim.process(self._traced(body, span), name=f"rpc-call:{method}")

    def _traced(self, body, span: Span):
        """Wrap an attempt generator so its span always closes, with status."""
        try:
            response = yield from body
        except RpcStatusError as exc:
            span.record_error(exc.code)
            raise
        except BaseException:
            span.record_error(StatusCode.INTERNAL)
            raise
        finally:
            self.tracer.end(span)
        return response

    def _call_with_deadline(self, method: str, payload: bytes, deadline_s: float, span: Span):
        span.set("deadline_s", deadline_s)
        if deadline_s <= 0:
            self.deadlines_exceeded += 1
            raise RpcStatusError(
                StatusCode.DEADLINE_EXCEEDED,
                f"{method!r} deadline {deadline_s!r}s already expired",
            )
        work = self.sim.process(self._call(method, payload, span), name=f"rpc-body:{method}")
        timer = self.sim.timeout(deadline_s)
        winner, _ = yield AnyOf(self.sim, [timer, work])
        if winner is timer and work.is_alive:
            # Abandon the client side; any in-flight server work continues
            # unobserved, as after a real client hang-up.
            work.interrupt("deadline")
            self.deadlines_exceeded += 1
            raise RpcStatusError(
                StatusCode.DEADLINE_EXCEEDED, f"{method!r} exceeded {deadline_s:g}s deadline"
            )
        sanitizer = santrack.active()
        if sanitizer is not None:
            # The timer may have won the AnyOf race with the response
            # completing at the same instant; the wake then carries no
            # happens-before edge from ``work``, so donate its clock
            # before the caller consumes the response.
            sanitizer.observe_completion(work)
        return work.value

    def _call(self, method: str, payload: bytes, span: Optional[Span] = None):
        if span is None:
            span = NOOP_SPAN
        try:
            yield self.node.execute(
                self.costs.rpc_cycles_per_message, name=f"rpc:{method}"
            )
            yield self.link.transfer(
                self.node.name,
                self.service.node.name,
                len(payload) + FRAME_OVERHEAD_BYTES,
                label=f"rpc:{method}:request",
            )
            try:
                response = yield self.sim.process(
                    self.service.dispatch(method, payload, trace=span.context),
                    name=f"dispatch:{method}",
                )
            except (RpcStatusError, LinkDropError):
                raise
            except Exception as exc:  # noqa: BLE001 - map to status like gRPC
                raise RpcStatusError(StatusCode.INTERNAL, str(exc)) from exc
            yield self.link.transfer(
                self.service.node.name,
                self.node.name,
                len(response) + FRAME_OVERHEAD_BYTES,
                label=f"rpc:{method}:response",
            )
        except LinkDropError as exc:
            raise RpcStatusError(StatusCode.UNAVAILABLE, str(exc)) from exc
        span.set("request_bytes", len(payload))
        span.set("response_bytes", len(response))
        return response
