"""Request/response channels: client node <-> service node over one link.

A call is a DES process: the client pays per-message CPU, the request
frame crosses the link, the server pays per-message CPU and runs the
handler (itself a generator process that may read disks and burn CPU),
and the response frame crosses back.  Handler exceptions become
:class:`RpcStatusError` at the caller, like gRPC status codes.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.errors import RpcError, RpcStatusError
from repro.sim.costmodel import CostParams
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Link
from repro.sim.node import SimNode

__all__ = ["RpcService", "RpcClient", "FRAME_OVERHEAD_BYTES"]

#: Fixed per-message framing bytes (headers, HTTP/2-ish envelope).
FRAME_OVERHEAD_BYTES = 64

#: A handler receives the request payload and returns response bytes.
Handler = Callable[[bytes], Generator]


class RpcService:
    """A named service bound to a node; methods registered by name."""

    def __init__(self, sim: Simulator, node: SimNode, name: str, costs: CostParams) -> None:
        self.sim = sim
        self.node = node
        self.name = name
        self.costs = costs
        self._handlers: Dict[str, Handler] = {}
        self.calls_served = 0

    def register(self, method: str, handler: Handler) -> None:
        if method in self._handlers:
            raise RpcError(f"method {method!r} already registered on {self.name}")
        self._handlers[method] = handler

    def dispatch(self, method: str, payload: bytes):
        """Server-side processing generator: overhead + handler."""
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcStatusError("UNIMPLEMENTED", f"{self.name} has no method {method!r}")
        yield self.node.execute(self.costs.rpc_cycles_per_message, name=f"rpc:{method}")
        response = yield self.sim.process(handler(payload), name=f"{self.name}:{method}")
        if not isinstance(response, (bytes, bytearray)):
            raise RpcStatusError(
                "INTERNAL", f"handler for {method!r} returned {type(response).__name__}"
            )
        self.calls_served += 1
        return bytes(response)


class RpcClient:
    """Client stub: calls one service across one link."""

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        link: Link,
        service: RpcService,
        costs: CostParams,
    ) -> None:
        self.sim = sim
        self.node = node
        self.link = link
        self.service = service
        self.costs = costs

    def call(self, method: str, payload: bytes) -> Process:
        """Invoke ``method``; the returned process resolves to response bytes."""
        return self.sim.process(
            self._call(method, payload), name=f"rpc-call:{method}"
        )

    def _call(self, method: str, payload: bytes):
        yield self.node.execute(self.costs.rpc_cycles_per_message, name=f"rpc:{method}")
        yield self.link.transfer(
            self.node.name,
            self.service.node.name,
            len(payload) + FRAME_OVERHEAD_BYTES,
            label=f"rpc:{method}:request",
        )
        try:
            response = yield self.sim.process(
                self.service.dispatch(method, payload), name=f"dispatch:{method}"
            )
        except RpcStatusError:
            raise
        except Exception as exc:  # noqa: BLE001 - map to status like gRPC
            raise RpcStatusError("INTERNAL", str(exc)) from exc
        yield self.link.transfer(
            self.service.node.name,
            self.node.name,
            len(response) + FRAME_OVERHEAD_BYTES,
            label=f"rpc:{method}:response",
        )
        return response
