"""S3-class object storage: flat bucket/object namespace + Select API.

Reproduces the storage layer of the paper's Section 2.2: objects under
flat buckets, byte-range GETs (how a Parcel reader fetches footers and
column chunks selectively), LIST with prefixes, and
:class:`~repro.objectstore.s3select.S3SelectService` — the narrow
SELECT/WHERE-only in-storage compute of S3 Select / MinIO Select,
including its documented lack of double-precision support and its
row-oriented CSV output.
"""

from repro.objectstore.store import Bucket, ObjectStore, StoredObject
from repro.objectstore.s3select import S3SelectRequest, S3SelectResult, S3SelectService

__all__ = [
    "Bucket",
    "ObjectStore",
    "S3SelectRequest",
    "S3SelectResult",
    "S3SelectService",
    "StoredObject",
]
