"""Flat bucket/object store with byte-range reads.

Pure data structure: the *cost* of serving a request is charged by
whichever simulated node hosts the store (the OCS storage node), not
here.  Keys are arbitrary strings; LIST supports prefix filtering like
S3's ``list-objects-v2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import (
    BucketAlreadyExistsError,
    InvalidRangeError,
    NoSuchBucketError,
    NoSuchObjectError,
)

__all__ = ["StoredObject", "Bucket", "ObjectStore"]


@dataclass
class StoredObject:
    """One object: payload bytes plus user metadata.

    ``version`` is a monotonic write counter: each PUT to the same key
    produces a StoredObject with the predecessor's version + 1.  Cache
    entries record the versions of every object they derive from and
    treat any mismatch as an invalidation — rewriting an object with
    identical bytes still bumps the version (like an S3 ETag rollover),
    which is exactly the conservative behavior the cache wants.
    """

    key: str
    data: bytes
    metadata: Dict[str, str] = field(default_factory=dict)
    version: int = 1

    @property
    def size(self) -> int:
        return len(self.data)


class Bucket:
    """A flat namespace of objects."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._objects: Dict[str, StoredObject] = {}

    def put(self, key: str, data: bytes, metadata: Optional[Dict[str, str]] = None) -> StoredObject:
        previous = self._objects.get(key)
        obj = StoredObject(
            key=key,
            data=bytes(data),
            metadata=dict(metadata or {}),
            version=(previous.version + 1) if previous is not None else 1,
        )
        self._objects[key] = obj
        return obj

    def version(self, key: str) -> int:
        """Current write-counter version of ``key`` (0 if absent)."""
        obj = self._objects.get(key)
        return obj.version if obj is not None else 0

    def get(self, key: str) -> StoredObject:
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchObjectError(f"s3://{self.name}/{key}") from None

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise NoSuchObjectError(f"s3://{self.name}/{key}")
        del self._objects[key]

    def list(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def total_bytes(self, prefix: str = "") -> int:
        return sum(o.size for k, o in self._objects.items() if k.startswith(prefix))


class ObjectStore:
    """A collection of buckets (one S3-compatible endpoint)."""

    def __init__(self, name: str = "ocs-store") -> None:
        self.name = name
        self._buckets: Dict[str, Bucket] = {}

    # -- bucket management ---------------------------------------------------

    def create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            raise BucketAlreadyExistsError(name)
        bucket = Bucket(name)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise NoSuchBucketError(name) from None

    def list_buckets(self) -> List[str]:
        return sorted(self._buckets)

    # -- object operations ------------------------------------------------------

    def put_object(
        self, bucket: str, key: str, data: bytes, metadata: Optional[Dict[str, str]] = None
    ) -> StoredObject:
        return self.bucket(bucket).put(key, data, metadata)

    def get_object(self, bucket: str, key: str) -> bytes:
        return self.bucket(bucket).get(key).data

    def get_object_range(self, bucket: str, key: str, start: int, length: int) -> bytes:
        data = self.bucket(bucket).get(key).data
        if start < 0 or length < 0 or start + length > len(data):
            raise InvalidRangeError(
                f"range [{start}, {start + length}) outside object of {len(data)} bytes"
            )
        return data[start : start + length]

    def head_object(self, bucket: str, key: str) -> Dict[str, object]:
        obj = self.bucket(bucket).get(key)
        return {
            "key": obj.key,
            "size": obj.size,
            "metadata": dict(obj.metadata),
            "version": obj.version,
        }

    def object_version(self, bucket: str, key: str) -> int:
        """Write-counter version of an object; 0 when it does not exist."""
        return self.bucket(bucket).version(key)

    def list_objects(self, bucket: str, prefix: str = "") -> List[str]:
        return self.bucket(bucket).list(prefix)

    def iter_objects(self, bucket: str, prefix: str = "") -> Iterator[StoredObject]:
        b = self.bucket(bucket)
        for key in b.list(prefix):
            yield b.get(key)
