"""S3-Select-class API: filter + column projection, CSV out. Nothing more.

Reproduces the constraints the paper holds against S3 Select / MinIO
Select (Section 2.2):

* only WHERE-clause filtering and column projection — no aggregation,
  no sort, no limit, no expression projection;
* row-oriented output (CSV) rather than columnar Arrow;
* **no double-precision floating point** when ``strict_types`` is on
  (the default, as in real S3 Select) — the reason the API is unusable
  for scientific datasets and the evaluation's filter-only baselines run
  through OCS restricted to filter pushdown instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.arrowsim.dtypes import FLOAT64
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.errors import SelectError, UnsupportedTypeError
from repro.exec.expressions import (
    AndExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    InExpr,
    IsNullExpr,
    LiteralExpr,
    NotExpr,
    OrExpr,
)
from repro.formats.reader import ParcelReader
from repro.objectstore.store import ObjectStore

__all__ = ["S3SelectRequest", "S3SelectResult", "S3SelectService", "rows_to_csv", "rows_to_json", "csv_to_batch", "json_to_batch"]

_ALLOWED_PREDICATE_NODES = (
    AndExpr,
    OrExpr,
    NotExpr,
    CompareExpr,
    InExpr,
    IsNullExpr,
    ColumnExpr,
    LiteralExpr,
)


@dataclass(frozen=True)
class S3SelectRequest:
    """One SELECT <columns> FROM s3object WHERE <predicate> request.

    ``output_format`` is "csv" or "json" (JSON Lines) — the two
    row-oriented serializations the real API offers (Section 2.2: results
    "returned in traditional row-oriented formats (CSV, JSON)").
    """

    bucket: str
    key: str
    columns: Sequence[str]
    predicate: Optional[Expr] = None
    output_format: str = "csv"


@dataclass
class S3SelectResult:
    """Result rows (CSV payload + decoded batch) with scan accounting."""

    csv_payload: bytes
    batch: RecordBatch
    rows_scanned: int
    rows_returned: int
    #: Bytes read from the object as stored (compressed).
    stored_bytes_scanned: int
    #: Bytes after decompression (what the decoder streamed through).
    uncompressed_bytes_scanned: int
    codec: str = "none"


class S3SelectService:
    """Executes Select requests against Parcel objects in a store."""

    def __init__(self, store: ObjectStore, strict_types: bool = True) -> None:
        self.store = store
        #: When True (real S3 Select behaviour), double-precision columns
        #: are rejected. Disable to emulate a hypothetical extended API.
        self.strict_types = strict_types

    # -- validation -------------------------------------------------------------

    def _validate_predicate(self, predicate: Expr) -> None:
        for node in predicate.walk():
            if not isinstance(node, _ALLOWED_PREDICATE_NODES):
                raise SelectError(
                    f"S3 Select cannot evaluate {type(node).__name__} "
                    "(only filters over plain columns are supported)"
                )

    def _check_types(self, reader: ParcelReader, columns: Sequence[str], predicate: Optional[Expr]) -> None:
        if not self.strict_types:
            return
        referenced = set(columns)
        if predicate is not None:
            referenced |= predicate.column_refs()
        for name in sorted(referenced):
            if reader.schema.field(name).dtype is FLOAT64:
                raise UnsupportedTypeError(
                    f"column {name!r} is double precision; S3 Select does not "
                    "support float64 (paper Section 2.2)"
                )

    # -- execution ----------------------------------------------------------------

    def select(self, request: S3SelectRequest) -> S3SelectResult:
        """Run one request over one object, returning CSV rows."""
        data = self.store.get_object(request.bucket, request.key)
        reader = ParcelReader(data)
        if request.predicate is not None:
            self._validate_predicate(request.predicate)
        columns = list(request.columns)
        for name in columns:
            if name not in reader.schema:
                raise SelectError(f"unknown column {name!r} in {request.key}")
        self._check_types(reader, columns, request.predicate)

        needed = set(columns)
        if request.predicate is not None:
            needed |= request.predicate.column_refs()
        read_columns = [n for n in reader.schema.names() if n in needed]

        batches: List[RecordBatch] = []
        rows_scanned = 0
        stored = 0
        uncompressed = 0
        codec = "none"
        for rg_index in range(reader.num_row_groups):
            rg_batch = reader.read_row_group(rg_index, read_columns)
            rows_scanned += rg_batch.num_rows
            stored += reader.chunk_bytes(rg_index, read_columns)
            uncompressed += reader.uncompressed_chunk_bytes(rg_index, read_columns)
            codec = reader.meta.row_groups[rg_index].chunks[0].codec
            if request.predicate is not None:
                mask_col = request.predicate.evaluate(rg_batch)
                mask = mask_col.values.astype(bool) & mask_col.is_valid()
                rg_batch = rg_batch.filter(mask)
            batches.append(rg_batch.select(columns))
        result = (
            concat_batches(batches)
            if batches
            else RecordBatch.empty(reader.schema.select(columns))
        )
        if request.output_format == "csv":
            payload = rows_to_csv(result)
        elif request.output_format == "json":
            payload = rows_to_json(result)
        else:
            raise SelectError(
                f"unsupported output format {request.output_format!r} "
                "(csv and json only)"
            )
        return S3SelectResult(
            csv_payload=payload,
            batch=result,
            rows_scanned=rows_scanned,
            rows_returned=result.num_rows,
            stored_bytes_scanned=stored,
            uncompressed_bytes_scanned=uncompressed,
            codec=codec,
        )


def rows_to_csv(batch: RecordBatch) -> bytes:
    """Row-oriented serialization (the S3 Select transport format)."""
    if batch.num_rows == 0:
        return b""
    columns = [col.to_pylist() for col in batch.columns]
    lines = []
    for row in zip(*columns):
        lines.append(",".join("" if v is None else _csv_value(v) for v in row))
    return ("\n".join(lines) + "\n").encode("utf-8")


def rows_to_json(batch: RecordBatch) -> bytes:
    """JSON Lines serialization (the API's other row-oriented format).

    Heavier on the wire than CSV (field names repeat per row) — which is
    the point: row-oriented transports scale poorly next to Arrow.
    """
    import json

    if batch.num_rows == 0:
        return b""
    names = batch.schema.names()
    columns = [col.to_pylist() for col in batch.columns]
    lines = []
    for row in zip(*columns):
        record = {}
        for name, value in zip(names, row):
            if isinstance(value, float) and value != value:  # NaN
                value = None
            record[name] = value
        lines.append(json.dumps(record, separators=(",", ":")))
    return ("\n".join(lines) + "\n").encode("utf-8")


def json_to_batch(payload: bytes, schema) -> RecordBatch:
    """Parse a JSON Lines Select payload back into a typed batch."""
    import json

    columns: List[List[object]] = [[] for _ in schema]
    for line in payload.decode("utf-8").splitlines():
        if not line:
            continue
        record = json.loads(line)
        for i, field in enumerate(schema):
            value = record.get(field.name)
            if value is not None and field.dtype.name != "string" and not field.dtype.is_floating and not isinstance(value, bool):
                value = int(value)
            columns[i].append(value)
    return RecordBatch.from_pydict(
        schema, {f.name: columns[i] for i, f in enumerate(schema)}
    )


def _csv_value(value: object) -> str:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str) and ("," in value or "\n" in value or '"' in value):
        escaped = value.replace('"', '""')
        return f'"{escaped}"'
    return str(value)


def csv_to_batch(payload: bytes, schema):
    """Parse a Select CSV payload back into a typed batch.

    This is the compute-side work the Hive connector performs on every
    S3-Select response — the expensive row-oriented parse the paper
    contrasts with Arrow's columnar transport.  Known CSV lossiness: an
    empty cell decodes as NULL, so empty strings round-trip as NULL (the
    transport format cannot distinguish them).
    """
    import csv as _csv
    import io

    text = payload.decode("utf-8")
    columns: List[List[object]] = [[] for _ in schema]
    for row in _csv.reader(io.StringIO(text)):
        if not row:
            # A fully-NULL row of a one-column projection is a blank line.
            row = [""] * len(schema)
        if len(row) != len(schema):
            raise SelectError(
                f"CSV row has {len(row)} fields, schema expects {len(schema)}"
            )
        for i, (field, cell) in enumerate(zip(schema, row)):
            if cell == "":
                columns[i].append(None)
            elif field.dtype.name == "string":
                columns[i].append(cell)
            elif field.dtype.is_floating:
                columns[i].append(float(cell))
            elif field.dtype.name == "bool":
                columns[i].append(cell == "True")
            else:
                columns[i].append(int(cell))
    return RecordBatch.from_pydict(
        schema, {f.name: columns[i] for i, f in enumerate(schema)}
    )
