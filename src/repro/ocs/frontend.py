"""The OCS frontend: unified gRPC endpoint, plan parsing, dispatch.

Request/response envelopes are plain length-prefixed binary so their
sizes feed the network model.  The response carries a small stats trailer
(the cost report) which the Presto-OCS connector's EventListener logs —
real OCS exposes similar per-request telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.compress.codec import decode_varint, encode_varint
from repro.errors import CodecError, OcsError, RpcStatusError, StatusCode
from repro.sim.faults import FaultInjector
from repro.ocs.embedded_engine import OcsCostReport
from repro.ocs.storage_node import OcsStorageNode
from repro.rpc.channel import RpcService
from repro.sim.costmodel import CostParams
from repro.sim.kernel import Simulator
from repro.sim.network import Link
from repro.sim.node import SimNode
from repro.substrait.serde import deserialize_plan
from repro.substrait.validator import validate_plan
from repro.trace import NOOP_TRACER, SpanContext, Tracer

__all__ = [
    "PushdownRequest",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "OcsFrontend",
]


@dataclass(frozen=True)
class PushdownRequest:
    """One pushdown execution request addressed to a storage node."""

    plan_bytes: bytes
    bucket: str
    keys: Tuple[str, ...]
    node_index: int = 0


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += encode_varint(len(data))
    out += data


def _read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Bounds-checked varint read; truncation becomes a typed OcsError."""
    try:
        return decode_varint(buf, pos)
    except CodecError as exc:
        raise OcsError(f"truncated frame: {exc}") from exc


def _take(buf: bytes, pos: int, length: int) -> Tuple[bytes, int]:
    """Slice ``length`` bytes at ``pos``, refusing to silently truncate."""
    if length < 0 or pos + length > len(buf):
        raise OcsError(
            f"truncated frame: need {length} bytes at offset {pos}, "
            f"have {len(buf) - pos}"
        )
    return buf[pos : pos + length], pos + length


def _read_str(buf: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _read_varint(buf, pos)
    data, pos = _take(buf, pos, length)
    try:
        return data.decode("utf-8"), pos
    except UnicodeDecodeError as exc:
        raise OcsError(f"malformed frame string: {exc}") from exc


def encode_request(request: PushdownRequest) -> bytes:
    out = bytearray(b"OCRQ")
    out += encode_varint(len(request.plan_bytes))
    out += request.plan_bytes
    _write_str(out, request.bucket)
    out += encode_varint(len(request.keys))
    for key in request.keys:
        _write_str(out, key)
    out += encode_varint(request.node_index)
    return bytes(out)


def decode_request(buf: bytes) -> PushdownRequest:
    if len(buf) < 4 or buf[:4] != b"OCRQ":
        raise OcsError("bad OCS request magic")
    pos = 4
    plan_len, pos = _read_varint(buf, pos)
    plan_bytes, pos = _take(buf, pos, plan_len)
    bucket, pos = _read_str(buf, pos)
    nkeys, pos = _read_varint(buf, pos)
    keys: List[str] = []
    for _ in range(nkeys):
        key, pos = _read_str(buf, pos)
        keys.append(key)
    node_index, pos = _read_varint(buf, pos)
    return PushdownRequest(plan_bytes, bucket, tuple(keys), node_index)


def encode_response(arrow: bytes, report: OcsCostReport) -> bytes:
    out = bytearray(b"OCRS")
    out += encode_varint(len(arrow))
    out += arrow
    for value in (
        report.stored_bytes_read,
        report.uncompressed_bytes,
        report.rows_scanned,
        report.rows_returned,
        report.row_groups_pruned,
        report.row_groups_read,
        report.dynamic_rows_pruned,
        int(report.total_cpu_cycles),
        report.page_cache_hits,
    ):
        out += encode_varint(int(value))
    return bytes(out)


def decode_response(buf: bytes) -> Tuple[bytes, OcsCostReport]:
    if len(buf) < 4 or buf[:4] != b"OCRS":
        raise OcsError("bad OCS response magic")
    pos = 4
    arrow_len, pos = _read_varint(buf, pos)
    arrow, pos = _take(buf, pos, arrow_len)
    values = []
    for _ in range(9):
        value, pos = _read_varint(buf, pos)
        values.append(value)
    report = OcsCostReport(
        stored_bytes_read=values[0],
        uncompressed_bytes=values[1],
        rows_scanned=values[2],
        rows_returned=values[3],
        row_groups_pruned=values[4],
        row_groups_read=values[5],
        dynamic_rows_pruned=values[6],
        compute_cycles=float(values[7]),
        page_cache_hits=values[8],
    )
    return arrow, report


class OcsFrontend:
    """Frontend node: accepts Substrait plans, dispatches to storage nodes."""

    METHOD = "ocs.execute"

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        storage_nodes: Sequence[OcsStorageNode],
        storage_links: Sequence[Link],
        costs: CostParams,
        faults: Optional[FaultInjector] = None,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        if len(storage_nodes) != len(storage_links):
            raise OcsError("need one frontend<->storage link per storage node")
        if not storage_nodes:
            raise OcsError("OCS needs at least one storage node")
        self.sim = sim
        self.node = node
        self.storage_nodes = list(storage_nodes)
        self.storage_links = list(storage_links)
        self.costs = costs
        self.faults = faults
        self.tracer = tracer
        self.service = RpcService(sim, node, "ocs-frontend", costs, tracer=tracer)
        self.service.register(self.METHOD, self._handle_execute)
        self.requests_served = 0

    def _handle_execute(self, payload: bytes, trace: Optional[SpanContext] = None):
        request = decode_request(payload)
        if not 0 <= request.node_index < len(self.storage_nodes):
            raise OcsError(f"no storage node {request.node_index}")
        if self.faults is not None:
            fault = self.faults.storage_fault(request.node_index)
            if fault is not None:
                # The node's embedded engine is refusing work; raw object
                # GETs through the S3 gateway are unaffected.
                raise RpcStatusError(StatusCode.UNAVAILABLE, fault)
        # Parse + validate the plan (real work) and charge frontend CPU.
        decode_span = self.tracer.start(
            "ocs.decode_plan",
            parent=trace,
            attributes={"node": self.node.name, "plan_bytes": len(request.plan_bytes)},
        )
        try:
            plan = deserialize_plan(bytes(request.plan_bytes))
            validate_plan(plan)
            yield self.node.execute(
                self.costs.frontend_parse_cycles_fixed
                + len(request.plan_bytes) * self.costs.frontend_parse_cycles_per_byte,
                name="parse-plan",
            )
        finally:
            self.tracer.end(decode_span)
        storage = self.storage_nodes[request.node_index]
        link = self.storage_links[request.node_index]
        service_start = self.sim.now
        exec_span = self.tracer.start(
            "ocs.dispatch", parent=trace, attributes={"storage_node": storage.node.name}
        )
        try:
            yield link.transfer(
                self.node.name, storage.node.name, len(payload), label="plan-dispatch"
            )
            arrow, report = yield storage.execute_plan(
                plan, request.bucket, list(request.keys), trace=exec_span.context
            )
        finally:
            self.tracer.end(exec_span)
        if self.faults is not None:
            slowdown = self.faults.latency_multiplier(request.node_index)
            if slowdown > 1.0:
                # A slow node stretches its service time without changing
                # the result — the scenario client deadlines exist for.
                yield self.sim.timeout(
                    (self.sim.now - service_start) * (slowdown - 1.0)
                )
        response = encode_response(arrow, report)
        yield link.transfer(
            storage.node.name, self.node.name, len(response), label="plan-result"
        )
        self.requests_served += 1
        return response
