"""Object-based Computational Storage (OCS) — the SK hynix system's stand-in.

Hierarchical design per the paper (Section 5.1): a **frontend node**
exposes a unified gRPC endpoint, parses/validates incoming Substrait
plans, and dispatches them to **storage nodes**; each storage node holds
Parcel objects and runs an **embedded SQL engine** that executes plans
locally — filter, expression project, aggregation, sort, and top-N — and
serializes results to Arrow for the trip back.

The embedded engine executes for real on the stored data; its cost report
(stored bytes scanned, decompression work, per-operator cycles) is what
the storage node charges to its simulated 16-core/2.0 GHz hardware.
"""

from repro.ocs.embedded_engine import EmbeddedEngine, OcsCostReport
from repro.ocs.storage_node import OcsStorageNode
from repro.ocs.frontend import OcsFrontend, PushdownRequest, decode_request, encode_request

__all__ = [
    "EmbeddedEngine",
    "OcsCostReport",
    "OcsFrontend",
    "OcsStorageNode",
    "PushdownRequest",
    "decode_request",
    "encode_request",
]
