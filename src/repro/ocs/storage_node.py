"""An OCS storage node: local objects + embedded engine + cost charging."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.arrowsim.ipc import serialize_batches
from repro.objectstore.store import ObjectStore
from repro.ocs.embedded_engine import EmbeddedEngine
from repro.sim.costmodel import CostParams
from repro.sim.kernel import Process, Simulator
from repro.sim.node import SimNode
from repro.substrait.plan import SubstraitPlan
from repro.trace import NOOP_TRACER, SpanContext, Tracer

__all__ = ["OcsStorageNode"]


class OcsStorageNode:
    """One storage node of the OCS hierarchy (paper Section 5.1)."""

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        store: ObjectStore,
        costs: CostParams,
        index: int = 0,
        tracer: Tracer = NOOP_TRACER,
    ) -> None:
        self.sim = sim
        self.node = node
        self.store = store
        self.costs = costs
        self.index = index
        self.tracer = tracer
        self.engine = EmbeddedEngine(store, costs)
        self.plans_executed = 0

    def execute_plan(
        self,
        plan: SubstraitPlan,
        bucket: str,
        keys: Sequence[str],
        trace: Optional[SpanContext] = None,
    ) -> Process:
        """DES process resolving to (arrow_bytes, OcsCostReport)."""
        return self.sim.process(
            self._execute(plan, bucket, keys, trace), name=f"ocs-exec[{self.index}]"
        )

    def _execute(
        self,
        plan: SubstraitPlan,
        bucket: str,
        keys: Sequence[str],
        trace: Optional[SpanContext] = None,
    ):
        # Real execution first (instantaneous in simulated time)...
        batches, report = self.engine.execute(plan, bucket, keys)
        arrow = serialize_batches(batches)
        # ...then charge what it would have cost on this hardware.  The
        # scan span covers the disk read plus the single fused CPU charge
        # (the Arrow-encode cycles are folded into that charge, so the
        # encode span below is a zero-width marker — splitting the CPU
        # charge in two would change event ordering and hence timings).
        span = self.tracer.start(
            f"ocs.scan[{self.index}]",
            parent=trace,
            attributes={
                "node": self.node.name,
                "rows_scanned": report.rows_scanned,
                "rows_returned": report.rows_returned,
                "bytes": report.stored_bytes_read,
            },
        )
        try:
            yield self.node.read_disk(report.stored_bytes_read, name="scan")
            cpu = (
                report.total_cpu_cycles
                + len(arrow) * self.costs.arrow_serialize_cycles_per_byte
            )
            yield self.node.execute_spread(cpu, name="plan")
        finally:
            self.tracer.end(span)
        encode = self.tracer.start(
            f"ocs.encode[{self.index}]", parent=span, attributes={"bytes": len(arrow)}
        )
        self.tracer.end(encode)
        self.plans_executed += 1
        return arrow, report
