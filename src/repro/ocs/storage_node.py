"""An OCS storage node: local objects + embedded engine + cost charging."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.arrowsim.ipc import serialize_batches
from repro.objectstore.store import ObjectStore
from repro.ocs.embedded_engine import EmbeddedEngine, OcsCostReport
from repro.sim.costmodel import CostParams
from repro.sim.kernel import Process, Simulator
from repro.sim.node import SimNode
from repro.substrait.plan import SubstraitPlan
from repro.trace import NOOP_TRACER, SpanContext, Tracer

__all__ = ["OcsStorageNode"]


class OcsStorageNode:
    """One storage node of the OCS hierarchy (paper Section 5.1).

    When wired with a ``page_cache`` (one
    :class:`~repro.cache.budget.ByteBudgetCache` tier per node), repeated
    pushed subplans over unchanged objects are served from memory: the
    hit skips the disk read and the engine's scan/compute cycles, paying
    only a per-byte serve charge.  Entries are keyed by
    ``(bucket, object keys, canonical plan fingerprint)`` and carry the
    objects' write-counter versions, so any PUT invalidates lazily on
    the next lookup.
    """

    def __init__(
        self,
        sim: Simulator,
        node: SimNode,
        store: ObjectStore,
        costs: CostParams,
        index: int = 0,
        tracer: Tracer = NOOP_TRACER,
        page_cache=None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.store = store
        self.costs = costs
        self.index = index
        self.tracer = tracer
        self.page_cache = page_cache
        self.engine = EmbeddedEngine(store, costs)
        self.plans_executed = 0

    def execute_plan(
        self,
        plan: SubstraitPlan,
        bucket: str,
        keys: Sequence[str],
        trace: Optional[SpanContext] = None,
    ) -> Process:
        """DES process resolving to (arrow_bytes, OcsCostReport)."""
        return self.sim.process(
            self._execute(plan, bucket, keys, trace), name=f"ocs-exec[{self.index}]"
        )

    def _cache_probe(self, plan: SubstraitPlan, bucket: str, keys: Sequence[str]):
        """(key, versions) for the page cache, or None when uncacheable.

        Plans carrying a dynamic join filter are never cached: the
        filter's bits derive from *another* table's data, which the
        key's version signature does not cover.
        """
        if self.page_cache is None:
            return None
        from repro.cache.manager import CacheManager, object_version_signature
        from repro.substrait.expressions import SBloomProbe, SInList

        def has_dynamic(expr) -> bool:
            if isinstance(expr, (SBloomProbe, SInList)):
                return True
            return any(has_dynamic(c) for c in expr.children())

        rel = plan.root
        seen = [rel]
        while seen:
            node = seen.pop()
            if any(has_dynamic(e) for e in node.expressions()):
                return None
            seen.extend(node.inputs())
        from repro.substrait.fingerprint import fingerprint_plan

        key = CacheManager.storage_key(bucket, tuple(keys), fingerprint_plan(plan))
        versions = object_version_signature(self.store, bucket, list(keys))
        return key, versions

    def _execute(
        self,
        plan: SubstraitPlan,
        bucket: str,
        keys: Sequence[str],
        trace: Optional[SpanContext] = None,
    ):
        probe = self._cache_probe(plan, bucket, keys)
        if probe is not None:
            key, versions = probe
            hit = self.page_cache.get(key, versions=versions)
            if hit is not None:
                arrow, stored_report = hit
                report: OcsCostReport = replace(
                    stored_report,
                    stored_bytes_read=0,
                    decompress_cycles=0.0,
                    scan_cycles=0.0,
                    compute_cycles=0.0,
                    rows_scanned=0,
                    row_groups_pruned=0,
                    row_groups_read=0,
                    page_cache_hits=1,
                )
                span = self.tracer.start(
                    f"ocs.cache-hit[{self.index}]",
                    parent=trace,
                    attributes={"node": self.node.name, "bytes": len(arrow)},
                )
                try:
                    yield self.node.execute_spread(
                        self.costs.cache_lookup_cycles
                        + len(arrow) * self.costs.ocs_cache_serve_cycles_per_byte,
                        name="cache-serve",
                    )
                finally:
                    self.tracer.end(span)
                return arrow, report

        # Real execution first (instantaneous in simulated time)...
        batches, report = self.engine.execute(plan, bucket, keys)
        arrow = serialize_batches(batches)
        # ...then charge what it would have cost on this hardware.  The
        # scan span covers the disk read plus the single fused CPU charge
        # (the Arrow-encode cycles are folded into that charge, so the
        # encode span below is a zero-width marker — splitting the CPU
        # charge in two would change event ordering and hence timings).
        span = self.tracer.start(
            f"ocs.scan[{self.index}]",
            parent=trace,
            attributes={
                "node": self.node.name,
                "rows_scanned": report.rows_scanned,
                "rows_returned": report.rows_returned,
                "bytes": report.stored_bytes_read,
            },
        )
        try:
            yield self.node.read_disk(report.stored_bytes_read, name="scan")
            cpu = (
                report.total_cpu_cycles
                + len(arrow) * self.costs.arrow_serialize_cycles_per_byte
            )
            yield self.node.execute_spread(cpu, name="plan")
        finally:
            self.tracer.end(span)
        encode = self.tracer.start(
            f"ocs.encode[{self.index}]", parent=span, attributes={"bytes": len(arrow)}
        )
        self.tracer.end(encode)
        self.plans_executed += 1
        if probe is not None:
            key, versions = probe
            self.page_cache.put(
                key,
                (arrow, replace(report)),
                nbytes=len(arrow),
                versions=versions,
                cost=report.total_cpu_cycles,
            )
        return arrow, report
