"""The storage node's embedded SQL engine: executes Substrait plans.

Lowers relations back onto the shared vectorized kernels
(:mod:`repro.exec`) against Parcel objects.  Field references are
positional, so after every relation the intermediate batch is renamed to
``c0..cN``; ``ReadRel``'s best-effort filter drives row-group pruning
against chunk statistics before any chunk is decoded.

Execution is real; the returned :class:`OcsCostReport` itemizes the
virtual work (stored bytes streamed, decompression, per-operator cycles)
for the storage node to charge against its simulated cores and disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrowsim.dtypes import BOOL, DataType
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.arrowsim.schema import Field, Schema
from repro.errors import OcsPlanRejectedError, SubstraitError
from repro.exchange.filters import BloomProbeExpr
from repro.exec.aggregates import AggregateSpec
from repro.exec.expressions import (
    AndExpr,
    ColumnExpr,
    CompareExpr,
    Expr,
    LiteralExpr,
)
from repro.exec.operators import (
    FilterOperator,
    LimitOperator,
    SortOperator,
    TopNOperator,
    run_operators,
)
from repro.formats.reader import ParcelReader
from repro.objectstore.store import ObjectStore
from repro.sim.costmodel import CostParams
from repro.substrait.expressions import SExpression
from repro.substrait.functions import FunctionRegistry
from repro.substrait.plan import SubstraitPlan
from repro.substrait.relations import (
    AggregateRel,
    FetchRel,
    FilterRel,
    ProjectRel,
    ReadRel,
    Relation,
    SortRel,
)
from repro.substrait.validator import validate_plan

__all__ = ["EmbeddedEngine", "OcsCostReport"]

@dataclass
class OcsCostReport:
    """Virtual work performed while executing one plan."""

    stored_bytes_read: int = 0
    uncompressed_bytes: int = 0
    decompress_cycles: float = 0.0
    scan_cycles: float = 0.0
    compute_cycles: float = 0.0
    rows_scanned: int = 0
    rows_returned: int = 0
    row_groups_pruned: int = 0
    row_groups_read: int = 0
    #: Rows eliminated by dynamic-filter (Bloom) predicates at the store.
    dynamic_rows_pruned: int = 0
    #: Requests served from the storage node's page cache (no disk read,
    #: no engine CPU — only the cache-serve charge).
    page_cache_hits: int = 0

    @property
    def total_cpu_cycles(self) -> float:
        return self.decompress_cycles + self.scan_cycles + self.compute_cycles

    def merge(self, other: "OcsCostReport") -> None:
        self.stored_bytes_read += other.stored_bytes_read
        self.uncompressed_bytes += other.uncompressed_bytes
        self.decompress_cycles += other.decompress_cycles
        self.scan_cycles += other.scan_cycles
        self.compute_cycles += other.compute_cycles
        self.rows_scanned += other.rows_scanned
        self.rows_returned += other.rows_returned
        self.row_groups_pruned += other.row_groups_pruned
        self.row_groups_read += other.row_groups_read
        self.dynamic_rows_pruned += other.dynamic_rows_pruned
        self.page_cache_hits += other.page_cache_hits


def _positional(batch: RecordBatch) -> RecordBatch:
    """Rename columns to c0..cN (Substrait field refs are ordinals)."""
    fields = [
        Field(f"c{i}", f.dtype, f.nullable) for i, f in enumerate(batch.schema)
    ]
    return RecordBatch(Schema(fields), batch.columns)


def lower_expression(
    sexpr: SExpression, input_types: Sequence[DataType], registry: FunctionRegistry
) -> Expr:
    """Substrait expression -> evaluable expression over c0..cN columns."""
    from repro.substrait.convert import substrait_to_expression

    names = [f"c{i}" for i in range(len(input_types))]
    try:
        return substrait_to_expression(sexpr, names, list(input_types), registry)
    except SubstraitError as exc:
        raise OcsPlanRejectedError(str(exc)) from exc


def _extract_range_bounds(
    condition: Expr,
) -> Dict[str, Tuple[Optional[object], Optional[object]]]:
    """Per-column [low, high] bounds from a conjunction of comparisons.

    Used for row-group pruning: only simple ``column op literal`` terms
    contribute; anything else is ignored (pruning stays conservative).
    """
    bounds: Dict[str, Tuple[Optional[object], Optional[object]]] = {}
    terms = condition.operands if isinstance(condition, AndExpr) else (condition,)
    for term in terms:
        if not isinstance(term, CompareExpr):
            continue
        left, right, op = term.left, term.right, term.op
        if isinstance(right, ColumnExpr) and isinstance(left, LiteralExpr):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, ColumnExpr) and isinstance(right, LiteralExpr)):
            continue
        if right.value is None:
            continue
        low, high = bounds.get(left.name, (None, None))
        value = right.value
        if op in (">", ">="):
            low = value if low is None else max(low, value)
        elif op in ("<", "<="):
            high = value if high is None else min(high, value)
        elif op == "=":
            low = value if low is None else max(low, value)
            high = value if high is None else min(high, value)
        bounds[left.name] = (low, high)
    return bounds


class EmbeddedEngine:
    """Executes one Substrait plan over Parcel objects in a local store."""

    def __init__(self, store: ObjectStore, costs: CostParams) -> None:
        self.store = store
        self.costs = costs

    def execute(
        self, plan: SubstraitPlan, bucket: str, keys: Sequence[str]
    ) -> Tuple[List[RecordBatch], OcsCostReport]:
        """Run ``plan`` over the listed objects; returns (batches, costs)."""
        validate_plan(plan)
        report = OcsCostReport()
        batches = self._execute_rel(plan.root, plan.registry, bucket, keys, report)
        total = concat_batches(batches) if batches else None
        if total is not None and plan.root_names:
            if len(plan.root_names) != len(total.schema):
                raise OcsPlanRejectedError(
                    f"plan names {len(plan.root_names)} columns, result has "
                    f"{len(total.schema)}"
                )
            renamed = Schema(
                [
                    Field(name, f.dtype, f.nullable)
                    for name, f in zip(plan.root_names, total.schema)
                ]
            )
            total = RecordBatch(renamed, total.columns)
        out = [total] if total is not None else []
        report.rows_returned = total.num_rows if total is not None else 0
        return out, report

    # -- relation execution -------------------------------------------------------

    def _execute_rel(
        self,
        rel: Relation,
        registry: FunctionRegistry,
        bucket: str,
        keys: Sequence[str],
        report: OcsCostReport,
    ) -> List[RecordBatch]:
        costs = self.costs

        if isinstance(rel, ReadRel):
            return self._execute_read(rel, registry, bucket, keys, report)

        if isinstance(rel, FilterRel):
            inputs = self._execute_rel(rel.input, registry, bucket, keys, report)
            types = rel.input.output_types()
            predicate = lower_expression(rel.condition, types, registry)
            if predicate.dtype is not BOOL:
                raise OcsPlanRejectedError("filter condition must be boolean")
            op = FilterOperator(predicate)
            out = run_operators(inputs, [op])
            report.compute_cycles += (
                op.rows_in * predicate.node_count() * costs.vector_op_cycles_per_value
            )
            if any(isinstance(node, BloomProbeExpr) for node in predicate.walk()):
                # This FilterRel carries a dynamic join filter: attribute
                # its eliminations so the monitor can report what the
                # build side saved the network.
                rows_out = sum(b.num_rows for b in out)
                report.dynamic_rows_pruned += op.rows_in - rows_out
            return [_positional(b) for b in out]

        if isinstance(rel, ProjectRel):
            inputs = self._execute_rel(rel.input, registry, bucket, keys, report)
            types = rel.input.output_types()
            exprs = [lower_expression(e, types, registry) for e in rel.expressions_]
            nodes = sum(e.node_count() for e in exprs)
            out = []
            rows = 0
            for batch in inputs:
                rows += batch.num_rows
                columns = [e.evaluate(batch) for e in exprs]
                schema = Schema(
                    [Field(f"c{i}", e.dtype) for i, e in enumerate(exprs)]
                )
                out.append(RecordBatch(schema, columns))
            # Projection expressions run through the (slow, row-oriented)
            # interpreter — the paper's Q2 regression.
            report.compute_cycles += (
                rows * nodes * costs.ocs_project_cycles_per_row_per_node
            )
            return out

        if isinstance(rel, AggregateRel):
            return self._execute_aggregate(rel, registry, bucket, keys, report)

        if isinstance(rel, FetchRel) and isinstance(rel.input, SortRel):
            # Top-N: fuse sort + fetch, as the paper's OCS does.
            sort_rel = rel.input
            inputs = self._execute_rel(sort_rel.input, registry, bucket, keys, report)
            sort_keys = [(f"c{sf.ordinal}", sf.descending) for sf in sort_rel.sort_fields]
            op = TopNOperator(rel.offset + rel.count, sort_keys)
            out = run_operators(inputs, [op])
            if rel.offset:
                out = run_operators(out, [_OffsetTrim(rel.offset)])
            report.compute_cycles += op.rows_in * costs.topn_cycles_per_row
            return [_positional(b) for b in out]

        if isinstance(rel, SortRel):
            inputs = self._execute_rel(rel.input, registry, bucket, keys, report)
            sort_keys = [(f"c{sf.ordinal}", sf.descending) for sf in rel.sort_fields]
            op = SortOperator(sort_keys)
            out = run_operators(inputs, [op])
            report.compute_cycles += costs.sort_cycles(op.rows_in)
            return [_positional(b) for b in out]

        if isinstance(rel, FetchRel):
            inputs = self._execute_rel(rel.input, registry, bucket, keys, report)
            if rel.offset:
                inputs = run_operators(inputs, [_OffsetTrim(rel.offset)])
            op = LimitOperator(rel.count)
            return [_positional(b) for b in run_operators(inputs, [op])]

        raise OcsPlanRejectedError(f"unsupported relation {type(rel).__name__}")

    def _execute_read(
        self,
        rel: ReadRel,
        registry: FunctionRegistry,
        bucket: str,
        keys: Sequence[str],
        report: OcsCostReport,
    ) -> List[RecordBatch]:
        costs = self.costs
        columns = rel.output_names()
        bounds = {}
        if rel.best_effort_filter is not None:
            lowered = lower_expression(
                rel.best_effort_filter, rel.output_types(), registry
            )
            raw_bounds = _extract_range_bounds(lowered)
            # Bounds are keyed by positional name; map back to real names.
            for pos_name, bound in raw_bounds.items():
                ordinal = int(pos_name[1:])
                bounds[columns[ordinal]] = bound

        out: List[RecordBatch] = []
        for key in keys:
            reader = ParcelReader(self.store.get_object(bucket, key))
            for name in columns:
                if name not in reader.schema:
                    raise OcsPlanRejectedError(
                        f"object {key!r} lacks column {name!r}"
                    )
            for rg_index in range(reader.num_row_groups):
                pruned = False
                for column, (low, high) in bounds.items():
                    stats = reader.row_group_stats(rg_index, column)
                    if not stats.range_may_overlap(low, high):
                        pruned = True
                        break
                if pruned:
                    report.row_groups_pruned += 1
                    continue
                report.row_groups_read += 1
                batch = reader.read_row_group(rg_index, columns)
                stored = reader.chunk_bytes(rg_index, columns)
                uncompressed = reader.uncompressed_chunk_bytes(rg_index, columns)
                codec = reader.meta.row_groups[rg_index].chunks[0].codec
                report.stored_bytes_read += stored
                report.uncompressed_bytes += uncompressed
                report.scan_cycles += (
                    stored * costs.ocs_scan_cycles_per_stored_byte
                    + batch.num_rows * len(columns) * costs.ocs_decode_cycles_per_value
                )
                report.decompress_cycles += costs.decompress_cycles(codec, uncompressed)
                report.rows_scanned += batch.num_rows
                out.append(_positional(batch))
        if not out:
            schema = Schema(
                [Field(f"c{i}", t) for i, t in enumerate(rel.output_types())]
            )
            out.append(RecordBatch.empty(schema))
        return out

    def _execute_aggregate(
        self,
        rel: AggregateRel,
        registry: FunctionRegistry,
        bucket: str,
        keys: Sequence[str],
        report: OcsCostReport,
    ) -> List[RecordBatch]:
        from repro.exec.aggregates import grouped_aggregate, global_aggregate

        costs = self.costs
        inputs = self._execute_rel(rel.input, registry, bucket, keys, report)
        types = rel.input.output_types()
        batch = concat_batches(inputs)

        # Materialize measure arguments as extra columns.
        specs: List[AggregateSpec] = []
        extra_fields: List[Field] = []
        extra_columns = []
        phases = {m.phase for m in rel.measures} or {"single"}
        if len(phases) > 1:
            raise OcsPlanRejectedError("mixed measure phases in one aggregate")
        phase = phases.pop()
        arg_nodes = 0
        for j, measure in enumerate(rel.measures):
            arg_name = None
            input_dtype = None
            if measure.args:
                expr = lower_expression(measure.args[0], types, registry)
                arg_nodes += expr.node_count()
                arg_name = f"$m{j}_arg"
                input_dtype = expr.dtype
                extra_fields.append(Field(arg_name, expr.dtype))
                extra_columns.append(expr.evaluate(batch))
            specs.append(
                AggregateSpec(
                    func=measure.function,
                    arg=arg_name,
                    output=f"$m{j}",
                    input_dtype=input_dtype,
                    distinct=measure.distinct,
                )
            )
        if extra_columns:
            batch = RecordBatch(
                Schema(list(batch.schema.fields) + extra_fields),
                batch.columns + extra_columns,
            )

        key_names = [f"c{i}" for i in rel.grouping]
        if key_names:
            result = grouped_aggregate(batch, key_names, specs, phase=phase)
        else:
            result = global_aggregate(batch, specs, phase=phase)

        report.compute_cycles += batch.num_rows * (
            costs.group_hash_cycles_per_row
            + len(specs) * costs.agg_update_cycles_per_row_per_func
            + arg_nodes * costs.vector_op_cycles_per_value
        )
        return [_positional(result)]


class _OffsetTrim(LimitOperator):
    """Drop the first N rows (FetchRel offset support)."""

    name = "offset"

    def __init__(self, offset: int) -> None:
        super().__init__(offset)
        self._dropping = offset

    def _process(self, batch: RecordBatch):
        if self._dropping <= 0:
            return batch
        if batch.num_rows <= self._dropping:
            self._dropping -= batch.num_rows
            return None
        out = batch.slice(self._dropping, batch.num_rows - self._dropping)
        self._dropping = 0
        return out
