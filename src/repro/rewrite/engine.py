"""Rewrite engine: typed rules, fixpoint driver, firing trace.

A :class:`RewriteRule` is a three-phase object, after DuckDB's subquery
decision tree: ``match`` yields candidate sites, ``guard`` vetoes the
illegal ones (returning a human-readable reason), ``apply`` produces an
equivalent statement plus a detail string for EXPLAIN.  Statements are
frozen dataclasses, so every application builds a new AST — rules never
mutate in place.

:func:`rewrite_statement` drives the catalog to a fixpoint: it sweeps
the rule list in order, re-firing each rule until it no longer matches,
and repeats the sweep until a full pass changes nothing.  A budget
bounds total applications so a buggy rule pair cannot ping-pong
forever; hitting it flags the result instead of raising, because a
partially rewritten statement is still a valid (if unoptimized) query.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.arrowsim.schema import Schema
from repro.errors import SqlError
from repro.sql.ast_nodes import SelectStatement, TableName

__all__ = [
    "RewriteContext",
    "RewriteResult",
    "RewriteRule",
    "RuleFiring",
    "derived_schema",
    "rewrite_statement",
    "table_schema",
]


@dataclass
class RewriteContext:
    """What rules may ask of the engine hosting the rewrite.

    ``resolve`` maps a (possibly session-qualified) table name to its
    catalog schema; it raises :class:`~repro.errors.SqlError` for
    unknown tables, which the engine treats as "rule does not fire" so
    the analyzer reports the real error.  ``scalar_value`` turns an
    uncorrelated scalar subquery into a literal expression — the
    coordinator executes the subquery on the run path and substitutes a
    typed placeholder on the EXPLAIN path.
    """

    resolve: Callable[[TableName], Schema]
    scalar_value: Optional[Callable[[SelectStatement], Any]] = None


@dataclass(frozen=True)
class RuleFiring:
    """One recorded rule application (rendered in EXPLAIN's Rewrite section)."""

    rule: str
    detail: str


@dataclass
class RewriteResult:
    statement: SelectStatement
    firings: List[RuleFiring] = field(default_factory=list)
    budget_exhausted: bool = False

    @property
    def changed(self) -> bool:
        return bool(self.firings)


class RewriteRule(abc.ABC):
    """match → guard → apply.  Rules are stateless and deterministic."""

    name: str = "rule"

    @abc.abstractmethod
    def match(
        self, statement: SelectStatement, ctx: RewriteContext
    ) -> Iterator[Any]:
        """Yield candidate sites (rule-specific descriptors)."""

    def guard(
        self, statement: SelectStatement, candidate: Any, ctx: RewriteContext
    ) -> Optional[str]:
        """Return a veto reason, or ``None`` when the rewrite is legal."""
        return None

    @abc.abstractmethod
    def apply(
        self, statement: SelectStatement, candidate: Any, ctx: RewriteContext
    ) -> Tuple[SelectStatement, str]:
        """Rewrite at ``candidate``; returns (new statement, firing detail)."""


def rewrite_statement(
    statement: SelectStatement,
    ctx: RewriteContext,
    rules: Optional[Sequence[RewriteRule]] = None,
    *,
    budget: int = 32,
    tracer: Any = None,
    parent: Any = None,
) -> RewriteResult:
    """Drive ``rules`` over ``statement`` to a fixpoint (or budget)."""
    if rules is None:
        from repro.rewrite.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    result = RewriteResult(statement)
    sweep_changed = True
    while sweep_changed:
        sweep_changed = False
        for rule in rules:
            while True:
                if len(result.firings) >= budget:
                    result.budget_exhausted = True
                    return result
                fired = _fire_once(rule, result, ctx, tracer, parent)
                if not fired:
                    break
                sweep_changed = True
    return result


def _fire_once(
    rule: RewriteRule,
    result: RewriteResult,
    ctx: RewriteContext,
    tracer: Any,
    parent: Any,
) -> bool:
    """Apply ``rule`` at its first guarded candidate; False when none fire.

    Schema-resolution failures inside match/guard mean the statement
    references something the analyzer will reject anyway — the rule
    simply declines so the analyzer owns the diagnostic.
    """
    statement = result.statement
    try:
        for candidate in rule.match(statement, ctx):
            if rule.guard(statement, candidate, ctx) is not None:
                continue
            if tracer is not None:
                with tracer.span(f"rewrite.{rule.name}", parent=parent):
                    statement, detail = rule.apply(statement, candidate, ctx)
            else:
                statement, detail = rule.apply(statement, candidate, ctx)
            result.statement = statement
            result.firings.append(RuleFiring(rule.name, detail))
            return True
    except SqlError:
        return False
    return False


# --------------------------------------------------------------------------
# Schema derivation for guards
# --------------------------------------------------------------------------


def derived_schema(statement: SelectStatement, ctx: RewriteContext) -> Schema:
    """Exact output schema (names, dtypes, *nullability*) of a statement.

    Runs the real analyzer + planner over the statement so guards (the
    NOT IN null-safety check above all) see precisely what execution
    will produce, instead of a reimplemented approximation.
    """
    from repro.plan.planner import plan_query
    from repro.sql.analyzer import analyze

    base = table_schema(statement.from_table, statement, ctx)
    join_schemas = [
        table_schema(
            join.subquery.from_table if join.subquery is not None else join.table,
            statement,
            ctx,
        )
        for join in statement.joins
    ] or None
    analyzed = analyze(statement, base, join_schemas=join_schemas)
    return plan_query(analyzed).output_schema()


def table_schema(
    name: TableName, statement: SelectStatement, ctx: RewriteContext
) -> Schema:
    """Resolve a FROM/JOIN table: CTE bindings first, then the catalog."""
    if name.schema is None and name.catalog is None:
        for cte in statement.ctes:
            if cte.name == name.table:
                return derived_schema(cte.query, ctx)
    return ctx.resolve(name)
