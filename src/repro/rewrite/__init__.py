"""Rule-driven logical rewriter (DuckDB-style subquery decorrelation).

Sits between the parser and the analyzer: rules pattern-match the SQL
AST (``match``), check legality (``guard``), and produce an equivalent
statement (``apply``).  The engine drives the catalog to a fixpoint
under a rule-application budget and records every firing so EXPLAIN can
show a ``Rewrite`` section and the verifier can re-check equivalence.
"""

from repro.rewrite.engine import (
    RewriteContext,
    RewriteResult,
    RewriteRule,
    RuleFiring,
    derived_schema,
    rewrite_statement,
    table_schema,
)
from repro.rewrite.rules import DEFAULT_RULES

__all__ = [
    "RewriteContext",
    "RewriteResult",
    "RewriteRule",
    "RuleFiring",
    "DEFAULT_RULES",
    "derived_schema",
    "rewrite_statement",
    "table_schema",
]
