"""Rewrite rule catalog.

Seeded from DuckDB's subquery decision tree: quantified subqueries
(``EXISTS`` / ``IN``) become semi joins, their negations become anti
joins when NULL semantics allow, uncorrelated scalar subqueries are
materialized into literals, CTEs are inlined or pinned for one-shot
materialization, OR chains collapse into IN lists (feeding the existing
``SInList`` pushdown), and predicates propagate transitively across
equi-join keys.

Every rule is conservative: when a guard cannot prove the rewrite
legal, the statement is left alone and the analyzer reports the
residual construct.  Guards return the veto *reason* so tests (and
anyone debugging a rule) can see exactly which leg of the decision tree
rejected a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arrowsim.schema import Schema
from repro.rewrite.engine import RewriteContext, RewriteRule, derived_schema, table_schema
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    Cast,
    ColumnRef,
    CommonTableExpr,
    DateLiteral,
    ExistsExpr,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    JoinClause,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    TableName,
    UnaryOp,
)

__all__ = [
    "DEFAULT_RULES",
    "CteInline",
    "CteMaterialize",
    "CteOrphanDrop",
    "ExistsToSemiJoin",
    "InSubqueryToSemiJoin",
    "NotExistsToAntiJoin",
    "NotInSubqueryToAntiJoin",
    "OrToInList",
    "ScalarMaterialize",
    "TransitivePredicate",
]

_SUBQUERY_NODES = (ExistsExpr, InSubquery, ScalarSubquery)
_COMPARISONS = frozenset({"=", "<", "<=", ">", ">=", "<>", "!="})


# --------------------------------------------------------------------------
# AST walking helpers
# --------------------------------------------------------------------------


def conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten an AND tree into its top-level conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def combine(parts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild an AND tree (left-deep, matching the parser) from conjuncts."""
    out: Optional[Expression] = None
    for part in parts:
        out = part if out is None else BinaryOp("AND", out, part)
    return out


def disjuncts(expr: Expression) -> List[Expression]:
    if isinstance(expr, BinaryOp) and expr.op.upper() == "OR":
        return disjuncts(expr.left) + disjuncts(expr.right)
    return [expr]


def _children(expr: Expression) -> Tuple[Expression, ...]:
    """Immediate expression children; subquery statements are opaque."""
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, Between):
        return (expr.expr, expr.low, expr.high)
    if isinstance(expr, InList):
        return (expr.expr,) + tuple(expr.items)
    if isinstance(expr, IsNull):
        return (expr.expr,)
    if isinstance(expr, Cast):
        return (expr.expr,)
    if isinstance(expr, FunctionCall):
        return tuple(expr.args)
    if isinstance(expr, InSubquery):
        return (expr.expr,)
    return ()


def walk(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and every descendant, not descending into subqueries."""
    yield expr
    for child in _children(expr):
        yield from walk(child)


def column_refs(expr: Optional[Expression]) -> List[ColumnRef]:
    if expr is None:
        return []
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


def _has_nested_subquery(expr: Optional[Expression]) -> bool:
    if expr is None:
        return False
    return any(isinstance(node, _SUBQUERY_NODES) for node in walk(expr))


def map_expr(expr: Expression, fn) -> Expression:
    """Top-down substitution: ``fn(node)`` returns a replacement or None."""
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, map_expr(expr.operand, fn))
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    if isinstance(expr, Between):
        return Between(
            map_expr(expr.expr, fn),
            map_expr(expr.low, fn),
            map_expr(expr.high, fn),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(
            map_expr(expr.expr, fn),
            tuple(map_expr(i, fn) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(map_expr(expr.expr, fn), expr.negated)
    if isinstance(expr, Cast):
        return Cast(map_expr(expr.expr, fn), expr.type_name)
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, tuple(map_expr(a, fn) for a in expr.args), expr.distinct
        )
    if isinstance(expr, InSubquery):
        return InSubquery(map_expr(expr.expr, fn), expr.subquery, expr.negated)
    return expr


def _map_statement(stmt: SelectStatement, fn) -> SelectStatement:
    """Apply ``map_expr`` to every top-level expression slot of ``stmt``."""
    return replace(
        stmt,
        select_items=tuple(
            SelectItem(map_expr(i.expr, fn), i.alias) for i in stmt.select_items
        ),
        where=map_expr(stmt.where, fn) if stmt.where is not None else None,
        group_by=tuple(map_expr(e, fn) for e in stmt.group_by),
        having=map_expr(stmt.having, fn) if stmt.having is not None else None,
        order_by=tuple(
            OrderItem(map_expr(o.expr, fn), o.descending) for o in stmt.order_by
        ),
    )


def _statement_exprs(stmt: SelectStatement) -> Iterator[Expression]:
    for item in stmt.select_items:
        yield item.expr
    if stmt.where is not None:
        yield stmt.where
    yield from stmt.group_by
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr


def _referenced_names(stmt: SelectStatement, *, skip_cte: Optional[str] = None) -> set:
    """Unqualified table names referenced anywhere in ``stmt``.

    Used for CTE liveness: a CTE whose name never appears here is dead.
    ``skip_cte`` excludes one CTE's own body (self-reference must not
    keep it alive).
    """
    names: set = set()

    def visit(statement: SelectStatement) -> None:
        if statement.from_table.schema is None and statement.from_table.catalog is None:
            names.add(statement.from_table.table)
        for join in statement.joins:
            if join.subquery is not None:
                visit(join.subquery)
            elif join.table.schema is None and join.table.catalog is None:
                names.add(join.table.table)
        for expr in _statement_exprs(statement):
            for node in walk(expr):
                if isinstance(node, _SUBQUERY_NODES):
                    visit(node.subquery)
        for cte in statement.ctes:
            if cte.name != skip_cte:
                visit(cte.query)

    for join in stmt.joins:
        if join.subquery is not None:
            visit(join.subquery)
        elif join.table.schema is None and join.table.catalog is None:
            names.add(join.table.table)
    if stmt.from_table.schema is None and stmt.from_table.catalog is None:
        names.add(stmt.from_table.table)
    for expr in _statement_exprs(stmt):
        for node in walk(expr):
            if isinstance(node, _SUBQUERY_NODES):
                visit(node.subquery)
    for cte in stmt.ctes:
        if cte.name != skip_cte:
            visit(cte.query)
    return names


def _reference_count(stmt: SelectStatement, name: str) -> int:
    """How many FROM/JOIN sites reference CTE ``name``."""
    count = 0

    def visit(statement: SelectStatement) -> None:
        nonlocal count
        if (
            statement.from_table.table == name
            and statement.from_table.schema is None
            and statement.from_table.catalog is None
        ):
            count += 1
        for join in statement.joins:
            if join.subquery is not None:
                visit(join.subquery)
            elif (
                join.table.table == name
                and join.table.schema is None
                and join.table.catalog is None
            ):
                count += 1
        for expr in _statement_exprs(statement):
            for node in walk(expr):
                if isinstance(node, _SUBQUERY_NODES):
                    visit(node.subquery)
        for cte in statement.ctes:
            if cte.name != name:
                visit(cte.query)

    visit(replace(stmt, ctes=tuple(c for c in stmt.ctes if c.name != name)))
    return count


def _outer_tables(
    stmt: SelectStatement, ctx: RewriteContext
) -> Dict[str, Schema]:
    """Visible outer tables: FROM plus catalog-backed join right sides."""
    tables = {stmt.from_table.table: table_schema(stmt.from_table, stmt, ctx)}
    for join in stmt.joins:
        if join.subquery is None:
            tables[join.table.table] = table_schema(join.table, stmt, ctx)
    return tables


def _semi_alias(stmt: SelectStatement) -> str:
    n = sum(1 for j in stmt.joins if j.table.table.startswith("$semi"))
    return f"$semi{n}"


def _qualify_outer(
    ref: ColumnRef, stmt: SelectStatement, ctx: RewriteContext
) -> ColumnRef:
    """Pin an unqualified outer reference to its owning table.

    Semi/anti ON clauses see both the probe scope and the derived
    table's scope; an unqualified probe column whose name also appears
    in the subquery output would be ambiguous there.
    """
    if ref.qualifier is not None:
        return ref
    owners = [
        table
        for table, schema in _outer_tables(stmt, ctx).items()
        if ref.name in schema
    ]
    if len(owners) == 1:
        return ColumnRef(ref.name, qualifier=owners[0])
    return ref


def _same_ref(a: ColumnRef, b: ColumnRef) -> bool:
    """Structural column identity, treating a missing qualifier as a wildcard."""
    if a.name != b.name:
        return False
    if a.qualifier is None or b.qualifier is None:
        return True
    return a.qualifier == b.qualifier


# --------------------------------------------------------------------------
# EXISTS / NOT EXISTS -> semi / anti join
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _ConjunctSite:
    index: int
    expr: Expression


@dataclass(frozen=True)
class _Decorrelated:
    """Classified subquery WHERE: correlation keys + inner-only residue."""

    pairs: Tuple[Tuple[ColumnRef, ColumnRef], ...]  # (outer ref, inner ref)
    inner_only: Tuple[Expression, ...]


class _SubqueryToJoin(RewriteRule):
    """Shared machinery for the four quantified-subquery rules."""

    negated = False
    join_kind = "semi"

    def _sites(
        self, stmt: SelectStatement, node_type, negated: bool
    ) -> Iterator[_ConjunctSite]:
        for index, conj in enumerate(conjuncts(stmt.where)):
            if isinstance(conj, node_type) and conj.negated == negated:
                yield _ConjunctSite(index, conj)

    def _attach(
        self,
        stmt: SelectStatement,
        site: _ConjunctSite,
        clause: JoinClause,
    ) -> SelectStatement:
        remaining = [
            c for i, c in enumerate(conjuncts(stmt.where)) if i != site.index
        ]
        return replace(
            stmt, where=combine(remaining), joins=stmt.joins + (clause,)
        )


class ExistsToSemiJoin(_SubqueryToJoin):
    """``EXISTS (correlated select)`` becomes a semi join on the
    correlation equalities; inner-only predicates stay in the derived
    table's WHERE so the connector can still push them down."""

    name = "exists-to-semi-join"
    negated = False
    join_kind = "semi"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        return self._sites(stmt, ExistsExpr, self.negated)

    def guard(self, stmt, site, ctx) -> Optional[str]:
        reason, _ = _decorrelate_exists(stmt, site.expr.subquery, ctx)
        return reason

    def apply(
        self, stmt: SelectStatement, site: Any, ctx: RewriteContext
    ) -> Tuple[SelectStatement, str]:
        sub = site.expr.subquery
        _, parts = _decorrelate_exists(stmt, sub, ctx)
        assert parts is not None
        alias = _semi_alias(stmt)
        inner_names: List[str] = []
        for _, inner in parts.pairs:
            if inner.name not in inner_names:
                inner_names.append(inner.name)
        derived = SelectStatement(
            select_items=tuple(SelectItem(ColumnRef(n)) for n in inner_names),
            from_table=sub.from_table,
            where=combine(parts.inner_only),
        )
        condition = combine(
            [
                BinaryOp(
                    "=",
                    _qualify_outer(outer, stmt, ctx),
                    ColumnRef(inner.name, qualifier=alias),
                )
                for outer, inner in parts.pairs
            ]
        )
        assert condition is not None
        clause = JoinClause(self.join_kind, TableName(alias), condition, derived)
        verb = "NOT EXISTS" if self.negated else "EXISTS"
        detail = (
            f"{verb} over {sub.from_table.table} -> {self.join_kind} join "
            f"{alias} on {len(parts.pairs)} key(s)"
        )
        return self._attach(stmt, site, clause), detail


class NotExistsToAntiJoin(ExistsToSemiJoin):
    """``NOT EXISTS`` is NULL-safe as an anti join: a NULL probe key
    matches nothing, and "matches nothing" is exactly what anti keeps."""

    name = "not-exists-to-anti-join"
    negated = True
    join_kind = "anti"


def _decorrelate_exists(
    stmt: SelectStatement, sub: SelectStatement, ctx: RewriteContext
) -> Tuple[Optional[str], Optional[_Decorrelated]]:
    if sub.ctes:
        return "subquery declares CTEs", None
    if sub.joins:
        return "subquery has joins", None
    if sub.group_by or sub.having:
        return "subquery aggregates", None
    if sub.limit is not None:
        return "subquery has LIMIT", None
    if _has_nested_subquery(sub.where):
        return "subquery nests another subquery", None
    inner_schema = table_schema(sub.from_table, stmt, ctx)
    outer = _outer_tables(stmt, ctx)
    pairs: List[Tuple[ColumnRef, ColumnRef]] = []
    inner_only: List[Expression] = []
    for conj in conjuncts(sub.where):
        sides = None
        if (
            isinstance(conj, BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
        ):
            left = _classify(conj.left, sub.from_table, inner_schema, outer)
            right = _classify(conj.right, sub.from_table, inner_schema, outer)
            sides = (left, right)
        if sides == ("outer", "inner"):
            pairs.append((conj.left, conj.right))  # type: ignore[arg-type]
            continue
        if sides == ("inner", "outer"):
            pairs.append((conj.right, conj.left))  # type: ignore[arg-type]
            continue
        refs = column_refs(conj)
        kinds = {_classify(r, sub.from_table, inner_schema, outer) for r in refs}
        if kinds <= {"inner"}:
            inner_only.append(conj)
            continue
        return f"unsupported subquery predicate {conj.to_sql()}", None
    if not pairs:
        return "uncorrelated EXISTS", None
    return None, _Decorrelated(tuple(pairs), tuple(inner_only))


def _classify(
    ref: ColumnRef,
    inner_table: TableName,
    inner_schema: Schema,
    outer: Dict[str, Schema],
) -> Optional[str]:
    """Which scope a subquery column reference binds to: inner beats outer."""
    if ref.qualifier is not None:
        if ref.qualifier == inner_table.table:
            return "inner" if ref.name in inner_schema else None
        schema = outer.get(ref.qualifier)
        if schema is not None and ref.name in schema:
            return "outer"
        return None
    if ref.name in inner_schema:
        return "inner"
    hits = [t for t, schema in outer.items() if ref.name in schema]
    if len(hits) == 1:
        return "outer"
    return None


# --------------------------------------------------------------------------
# IN (subquery) / NOT IN (subquery) -> semi / anti join
# --------------------------------------------------------------------------


class InSubqueryToSemiJoin(_SubqueryToJoin):
    """``col IN (uncorrelated single-column select)`` becomes a semi join
    against the subquery as a derived build side (aggregating subqueries
    like TPC-H Q18's are fine — the build side is just a plan)."""

    name = "in-to-semi-join"
    negated = False
    join_kind = "semi"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        return self._sites(stmt, InSubquery, self.negated)

    def guard(self, stmt, site, ctx) -> Optional[str]:
        node = site.expr
        if not isinstance(node.expr, ColumnRef):
            return "probe expression is not a plain column"
        sub = node.subquery
        reason = _check_in_subquery(sub)
        if reason is not None:
            return reason
        if self.negated:
            return self._null_guard(stmt, node, ctx)
        return None

    def _null_guard(self, stmt, node, ctx) -> Optional[str]:
        """NOT IN is only an anti join when neither side can be NULL: a
        single NULL (either on the probe or in the build set) makes
        ``NOT IN`` yield no rows / UNKNOWN, while anti join keeps rows."""
        sub = replace(node.subquery, order_by=(), distinct=False)
        out_schema = derived_schema(sub, ctx)
        if out_schema.fields[0].nullable:
            return "NOT IN subquery column may produce NULL"
        probe = node.expr
        outer = _outer_tables(stmt, ctx)
        field = None
        if probe.qualifier is not None:
            schema = outer.get(probe.qualifier)
            if schema is not None and probe.name in schema:
                field = schema.field(probe.name)
        else:
            hits = [s for s in outer.values() if probe.name in s]
            if len(hits) == 1:
                field = hits[0].field(probe.name)
        if field is None:
            return f"cannot resolve probe column {probe.to_sql()}"
        if field.nullable:
            return "NOT IN probe column may be NULL"
        return None

    def apply(
        self, stmt: SelectStatement, site: Any, ctx: RewriteContext
    ) -> Tuple[SelectStatement, str]:
        node = site.expr
        sub = replace(node.subquery, order_by=(), distinct=False)
        alias = _semi_alias(stmt)
        out_name = sub.select_items[0].output_name
        probe = _qualify_outer(node.expr, stmt, ctx)
        condition = BinaryOp("=", probe, ColumnRef(out_name, qualifier=alias))
        clause = JoinClause(self.join_kind, TableName(alias), condition, sub)
        verb = "NOT IN" if self.negated else "IN"
        detail = (
            f"{node.expr.to_sql()} {verb} subquery over {sub.from_table.table} "
            f"-> {self.join_kind} join {alias}"
        )
        return self._attach(stmt, site, clause), detail


class NotInSubqueryToAntiJoin(InSubqueryToSemiJoin):
    name = "not-in-to-anti-join"
    negated = True
    join_kind = "anti"


def _check_in_subquery(sub: SelectStatement) -> Optional[str]:
    if sub.ctes:
        return "subquery declares CTEs"
    if sub.joins:
        return "subquery has joins"
    if sub.limit is not None:
        return "subquery has LIMIT"
    if len(sub.select_items) != 1:
        return "subquery must produce exactly one column"
    if isinstance(sub.select_items[0].expr, Star):
        return "subquery selects *"
    for expr in _statement_exprs(sub):
        if _has_nested_subquery(expr):
            return "subquery nests another subquery"
        for ref in column_refs(expr):
            if ref.qualifier is not None and ref.qualifier != sub.from_table.table:
                return f"correlated reference {ref.to_sql()}"
    return None


# --------------------------------------------------------------------------
# Uncorrelated scalar subquery -> literal
# --------------------------------------------------------------------------


class ScalarMaterialize(RewriteRule):
    """``(SELECT agg(...) FROM t ...)`` used as a value: evaluate once,
    substitute the literal.  The engine host supplies the evaluator —
    the run path executes the subquery for real, EXPLAIN substitutes a
    typed placeholder."""

    name = "scalar-materialize"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        seen: List[ScalarSubquery] = []
        for expr in _statement_exprs(stmt):
            for node in walk(expr):
                if isinstance(node, ScalarSubquery) and node not in seen:
                    seen.append(node)
                    yield node

    def guard(self, stmt, node: ScalarSubquery, ctx) -> Optional[str]:
        if ctx.scalar_value is None:
            return "no scalar evaluator available"
        sub = node.subquery
        if sub.ctes:
            return "subquery declares CTEs"
        if sub.joins:
            return "subquery has joins"
        if len(sub.select_items) != 1:
            return "subquery must produce exactly one column"
        if isinstance(sub.select_items[0].expr, Star):
            return "subquery selects *"
        for expr in _statement_exprs(sub):
            if _has_nested_subquery(expr):
                return "subquery nests another subquery"
            for ref in column_refs(expr):
                if ref.qualifier is not None and ref.qualifier != sub.from_table.table:
                    return f"correlated reference {ref.to_sql()}"
        return None

    def apply(self, stmt, node: ScalarSubquery, ctx):
        assert ctx.scalar_value is not None
        literal = ctx.scalar_value(node.subquery)
        rewritten = _map_statement(
            stmt, lambda e: literal if e == node else None
        )
        detail = (
            f"scalar subquery over {node.subquery.from_table.table} "
            f"-> {literal.to_sql()}"
        )
        return rewritten, detail


# --------------------------------------------------------------------------
# CTE handling: drop dead, inline single-use simple, materialize the rest
# --------------------------------------------------------------------------


class CteOrphanDrop(RewriteRule):
    """A CTE nothing references is dead weight; drop it before anything
    tries to materialize it."""

    name = "cte-orphan-drop"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        for cte in stmt.ctes:
            if cte.name not in _referenced_names(stmt, skip_cte=cte.name):
                yield cte

    def apply(self, stmt, cte: CommonTableExpr, ctx):
        remaining = tuple(c for c in stmt.ctes if c.name != cte.name)
        return replace(stmt, ctes=remaining), f"dropped unreferenced CTE {cte.name}"


def _inline_veto(stmt: SelectStatement, cte: CommonTableExpr) -> Optional[str]:
    """Why ``cte`` cannot be folded into the outer statement."""
    body = cte.query
    if body.limit is not None and not body.order_by:
        return "non-deterministic body (LIMIT without ORDER BY)"
    if body.limit is not None:
        return "body has LIMIT"
    count = _reference_count(stmt, cte.name)
    if count == 0:
        return "unreferenced"
    if count > 1:
        return f"referenced {count} times"
    if (
        stmt.from_table.table != cte.name
        or stmt.from_table.schema is not None
        or stmt.from_table.catalog is not None
    ):
        return "single reference is not the outer FROM"
    if stmt.joins:
        return "outer statement has joins"
    if body.ctes or body.joins:
        return "body has CTEs or joins"
    if body.group_by or body.having or body.distinct or body.order_by:
        return "body is not a simple select"
    if body.where is not None and _has_nested_subquery(body.where):
        return "body contains subqueries"
    for item in body.select_items:
        if not isinstance(item.expr, ColumnRef):
            return "body computes expressions"
    return None


class CteInline(RewriteRule):
    """Fold a single-use, simple-select CTE into the outer FROM: column
    aliases are substituted and the body's WHERE conjuncts merge into
    the outer WHERE (where pushdown can still reach them)."""

    name = "cte-inline"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        return iter(stmt.ctes)

    def guard(self, stmt, cte: CommonTableExpr, ctx) -> Optional[str]:
        return _inline_veto(stmt, cte)

    def apply(self, stmt, cte: CommonTableExpr, ctx):
        body = cte.query
        alias_map: Dict[str, str] = {}
        for item in body.select_items:
            assert isinstance(item.expr, ColumnRef)
            alias_map[item.output_name] = item.expr.name

        def substitute(expr: Expression) -> Optional[Expression]:
            if (
                isinstance(expr, ColumnRef)
                and expr.qualifier in (None, cte.name)
                and expr.name in alias_map
            ):
                return ColumnRef(alias_map[expr.name])
            return None

        mapped = _map_statement(stmt, substitute)
        # Substitution may change a column's rendered name; pin each
        # select item's output name so the query's shape is preserved.
        items = []
        for before, after in zip(stmt.select_items, mapped.select_items):
            if after.alias is None and after.output_name != before.output_name:
                after = SelectItem(after.expr, before.output_name)
            items.append(after)
        merged = conjuncts(body.where) + conjuncts(mapped.where)
        rewritten = replace(
            mapped,
            select_items=tuple(items),
            from_table=body.from_table,
            where=combine(merged),
            ctes=tuple(c for c in stmt.ctes if c.name != cte.name),
        )
        detail = f"inlined CTE {cte.name} into FROM {body.from_table.table}"
        return rewritten, detail


class CteMaterialize(RewriteRule):
    """Everything not inlined is pinned for one-shot materialization:
    the engine executes the body once and scans the stored result at
    every reference, so multi-use and non-deterministic CTEs stay
    consistent."""

    name = "cte-materialize"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        for cte in stmt.ctes:
            if not cte.materialized:
                yield cte

    def guard(self, stmt, cte: CommonTableExpr, ctx) -> Optional[str]:
        if _reference_count(stmt, cte.name) == 0:
            return "unreferenced (orphan rule owns it)"
        if _inline_veto(stmt, cte) is None:
            return "inline-eligible"
        # The coordinator executes a materialized body as a standalone
        # query against the catalog; a body that reads another CTE (or
        # itself) has no table to resolve there.
        if _referenced_names(cte.query) & {c.name for c in stmt.ctes}:
            return "body references a CTE"
        return None

    def apply(self, stmt, cte: CommonTableExpr, ctx):
        count = _reference_count(stmt, cte.name)
        why = _inline_veto(stmt, cte) or "?"
        ctes = tuple(
            replace(c, materialized=True) if c.name == cte.name else c
            for c in stmt.ctes
        )
        detail = f"CTE {cte.name} materialized once (referenced {count}x; {why})"
        return replace(stmt, ctes=ctes), detail


# --------------------------------------------------------------------------
# OR chain of equalities -> IN list
# --------------------------------------------------------------------------


class OrToInList(RewriteRule):
    """``c = a OR c = b OR ...`` over one column becomes ``c IN (a, b,
    ...)``, which the OCS pushdown layer already knows how to ship as a
    single ``SInList`` filter."""

    name = "or-to-in-list"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        for index, conj in enumerate(conjuncts(stmt.where)):
            parts = disjuncts(conj)
            if len(parts) < 2:
                continue
            column: Optional[ColumnRef] = None
            values: List[Expression] = []
            for part in parts:
                pair = _equality_with_literal(part)
                if pair is None:
                    break
                ref, value = pair
                if column is None:
                    column = ref
                elif ref.name != column.name or ref.qualifier != column.qualifier:
                    break
                values.append(value)
            else:
                assert column is not None
                yield _ConjunctSite(index, InList(column, tuple(values)))

    def guard(self, stmt, site: _ConjunctSite, ctx) -> Optional[str]:
        assert isinstance(site.expr, InList)
        for value in site.expr.items:
            if isinstance(value, Literal) and value.value is None:
                return "NULL literal in OR chain"
        return None

    def apply(self, stmt, site: _ConjunctSite, ctx):
        parts = conjuncts(stmt.where)
        parts[site.index] = site.expr
        assert isinstance(site.expr, InList)
        detail = (
            f"OR chain of {len(site.expr.items)} equalities on "
            f"{site.expr.expr.to_sql()} -> IN list"
        )
        return replace(stmt, where=combine(parts)), detail


def _equality_with_literal(
    expr: Expression,
) -> Optional[Tuple[ColumnRef, Expression]]:
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    if isinstance(expr.left, ColumnRef) and isinstance(
        expr.right, (Literal, DateLiteral)
    ):
        return expr.left, expr.right
    if isinstance(expr.right, ColumnRef) and isinstance(
        expr.left, (Literal, DateLiteral)
    ):
        return expr.right, expr.left
    return None


# --------------------------------------------------------------------------
# Transitive predicate derivation across equi-join keys
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Derivation:
    target: str  # "outer" | "subquery"
    join_index: int
    derived: Expression


class TransitivePredicate(RewriteRule):
    """``a.k = b.k AND p(a.k)`` implies ``p(b.k)``; deriving the copy
    lets both scans prune independently.

    Directions are gated by join kind: probe→build is sound for inner,
    semi and anti joins (the build side only *selects* probe rows, so
    shrinking it to keys that could ever match changes nothing — for
    anti, dropped build rows only matched probe rows the predicate
    already eliminated).  build→probe is sound only for inner joins.
    LEFT joins are skipped entirely: their probe side survives without
    a match, so no derived filter may touch it, and we stay
    conservative about the build side too.
    """

    name = "transitive-predicate"

    def match(self, stmt: SelectStatement, ctx: RewriteContext):
        where_parts = conjuncts(stmt.where)
        where_sql = {c.to_sql() for c in where_parts}
        for join_index, join in enumerate(stmt.joins):
            if join.kind == "left":
                continue
            pairs = _join_key_pairs(stmt, join, ctx)
            for conj in where_parts:
                pred = _single_column_predicate(conj)
                if pred is None:
                    continue
                ref = pred
                for outer_ref, right_name in pairs:
                    # probe -> build
                    if _same_ref(ref, outer_ref):
                        if join.subquery is not None:
                            base = _underlying_column(join.subquery, right_name)
                            if base is None:
                                continue
                            derived = _retarget(conj, ColumnRef(base))
                            existing = {
                                c.to_sql()
                                for c in conjuncts(join.subquery.where)
                            }
                            if derived.to_sql() in existing:
                                continue
                            yield _Derivation("subquery", join_index, derived)
                        else:
                            derived = _retarget(
                                conj,
                                ColumnRef(right_name, qualifier=join.table.table),
                            )
                            if derived.to_sql() in where_sql:
                                continue
                            yield _Derivation("outer", join_index, derived)
                    # build -> probe (inner catalog joins only)
                    elif (
                        join.kind == "inner"
                        and join.subquery is None
                        and ref.qualifier == join.table.table
                        and ref.name == right_name
                    ):
                        derived = _retarget(conj, outer_ref)
                        if derived.to_sql() in where_sql:
                            continue
                        yield _Derivation("outer", join_index, derived)

    def apply(self, stmt, derivation: _Derivation, ctx):
        join = stmt.joins[derivation.join_index]
        if derivation.target == "subquery":
            assert join.subquery is not None
            sub = join.subquery
            new_sub = replace(
                sub, where=combine(conjuncts(sub.where) + [derivation.derived])
            )
            joins = tuple(
                replace(j, subquery=new_sub) if i == derivation.join_index else j
                for i, j in enumerate(stmt.joins)
            )
            rewritten = replace(stmt, joins=joins)
            where_str = f"into {join.table.table}"
        else:
            rewritten = replace(
                stmt,
                where=combine(conjuncts(stmt.where) + [derivation.derived]),
            )
            where_str = "into WHERE"
        detail = (
            f"derived {derivation.derived.to_sql()} {where_str} across "
            f"join keys of join {derivation.join_index}"
        )
        return rewritten, detail


def _join_key_pairs(
    stmt: SelectStatement, join: JoinClause, ctx: RewriteContext
) -> List[Tuple[ColumnRef, str]]:
    """Equi-key pairs of one join: (outer-side ref, right's own column name)."""
    if join.subquery is not None:
        right_names = {item.output_name for item in join.subquery.select_items}
    else:
        right_names = set(table_schema(join.table, stmt, ctx).names())
    pairs: List[Tuple[ColumnRef, str]] = []
    for conj in conjuncts(join.condition):
        if not (
            isinstance(conj, BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
        ):
            continue
        left, right = conj.left, conj.right
        if _is_right_side(left, join, right_names) and not _is_right_side(
            right, join, right_names
        ):
            left, right = right, left
        if _is_right_side(right, join, right_names) and not _is_right_side(
            left, join, right_names
        ):
            pairs.append((left, right.name))
    return pairs


def _is_right_side(ref: ColumnRef, join: JoinClause, right_names: set) -> bool:
    if ref.qualifier is not None:
        return ref.qualifier == join.table.table
    return ref.name in right_names


def _single_column_predicate(expr: Expression) -> Optional[ColumnRef]:
    """The column a derivable single-column predicate constrains, if any."""
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISONS:
        if isinstance(expr.left, ColumnRef) and _is_constant(expr.right):
            return expr.left
        if isinstance(expr.right, ColumnRef) and _is_constant(expr.left):
            return expr.right
        return None
    if isinstance(expr, Between):
        if (
            isinstance(expr.expr, ColumnRef)
            and _is_constant(expr.low)
            and _is_constant(expr.high)
        ):
            return expr.expr
        return None
    if isinstance(expr, InList):
        if isinstance(expr.expr, ColumnRef) and all(
            _is_constant(i) for i in expr.items
        ):
            return expr.expr
        return None
    return None


def _is_constant(expr: Expression) -> bool:
    if isinstance(expr, (Literal, DateLiteral, IntervalLiteral)):
        return True
    if isinstance(expr, BinaryOp):
        return _is_constant(expr.left) and _is_constant(expr.right)
    if isinstance(expr, UnaryOp):
        return _is_constant(expr.operand)
    if isinstance(expr, Cast):
        return _is_constant(expr.expr)
    return False


def _retarget(expr: Expression, new_ref: ColumnRef) -> Expression:
    """Copy a single-column predicate onto ``new_ref``."""
    return map_expr(
        expr, lambda e: new_ref if isinstance(e, ColumnRef) else None
    )


def _underlying_column(sub: SelectStatement, output_name: str) -> Optional[str]:
    """Base column behind a subquery output, when it is a plain column.

    Predicates may only ride through the subquery boundary onto plain
    column outputs — a computed or aggregated output has no single base
    column to constrain.
    """
    for item in sub.select_items:
        if item.output_name == output_name:
            if isinstance(item.expr, ColumnRef):
                # An aggregated output (GROUP BY key) is still the base
                # column itself, so keys pass through; aggregate
                # expressions never reach here (not ColumnRef).
                return item.expr.name
            return None
    return None


DEFAULT_RULES: Tuple[RewriteRule, ...] = (
    CteOrphanDrop(),
    CteInline(),
    CteMaterialize(),
    ScalarMaterialize(),
    ExistsToSemiJoin(),
    NotExistsToAntiJoin(),
    InSubqueryToSemiJoin(),
    NotInSubqueryToAntiJoin(),
    OrToInList(),
    TransitivePredicate(),
)
