"""Arrow-class in-memory columnar format with IPC serialization.

OCS returns query results to Presto workers as Apache Arrow record
batches (paper Section 2.3); this package is our from-scratch equivalent:
typed columnar arrays over numpy buffers, validity bitmaps for nulls,
schemas, record batches, and a compact binary IPC encoding whose byte
counts feed the simulated network transfers.

Unlike the S3-Select-class CSV path, (de)serialization here is nearly
free — buffers are memcpy'd — which is exactly the asymmetry the paper
exploits (Arrow results vs row-oriented CSV/JSON).
"""

from repro.arrowsim.dtypes import (
    BOOL,
    DATE32,
    DataType,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    dtype_from_code,
    dtype_from_numpy,
)
from repro.arrowsim.schema import Field, Schema
from repro.arrowsim.array import ColumnArray
from repro.arrowsim.record_batch import RecordBatch, concat_batches
from repro.arrowsim.ipc import deserialize_batch, deserialize_batches, serialize_batch, serialize_batches

__all__ = [
    "BOOL",
    "ColumnArray",
    "DATE32",
    "DataType",
    "FLOAT32",
    "FLOAT64",
    "Field",
    "INT32",
    "INT64",
    "RecordBatch",
    "STRING",
    "Schema",
    "concat_batches",
    "deserialize_batch",
    "deserialize_batches",
    "dtype_from_code",
    "dtype_from_numpy",
    "serialize_batch",
    "serialize_batches",
]
