"""Binary IPC encoding for record batches.

Buffer-oriented like real Arrow IPC: fixed-width columns are shipped as
raw little-endian buffers (a memcpy each way), strings as offsets + UTF-8
data, validity as packed bits.  The encoded length of these messages is
what the simulator charges to the network for the OCS result path.

Layout (all integers little-endian)::

    stream  := "ARS1" u32 batch_count batch*
    batch   := "ARB1" schema u64 num_rows column*
    schema  := u16 nfields (u16 name_len, name, u8 type_code, u8 nullable)*
    column  := u8 has_validity [packed validity bits] payload
    payload := raw value buffer                    (fixed-width types)
             | u64 data_len int32[n+1] offsets data  (string)
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.dtypes import STRING, DataType, dtype_from_code
from repro.arrowsim.record_batch import RecordBatch
from repro.arrowsim.schema import Field, Schema
from repro.errors import FormatError

__all__ = [
    "serialize_batch",
    "deserialize_batch",
    "serialize_batches",
    "deserialize_batches",
]

_BATCH_MAGIC = b"ARB1"
_STREAM_MAGIC = b"ARS1"


def _encode_schema(schema: Schema) -> bytes:
    out = bytearray(struct.pack("<H", len(schema)))
    for field in schema:
        name = field.name.encode("utf-8")
        out += struct.pack("<H", len(name))
        out += name
        out += struct.pack("<BB", field.dtype.code, int(field.nullable))
    return bytes(out)


def _decode_schema(buf: bytes, pos: int) -> Tuple[Schema, int]:
    (nfields,) = struct.unpack_from("<H", buf, pos)
    pos += 2
    fields = []
    for _ in range(nfields):
        (name_len,) = struct.unpack_from("<H", buf, pos)
        pos += 2
        name = buf[pos : pos + name_len].decode("utf-8")
        pos += name_len
        code, nullable = struct.unpack_from("<BB", buf, pos)
        pos += 2
        fields.append(Field(name, dtype_from_code(code), bool(nullable)))
    return Schema(fields), pos


def _encode_column(col: ColumnArray) -> bytes:
    out = bytearray()
    n = len(col)
    if col.validity is not None:
        out.append(1)
        out += np.packbits(col.validity).tobytes()
    else:
        out.append(0)
    if col.dtype is STRING:
        encoded = [str(v).encode("utf-8") for v in col.values]
        offsets = np.zeros(n + 1, dtype=np.int32)
        if n:
            offsets[1:] = np.cumsum([len(e) for e in encoded])
        data = b"".join(encoded)
        out += struct.pack("<Q", len(data))
        out += offsets.tobytes()
        out += data
    else:
        out += np.ascontiguousarray(col.values).tobytes()
    return bytes(out)


def _decode_column(
    buf: bytes, pos: int, dtype: DataType, num_rows: int
) -> Tuple[ColumnArray, int]:
    has_validity = buf[pos]
    pos += 1
    validity = None
    if has_validity:
        nbytes = (num_rows + 7) // 8
        packed = np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=pos)
        validity = np.unpackbits(packed)[:num_rows].astype(bool)
        pos += nbytes
    if dtype is STRING:
        (data_len,) = struct.unpack_from("<Q", buf, pos)
        pos += 8
        offsets = np.frombuffer(buf, dtype=np.int32, count=num_rows + 1, offset=pos)
        pos += 4 * (num_rows + 1)
        data = buf[pos : pos + data_len]
        pos += data_len
        values = np.empty(num_rows, dtype=object)
        for i in range(num_rows):
            values[i] = data[offsets[i] : offsets[i + 1]].decode("utf-8")
    else:
        nbytes = dtype.byte_width * num_rows
        values = np.frombuffer(
            buf, dtype=dtype.numpy_dtype, count=num_rows, offset=pos
        ).copy()
        pos += nbytes
    return ColumnArray(dtype, values, validity), pos


def serialize_batch(batch: RecordBatch) -> bytes:
    """Encode one batch, schema included."""
    out = bytearray(_BATCH_MAGIC)
    out += _encode_schema(batch.schema)
    out += struct.pack("<Q", batch.num_rows)
    for col in batch.columns:
        out += _encode_column(col)
    return bytes(out)


def deserialize_batch(buf: bytes) -> RecordBatch:
    """Inverse of :func:`serialize_batch`."""
    batch, pos = _deserialize_batch_at(buf, 0)
    if pos != len(buf):
        raise FormatError(f"{len(buf) - pos} trailing bytes after batch")
    return batch


def _deserialize_batch_at(buf: bytes, pos: int) -> Tuple[RecordBatch, int]:
    if buf[pos : pos + 4] != _BATCH_MAGIC:
        raise FormatError("bad record-batch magic")
    pos += 4
    schema, pos = _decode_schema(buf, pos)
    (num_rows,) = struct.unpack_from("<Q", buf, pos)
    pos += 8
    columns = []
    for field in schema:
        col, pos = _decode_column(buf, pos, field.dtype, num_rows)
        columns.append(col)
    if not columns and num_rows:
        raise FormatError("rows declared but no columns present")
    batch = RecordBatch(schema, columns) if columns else RecordBatch(schema, [])
    if columns and batch.num_rows != num_rows:
        raise FormatError("column length disagrees with declared row count")
    return batch, pos


def serialize_batches(batches: Sequence[RecordBatch]) -> bytes:
    """Encode a stream of batches."""
    out = bytearray(_STREAM_MAGIC)
    out += struct.pack("<I", len(batches))
    for batch in batches:
        out += serialize_batch(batch)
    return bytes(out)


def deserialize_batches(buf: bytes) -> List[RecordBatch]:
    """Inverse of :func:`serialize_batches`."""
    if buf[:4] != _STREAM_MAGIC:
        raise FormatError("bad batch-stream magic")
    (count,) = struct.unpack_from("<I", buf, 4)
    pos = 8
    batches = []
    for _ in range(count):
        batch, pos = _deserialize_batch_at(buf, pos)
        batches.append(batch)
    if pos != len(buf):
        raise FormatError(f"{len(buf) - pos} trailing bytes after stream")
    return batches
