"""Record batches: a schema plus equal-length columns."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.arrowsim.array import ColumnArray
from repro.arrowsim.schema import Field, Schema
from repro.errors import SchemaMismatchError

__all__ = ["RecordBatch", "concat_batches"]


class RecordBatch:
    """An immutable horizontal slice of a table."""

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(self, schema: Schema, columns: Sequence[ColumnArray]) -> None:
        if len(schema) != len(columns):
            raise SchemaMismatchError(
                f"schema has {len(schema)} fields but {len(columns)} columns given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaMismatchError(f"ragged columns: lengths {sorted(lengths)}")
        for field, column in zip(schema, columns):
            if column.dtype is not field.dtype:
                raise SchemaMismatchError(
                    f"column {field.name!r} is {column.dtype}, schema says {field.dtype}"
                )
        self.schema = schema
        self.columns: List[ColumnArray] = list(columns)
        self.num_rows = len(columns[0]) if columns else 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_arrays(cls, data: Dict[str, np.ndarray]) -> "RecordBatch":
        """Build from named numpy arrays, inferring logical types."""
        fields, columns = [], []
        for name, values in data.items():
            col = ColumnArray.from_numpy(np.asarray(values))
            fields.append(Field(name, col.dtype))
            columns.append(col)
        return cls(Schema(fields), columns)

    @classmethod
    def from_pydict(cls, schema: Schema, data: Dict[str, Sequence]) -> "RecordBatch":
        """Build from Python sequences (None = NULL) under an explicit schema."""
        columns = [
            ColumnArray.from_sequence(field.dtype, data[field.name]) for field in schema
        ]
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "RecordBatch":
        return cls(schema, [ColumnArray(f.dtype, f.dtype.empty_array(0)) for f in schema])

    # -- access ---------------------------------------------------------------------

    def column(self, name: str) -> ColumnArray:
        return self.columns[self.schema.index_of(name)]

    def to_pydict(self) -> Dict[str, list]:
        return {f.name: col.to_pylist() for f, col in zip(self.schema, self.columns)}

    @property
    def nbytes(self) -> int:
        return sum(col.nbytes for col in self.columns)

    # -- transforms --------------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "RecordBatch":
        return RecordBatch(
            self.schema.select(names), [self.column(n) for n in names]
        )

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        return RecordBatch(self.schema, [c.filter(mask) for c in self.columns])

    def take(self, indices: np.ndarray) -> "RecordBatch":
        return RecordBatch(self.schema, [c.take(indices) for c in self.columns])

    def slice(self, start: int, length: int) -> "RecordBatch":
        return RecordBatch(self.schema, [c.slice(start, length) for c in self.columns])

    # -- comparison ---------------------------------------------------------------------

    def equals(self, other: "RecordBatch") -> bool:
        if self.schema != other.schema or self.num_rows != other.num_rows:
            return False
        return all(a.equals(b) for a, b in zip(self.columns, other.columns))

    def approx_equals(self, other: "RecordBatch", rtol: float = 1e-8) -> bool:
        """Same data up to float accumulation-order differences.

        Use this to compare results produced by *different plans* (e.g.
        pushdown on vs off): distributed aggregation sums partials in a
        different order, which legitimately perturbs the low bits.
        Schema comparison ignores nullability (a pushed plan may know a
        column cannot be null where the residual plan does not).
        """
        if self.num_rows != other.num_rows or len(self.schema) != len(other.schema):
            return False
        for mine, theirs in zip(self.schema, other.schema):
            if mine.name != theirs.name or mine.dtype is not theirs.dtype:
                return False
        return all(
            a.approx_equals(b, rtol=rtol) for a, b in zip(self.columns, other.columns)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecordBatch[{self.num_rows} rows x {len(self.schema)} cols]"


def concat_batches(batches: Sequence[RecordBatch]) -> RecordBatch:
    """Vertically concatenate batches sharing a schema."""
    if not batches:
        raise SchemaMismatchError("cannot concat zero batches")
    schema = batches[0].schema
    for b in batches[1:]:
        if b.schema != schema:
            raise SchemaMismatchError("concat requires identical schemas")
    if len(batches) == 1:
        return batches[0]
    columns = []
    for i, field in enumerate(schema):
        values = np.concatenate([b.columns[i].values for b in batches])
        if any(b.columns[i].validity is not None for b in batches):
            validity = np.concatenate([b.columns[i].is_valid() for b in batches])
        else:
            validity = None
        columns.append(ColumnArray(field.dtype, values, validity))
    return RecordBatch(schema, columns)
