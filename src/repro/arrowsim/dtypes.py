"""Logical data types and their numpy physical representations.

``DATE32`` follows Arrow's convention: days since the Unix epoch, stored
as int32 — this is what TPC-H ``shipdate`` uses, and it supports the
paper's ``DATE '1998-12-01' - INTERVAL '90' DAY`` arithmetic as plain
integer math.  Strings are held as numpy object arrays of ``str`` in
memory and serialized as offset+utf8 buffers in IPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = [
    "DataType",
    "BOOL",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "DATE32",
    "STRING",
    "ALL_TYPES",
    "dtype_from_code",
    "dtype_from_numpy",
]


@dataclass(frozen=True)
class DataType:
    """A logical column type."""

    name: str
    #: One-byte identifier used in IPC and Parcel footers.
    code: int
    #: numpy storage dtype; None for variable-length (string).
    numpy_dtype: np.dtype | None
    #: Fixed width in bytes; 0 for variable-length.
    byte_width: int

    @property
    def is_numeric(self) -> bool:
        return self.name in ("int32", "int64", "float32", "float64")

    @property
    def is_integer(self) -> bool:
        return self.name in ("int32", "int64", "date32")

    @property
    def is_floating(self) -> bool:
        return self.name in ("float32", "float64")

    @property
    def is_variable_width(self) -> bool:
        return self.byte_width == 0

    def empty_array(self, length: int = 0) -> np.ndarray:
        """An uninitialized-values array of this type's physical layout."""
        if self.numpy_dtype is None:
            return np.empty(length, dtype=object)
        return np.empty(length, dtype=self.numpy_dtype)

    def __repr__(self) -> str:
        return self.name


BOOL = DataType("bool", 1, np.dtype(np.bool_), 1)
INT32 = DataType("int32", 2, np.dtype(np.int32), 4)
INT64 = DataType("int64", 3, np.dtype(np.int64), 8)
FLOAT32 = DataType("float32", 4, np.dtype(np.float32), 4)
FLOAT64 = DataType("float64", 5, np.dtype(np.float64), 8)
DATE32 = DataType("date32", 6, np.dtype(np.int32), 4)
STRING = DataType("string", 7, None, 0)

ALL_TYPES = (BOOL, INT32, INT64, FLOAT32, FLOAT64, DATE32, STRING)

_BY_CODE: Dict[int, DataType] = {t.code: t for t in ALL_TYPES}
_BY_NAME: Dict[str, DataType] = {t.name: t for t in ALL_TYPES}


def dtype_from_code(code: int) -> DataType:
    """IPC/Parcel type code -> logical type."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown data type code {code}") from None


def dtype_from_name(name: str) -> DataType:
    """Type name -> logical type."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown data type {name!r}") from None


def dtype_from_numpy(np_dtype: np.dtype) -> DataType:
    """Map a numpy dtype to the narrowest matching logical type."""
    np_dtype = np.dtype(np_dtype)
    if np_dtype == np.bool_:
        return BOOL
    if np_dtype == np.int32:
        return INT32
    if np_dtype in (np.int64, np.dtype(int)):
        return INT64
    if np_dtype == np.float32:
        return FLOAT32
    if np_dtype == np.float64:
        return FLOAT64
    if np_dtype == object or np_dtype.kind in ("U", "S"):
        return STRING
    raise KeyError(f"no logical type for numpy dtype {np_dtype}")
