"""Typed columnar arrays: numpy values + optional validity mask."""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.arrowsim.dtypes import DataType, STRING, dtype_from_numpy
from repro.errors import SchemaMismatchError

__all__ = ["ColumnArray"]


class ColumnArray:
    """A column of ``dtype`` values; ``validity[i] == False`` means NULL.

    ``values`` is a numpy array (object-dtype of ``str`` for strings);
    ``validity`` is a bool numpy array or None meaning "no nulls".
    Positions where validity is False hold unspecified values and must be
    masked before use.
    """

    __slots__ = ("dtype", "values", "validity")

    def __init__(
        self,
        dtype: DataType,
        values: np.ndarray,
        validity: Optional[np.ndarray] = None,
    ) -> None:
        values = np.asarray(values)
        if dtype.numpy_dtype is not None and values.dtype != dtype.numpy_dtype:
            values = values.astype(dtype.numpy_dtype)
        elif dtype is STRING and values.dtype != object:
            values = values.astype(object)
        if validity is not None:
            validity = np.asarray(validity, dtype=bool)
            if len(validity) != len(values):
                raise SchemaMismatchError(
                    f"validity length {len(validity)} != values length {len(values)}"
                )
            if bool(validity.all()):
                validity = None
        self.dtype = dtype
        self.values = values
        self.validity = validity

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_sequence(
        cls, dtype: DataType, items: Sequence[Any]
    ) -> "ColumnArray":
        """Build from Python values; ``None`` entries become NULLs."""
        validity = np.array([item is not None for item in items], dtype=bool)
        if dtype is STRING:
            values = np.array(
                [item if item is not None else "" for item in items], dtype=object
            )
        else:
            fill: Any = 0
            values = np.array(
                [item if item is not None else fill for item in items],
                dtype=dtype.numpy_dtype,
            )
        return cls(dtype, values, validity if not validity.all() else None)

    @classmethod
    def from_numpy(cls, values: np.ndarray, validity: Optional[np.ndarray] = None) -> "ColumnArray":
        """Infer the logical type from the numpy dtype."""
        return cls(dtype_from_numpy(np.asarray(values).dtype), np.asarray(values), validity)

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int((~self.validity).sum())

    def is_valid(self) -> np.ndarray:
        """Bool mask of non-null positions (always materialized)."""
        if self.validity is None:
            return np.ones(len(self.values), dtype=bool)
        return self.validity

    @property
    def nbytes(self) -> int:
        """In-memory payload size (what Arrow IPC would ship, roughly)."""
        if self.dtype is STRING:
            data = sum(len(str(v).encode("utf-8")) for v in self.values)
            return data + 4 * (len(self.values) + 1) + (len(self.values) + 7) // 8
        base = self.values.nbytes
        if self.validity is not None:
            base += (len(self.values) + 7) // 8
        return base

    # -- element access ------------------------------------------------------------

    def to_pylist(self) -> list:
        """Materialize as Python objects with ``None`` for NULLs."""
        valid = self.is_valid()
        out = []
        for i, v in enumerate(self.values):
            if not valid[i]:
                out.append(None)
            elif self.dtype is STRING:
                out.append(str(v))
            else:
                out.append(v.item())
        return out

    def __getitem__(self, i: int) -> Any:
        if self.validity is not None and not self.validity[i]:
            return None
        v = self.values[i]
        return str(v) if self.dtype is STRING else v.item()

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_pylist())

    # -- slicing / filtering -------------------------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnArray":
        """Gather rows by position."""
        validity = self.validity[indices] if self.validity is not None else None
        return ColumnArray(self.dtype, self.values[indices], validity)

    def filter(self, mask: np.ndarray) -> "ColumnArray":
        """Keep rows where ``mask`` is True."""
        validity = self.validity[mask] if self.validity is not None else None
        return ColumnArray(self.dtype, self.values[mask], validity)

    def slice(self, start: int, length: int) -> "ColumnArray":
        validity = (
            self.validity[start : start + length] if self.validity is not None else None
        )
        return ColumnArray(self.dtype, self.values[start : start + length], validity)

    # -- comparison ------------------------------------------------------------------

    def equals(self, other: "ColumnArray", rtol: float = 1e-12) -> bool:
        """Deep equality treating NULLs as equal to NULLs (NaN == NaN).

        The default tolerance is near-bitwise (serde roundtrips must not
        drift); use :meth:`approx_equals` when comparing results computed
        through different plans, where float summation order differs.
        """
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        mine, theirs = self.is_valid(), other.is_valid()
        if not np.array_equal(mine, theirs):
            return False
        a, b = self.values[mine], other.values[theirs]
        if self.dtype is STRING:
            return all(str(x) == str(y) for x, y in zip(a, b))
        if self.dtype.is_floating:
            return bool(np.allclose(a, b, rtol=rtol, atol=0.0, equal_nan=True))
        return bool(np.array_equal(a, b))

    def approx_equals(self, other: "ColumnArray", rtol: float = 1e-8) -> bool:
        """Equality up to float accumulation-order differences."""
        return self.equals(other, rtol=rtol)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self.to_pylist()[:6]
        suffix = ", ..." if len(self) > 6 else ""
        return f"ColumnArray<{self.dtype}>[{len(self)}] {preview}{suffix}"
