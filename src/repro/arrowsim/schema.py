"""Schemas: ordered, named, typed fields."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.arrowsim.dtypes import DataType
from repro.errors import SchemaMismatchError

__all__ = ["Field", "Schema"]


@dataclass(frozen=True)
class Field:
    """One column: name, logical type, nullability."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __repr__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name}: {self.dtype}{null}"


class Schema:
    """An ordered collection of fields with by-name lookup."""

    def __init__(self, fields: Sequence[Field]) -> None:
        self.fields: List[Field] = list(fields)
        self._index: Dict[str, int] = {}
        for i, f in enumerate(self.fields):
            if f.name in self._index:
                raise SchemaMismatchError(f"duplicate field name {f.name!r}")
            self._index[f.name] = i

    # -- lookup ------------------------------------------------------------

    def field(self, name: str) -> Field:
        try:
            return self.fields[self._index[name]]
        except KeyError:
            raise SchemaMismatchError(
                f"no field {name!r}; have {self.names()}"
            ) from None

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaMismatchError(
                f"no field {name!r}; have {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __getitem__(self, i: int) -> Field:
        return self.fields[i]

    # -- derivation --------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Schema":
        """Projection: a new schema with the given fields, in given order."""
        return Schema([self.field(n) for n in names])

    # -- equality / repr ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return hash(tuple(self.fields))

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"Schema({inner})"
